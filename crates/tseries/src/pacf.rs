//! Partial autocorrelation (Durbin–Levinson recursion).
//!
//! The ACF of a weekly-periodic usage series is elevated at *many* lags
//! because short lags propagate (ρ(2) ≈ ρ(1)²). The PACF removes that
//! propagation: φ(l) is the correlation between `x_t` and `x_{t−l}` after
//! regressing out lags `1..l−1`, so it isolates which lags carry *new*
//! information. The Fig. 2 experiment prints it next to the ACF as a
//! sharper diagnostic of the weekly structure.

use crate::acf::acf;

/// Sample PACF for lags `0..=max_lag` via the Durbin–Levinson recursion
/// on the sample ACF. `φ(0)` is defined as 1.
///
/// Returns an empty vector for an empty series. When the recursion
/// becomes degenerate (prediction-error variance reaching zero, e.g. on a
/// perfectly periodic series), remaining lags are reported as `0.0`.
///
/// ```
/// use vup_tseries::pacf::pacf;
/// let xs = [1.0, 2.0, 1.5, 2.5, 1.8, 2.2, 1.1, 2.6];
/// let p = pacf(&xs, 3);
/// assert_eq!(p.len(), 4);
/// assert_eq!(p[0], 1.0);
/// assert!(p.iter().all(|v| v.abs() <= 1.0));
/// ```
pub fn pacf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let rho = acf(xs, max_lag);
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    if max_lag == 0 {
        return out;
    }

    // phi[k] holds the AR(k) coefficients of the current order.
    let mut phi = vec![0.0; max_lag + 1];
    let mut prev = vec![0.0; max_lag + 1];
    let mut err = 1.0; // prediction-error variance (normalized)

    for k in 1..=max_lag {
        if err <= 1e-12 {
            out.push(0.0);
            continue;
        }
        let mut num = rho[k];
        for j in 1..k {
            num -= prev[j] * rho[k - j];
        }
        let phi_kk = num / err;
        phi[k] = phi_kk;
        for j in 1..k {
            phi[j] = prev[j] - phi_kk * prev[k - j];
        }
        err *= 1.0 - phi_kk * phi_kk;
        prev[..=k].copy_from_slice(&phi[..=k]);
        // Clamp tiny numerical excursions outside [-1, 1].
        out.push(phi_kk.clamp(-1.0, 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic AR(1) process driven by a hash-based innovation.
    fn ar1(n: usize, phi: f64) -> Vec<f64> {
        let mut x = 0.0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // SplitMix64-quality innovation in [-0.5, 0.5).
            let mut h = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            let e = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            x = phi * x + e;
            out.push(x);
        }
        out
    }

    #[test]
    fn ar1_pacf_cuts_off_after_lag_one() {
        let xs = ar1(2000, 0.7);
        let p = pacf(&xs, 6);
        assert!((p[1] - 0.7).abs() < 0.08, "phi(1) = {}", p[1]);
        for (l, &v) in p.iter().enumerate().skip(2) {
            assert!(v.abs() < 0.1, "phi({l}) = {v} should be near zero");
        }
    }

    #[test]
    fn lag_zero_is_one_and_lengths_match() {
        let xs = ar1(100, 0.3);
        let p = pacf(&xs, 10);
        assert_eq!(p.len(), 11);
        assert_eq!(p[0], 1.0);
        assert!(pacf(&[], 5).is_empty());
        assert_eq!(pacf(&xs, 0), vec![1.0]);
    }

    #[test]
    fn pacf_lag_one_equals_acf_lag_one() {
        let xs = ar1(500, 0.5);
        let p = pacf(&xs, 3);
        let r = crate::acf::acf(&xs, 3);
        assert!((p[1] - r[1]).abs() < 1e-12);
    }

    #[test]
    fn weekly_series_pacf_is_sharper_than_acf() {
        // For a strong weekly pattern plus AR noise, the ACF smears across
        // many lags; the PACF concentrates at 1 and ~7.
        let week = [6.0, 6.5, 6.0, 6.2, 5.8, 0.5, 0.5];
        let noise = ar1(700, 0.4);
        let xs: Vec<f64> = (0..700).map(|t| week[t % 7] + noise[t]).collect();
        let r = acf(&xs, 10);
        let p = pacf(&xs, 10);
        // ACF at awkward mid-week lags stays substantial; PACF kills them.
        assert!(p[3].abs() < r[3].abs() + 0.05);
        assert!(p[7] > 0.2, "weekly partial correlation {p:?}");
        // Lags just past the week are largely explained away.
        assert!(p[8].abs() < p[7], "pacf {p:?}");
    }

    #[test]
    fn degenerate_perfectly_periodic_series_stays_finite() {
        let week = [8.0, 8.0, 8.0, 8.0, 8.0, 0.0, 0.0];
        let xs: Vec<f64> = std::iter::repeat_n(week, 30).flatten().collect();
        let p = pacf(&xs, 14);
        for &v in &p {
            assert!(v.is_finite());
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn prop_pacf_is_bounded(
            xs in proptest::collection::vec(-20.0_f64..20.0, 10..120),
            max_lag in 1_usize..15,
        ) {
            let p = pacf(&xs, max_lag);
            prop_assert_eq!(p.len(), max_lag + 1);
            for &v in &p {
                prop_assert!(v.is_finite());
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }
}
