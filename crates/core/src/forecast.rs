//! Multi-step forecasting beyond the observed series.
//!
//! Evaluation ([`crate::evaluate`]) predicts slots whose actual values are
//! known; *serving* predicts days that have not happened yet, so their
//! calendar and weather context must be computed rather than read from
//! the view. This module extends a [`VehicleView`] with synthetic future
//! slots — calendar from [`vup_dataprep::enrich::day_context`], weather
//! from the deterministic [`vup_fleetsim::weather::weather_for`] forecast
//! — and rolls the fitted model forward one step at a time, feeding each
//! prediction back in as the next step's lagged utilization.
//!
//! The future *dates* follow the view's scenario: next-day advances one
//! calendar day per step, next-working-day advances to the next day that
//! is neither a weekend nor a holiday in the vehicle's country (the
//! schedulable approximation of the paper's usage-based working-day
//! filter, whose true predicate depends on the unknown future usage).

use vup_dataprep::enrich::{day_context, encode_context, CONTEXT_FEATURE_COUNT};
use vup_fleetsim::calendar::Date;
use vup_fleetsim::fleet::Fleet;
use vup_fleetsim::holidays::Country;
use vup_fleetsim::weather::{encode_weather, weather_for};

use crate::config::CanChannels;
use crate::predictor::FittedPredictor;
use crate::scenario::Scenario;
use crate::view::{Slot, VehicleView};

/// Upper bound on the calendar-day scan for the next working day; no real
/// calendar has a year-long run of holidays, so hitting it means the
/// country data is degenerate.
const MAX_DATE_SCAN: usize = 366;

/// Predicts the next `horizon` scenario days after the end of `view`.
///
/// Returns one clamped hours prediction per step, nearest day first.
/// Steps beyond the first use the preceding predictions as lagged
/// utilization. Fails when:
///
/// - `horizon` is zero,
/// - the vehicle is not part of `fleet` (its country and weather seed are
///   needed to build future context),
/// - the model uses lagged CAN channels and `horizon` exceeds the
///   smallest selected lag — CAN values of future days are observations,
///   not context, and cannot be fabricated,
/// - the view is too short for the model's lag history.
pub fn forecast_horizon(
    fitted: &FittedPredictor,
    view: &VehicleView,
    fleet: &Fleet,
    horizon: usize,
) -> crate::Result<Vec<f64>> {
    if horizon == 0 {
        return Err(vup_ml::MlError::InvalidParameter {
            name: "horizon",
            reason: "must be at least 1".into(),
        });
    }
    if view.is_empty() {
        return Err(vup_ml::MlError::NotEnoughSamples {
            required: 1,
            actual: 0,
        });
    }
    let vehicle =
        fleet
            .vehicle(view.vehicle_id)
            .ok_or_else(|| vup_ml::MlError::InvalidParameter {
                name: "vehicle_id",
                reason: format!("vehicle {} not in fleet", view.vehicle_id.0),
            })?;
    let country = fleet.country_of(vehicle);

    let config = fitted.config();
    let uses_can = !matches!(config.features.can_channels, CanChannels::None);
    if uses_can {
        let min_lag = fitted.selected_lags().iter().copied().min().unwrap_or(0);
        if horizon > min_lag {
            return Err(vup_ml::MlError::InvalidParameter {
                name: "horizon",
                reason: format!(
                    "horizon {horizon} needs future CAN observations \
                     (smallest selected lag is {min_lag})"
                ),
            });
        }
    }

    // Roll forward on a copy of just the lag tail: the recursion only
    // ever reads the last `hist` slots (learned models look back at most
    // `max_lag`, MA at most `p`, LV one), so predictions — including the
    // not-enough-history error cases — are bit-identical to extending a
    // clone of the full view, without the full-series copy per request.
    let hist = match &config.model {
        crate::config::ModelSpec::Baseline(spec) => match spec {
            vup_ml::baseline::BaselineSpec::LastValue => 1,
            vup_ml::baseline::BaselineSpec::MovingAverage(p) => *p,
        },
        crate::config::ModelSpec::Learned(_) => config.max_lag,
    };
    let mut extended = view.forecast_tail(hist.max(1), horizon);
    let mut predictions = Vec::with_capacity(horizon);
    let last = view.slot(view.len() - 1);
    let mut date = last.date;
    let mut day = last.day;

    for _ in 0..horizon {
        let next = next_scenario_date(date, country, view.scenario)?;
        day += next.day_index() - date.day_index();
        date = next;

        let ctx = day_context(date, country);
        let encoded = encode_context(&ctx);
        let mut calendar = [0.0; CONTEXT_FEATURE_COUNT];
        calendar.copy_from_slice(&encoded);
        let weather = encode_weather(&weather_for(fleet.config().seed, country, date));
        extended.push_slot(Slot {
            day,
            date,
            // Filled with the prediction below; never read before that
            // (the target's own hours are not a feature).
            hours: f64::NAN,
            can: [0.0; 10],
            calendar,
            weather,
        });

        let target = extended.len() - 1;
        let predicted = fitted.predict(&extended, target)?;
        extended.set_hours(target, predicted);
        predictions.push(predicted);
    }
    Ok(predictions)
}

/// The date of the next scenario slot after `date`.
fn next_scenario_date(date: Date, country: &Country, scenario: Scenario) -> crate::Result<Date> {
    let mut next = date.plus_days(1);
    match scenario {
        Scenario::NextDay => Ok(next),
        Scenario::NextWorkingDay => {
            for _ in 0..MAX_DATE_SCAN {
                if !country.is_weekend(next) && !country.is_holiday(next) {
                    return Ok(next);
                }
                next = next.plus_days(1);
            }
            Err(vup_ml::MlError::InvalidParameter {
                name: "calendar",
                reason: format!("no working day within {MAX_DATE_SCAN} days of {date:?}"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelSpec, PipelineConfig};
    use vup_fleetsim::fleet::{FleetConfig, VehicleId};
    use vup_ml::baseline::BaselineSpec;
    use vup_ml::RegressorSpec;

    fn setup(model: ModelSpec, scenario: Scenario) -> (Fleet, VehicleView, FittedPredictor) {
        let fleet = Fleet::generate(FleetConfig::small(4, 2025));
        let view = VehicleView::build(&fleet, VehicleId(0), scenario);
        let config = PipelineConfig {
            model,
            scenario,
            train_window: 120,
            max_lag: 30,
            k: 10,
            ..PipelineConfig::default()
        };
        let n = view.len();
        let fitted = FittedPredictor::fit(&view, &config, n - 120, n).unwrap();
        (fleet, view, fitted)
    }

    #[test]
    fn one_step_forecast_is_in_physical_range() {
        for scenario in [Scenario::NextDay, Scenario::NextWorkingDay] {
            let (fleet, view, fitted) = setup(ModelSpec::Learned(RegressorSpec::Linear), scenario);
            let p = forecast_horizon(&fitted, &view, &fleet, 1).unwrap();
            assert_eq!(p.len(), 1);
            assert!((0.0..=24.0).contains(&p[0]), "{scenario:?}: {p:?}");
        }
    }

    #[test]
    fn multi_step_forecast_rolls_forward() {
        let (fleet, view, fitted) = setup(
            ModelSpec::Learned(RegressorSpec::Linear),
            Scenario::NextWorkingDay,
        );
        let five = forecast_horizon(&fitted, &view, &fleet, 5).unwrap();
        assert_eq!(five.len(), 5);
        for p in &five {
            assert!((0.0..=24.0).contains(p));
        }
        // The first step of a longer horizon equals the one-step forecast
        // (the recursion only appends).
        let one = forecast_horizon(&fitted, &view, &fleet, 1).unwrap();
        assert_eq!(five[0].to_bits(), one[0].to_bits());
    }

    #[test]
    fn forecasts_are_deterministic() {
        let (fleet, view, fitted) = setup(
            ModelSpec::Learned(RegressorSpec::Linear),
            Scenario::NextWorkingDay,
        );
        let a = forecast_horizon(&fitted, &view, &fleet, 3).unwrap();
        let b = forecast_horizon(&fitted, &view, &fleet, 3).unwrap();
        let bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn baseline_forecasts_work_too() {
        let (fleet, view, fitted) = setup(
            ModelSpec::Baseline(BaselineSpec::LastValue),
            Scenario::NextWorkingDay,
        );
        let p = forecast_horizon(&fitted, &view, &fleet, 2).unwrap();
        // LV forecasts the last observed value, then its own forecast.
        assert_eq!(p[0], view.slot(view.len() - 1).hours.clamp(0.0, 24.0));
        assert_eq!(p[1].to_bits(), p[0].to_bits());
    }

    #[test]
    fn next_working_day_skips_weekends_and_holidays() {
        let fleet = Fleet::generate(FleetConfig::small(4, 2025));
        let vehicle = fleet.vehicle(VehicleId(0)).unwrap();
        let country = fleet.country_of(vehicle);
        // From any date, the next working date is strictly later and is
        // itself a working day.
        let mut date = Date::new(2015, 1, 1).unwrap();
        for _ in 0..30 {
            let next = next_scenario_date(date, country, Scenario::NextWorkingDay).unwrap();
            assert!(next > date);
            assert!(!country.is_weekend(next));
            assert!(!country.is_holiday(next));
            date = next;
        }
    }

    #[test]
    fn zero_horizon_and_unknown_vehicle_are_rejected() {
        let (fleet, view, fitted) = setup(
            ModelSpec::Baseline(BaselineSpec::LastValue),
            Scenario::NextDay,
        );
        assert!(forecast_horizon(&fitted, &view, &fleet, 0).is_err());

        let other = Fleet::generate(FleetConfig::small(1, 1));
        let foreign_view = VehicleView::build(&fleet, VehicleId(3), Scenario::NextDay);
        assert!(forecast_horizon(&fitted, &foreign_view, &other, 1).is_err());
    }

    #[test]
    fn can_lag_features_cap_the_horizon() {
        let fleet = Fleet::generate(FleetConfig::small(4, 2025));
        let view = VehicleView::build(&fleet, VehicleId(0), Scenario::NextWorkingDay);
        let config = PipelineConfig {
            model: ModelSpec::Learned(RegressorSpec::Linear),
            features: crate::config::FeatureConfig {
                can_channels: CanChannels::default_subset(),
                ..crate::config::FeatureConfig::default()
            },
            train_window: 120,
            max_lag: 30,
            k: 10,
            ..PipelineConfig::default()
        };
        let n = view.len();
        let fitted = FittedPredictor::fit(&view, &config, n - 120, n).unwrap();
        let min_lag = fitted.selected_lags().iter().copied().min().unwrap();
        // Within the smallest lag: fine. One past it: rejected.
        assert!(forecast_horizon(&fitted, &view, &fleet, min_lag).is_ok());
        assert!(forecast_horizon(&fitted, &view, &fleet, min_lag + 1).is_err());
    }
}
