//! Offline stand-in for the subset of `rand_distr` this workspace uses:
//! the [`Distribution`] trait and the [`Normal`] (Gaussian) distribution,
//! sampled with the Marsaglia polar method (deterministic given the
//! generator stream).

#![warn(missing_docs)]

use rand::{RngCore, RngExt};

/// Types that generate values of `T` from a random source.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Builds `N(mean, std_dev²)`; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; one accepted pair per call, the spare
        // deviate is discarded to keep the draw stateless.
        loop {
            let u = 2.0 * rng.random::<f64>() - 1.0;
            let v = 2.0 * rng.random::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let d = Normal::new(3.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn sample_moments_are_plausible() {
        let d = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_stream() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
