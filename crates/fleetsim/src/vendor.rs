//! Vendor / asset metadata (the paper's "Vendor information" data class).
//!
//! The paper lists "Vendor information (e.g., unit/asset info, maintenance
//! services)" among the collected data classes. This module synthesizes
//! that static metadata per unit: the selling vendor, the model year, the
//! fleet-entry date, and the vendor-prescribed service interval that the
//! maintenance-planning example consumes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::calendar::{Date, SIM_START};
use crate::fleet::Vehicle;
use crate::types::VehicleType;

/// Number of distinct vendors in the simulated market.
pub const N_VENDORS: u8 = 12;

/// Static per-unit vendor/asset metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VendorInfo {
    /// Selling vendor in `0..N_VENDORS`.
    pub vendor_id: u8,
    /// Model year of the unit (2006 – 2017).
    pub model_year: u16,
    /// Date the unit entered the monitored fleet (between two years
    /// before the observation window and its start — telematics was
    /// retrofitted, so every unit is observed from SIM_START).
    pub fleet_entry: Date,
    /// Vendor-prescribed engine-hour interval between services.
    pub service_interval_h: f64,
}

/// Deterministically derives the vendor metadata of one vehicle.
pub fn vendor_info(fleet_seed: u64, vehicle: &Vehicle) -> VendorInfo {
    let mut rng = StdRng::seed_from_u64(
        fleet_seed ^ (u64::from(vehicle.id.0) << 32).wrapping_mul(0xD6E8_FEB8_6659_FD93),
    );
    // Vendors specialize: the model index biases the vendor choice so
    // units of the same model usually share a vendor.
    let vendor_id = ((vehicle.model as u8).wrapping_mul(7) + rng.random_range(0..3)) % N_VENDORS;
    let model_year = 2006 + rng.random_range(0..12) as u16;
    let fleet_entry = SIM_START.plus_days(-(rng.random_range(0..730) as i64));
    // Heavier burners get serviced more often.
    let base_interval = match vehicle.vtype {
        VehicleType::Grader | VehicleType::Excavator => 250.0,
        VehicleType::CoringMachine => 500.0,
        _ => 350.0,
    };
    let service_interval_h = base_interval * (0.9 + 0.2 * rng.random::<f64>());
    VendorInfo {
        vendor_id,
        model_year,
        fleet_entry,
        service_interval_h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig, VehicleId};

    #[test]
    fn metadata_is_deterministic_per_unit() {
        let fleet = Fleet::generate(FleetConfig::small(20, 5));
        let v = fleet.vehicle(VehicleId(3)).unwrap();
        assert_eq!(vendor_info(5, v), vendor_info(5, v));
        let w = fleet.vehicle(VehicleId(4)).unwrap();
        // Different units (almost surely) differ somewhere.
        assert_ne!(vendor_info(5, v), vendor_info(5, w));
    }

    #[test]
    fn fields_are_in_range() {
        let fleet = Fleet::generate(FleetConfig::small(100, 9));
        for v in fleet.vehicles() {
            let info = vendor_info(9, v);
            assert!(info.vendor_id < N_VENDORS);
            assert!((2006..=2017).contains(&info.model_year));
            assert!(info.fleet_entry <= SIM_START);
            assert!(info.fleet_entry >= SIM_START.plus_days(-730));
            assert!(info.service_interval_h > 200.0);
            assert!(info.service_interval_h < 620.0);
        }
    }

    #[test]
    fn same_model_units_usually_share_a_vendor() {
        let fleet = Fleet::generate(FleetConfig::small(500, 11));
        // Group by (type, model) and check vendor concentration.
        use std::collections::HashMap;
        let mut groups: HashMap<(usize, usize), Vec<u8>> = HashMap::new();
        for v in fleet.vehicles() {
            groups
                .entry((v.vtype.index(), v.model))
                .or_default()
                .push(vendor_info(11, v).vendor_id);
        }
        let mut concentrated = 0;
        let mut large_groups = 0;
        for vendors in groups.values().filter(|g| g.len() >= 5) {
            large_groups += 1;
            let mut counts: HashMap<u8, usize> = HashMap::new();
            for &v in vendors {
                *counts.entry(v).or_default() += 1;
            }
            let max = counts.values().max().copied().unwrap_or(0);
            if max as f64 >= 0.4 * vendors.len() as f64 {
                concentrated += 1;
            }
        }
        assert!(large_groups > 0);
        assert!(
            concentrated as f64 > 0.7 * large_groups as f64,
            "{concentrated}/{large_groups} groups vendor-concentrated"
        );
    }
}
