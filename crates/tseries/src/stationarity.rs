//! Non-stationarity diagnostics.
//!
//! The paper motivates per-vehicle models by observing that "the analyzed
//! time series shows non-stationary and rather heterogeneous usage trends".
//! This module provides the rolling-statistics diagnostics used by the
//! characterization binaries to quantify that claim on the synthetic fleet.

use crate::stats;

/// Rolling mean over non-overlapping blocks of `block` days.
/// The trailing partial block is included when it has at least one value.
pub fn block_means(xs: &[f64], block: usize) -> Vec<f64> {
    assert!(block > 0, "block size must be positive");
    xs.chunks(block).filter_map(stats::mean).collect()
}

/// Result of the split-half stationarity diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftDiagnostic {
    /// Mean of the first half of the series.
    pub mean_first: f64,
    /// Mean of the second half of the series.
    pub mean_second: f64,
    /// Pooled sample standard deviation.
    pub pooled_std: f64,
    /// |mean_second − mean_first| / pooled_std; large values (≳ 0.5)
    /// indicate a level shift, i.e. non-stationarity in the mean.
    pub drift_score: f64,
}

/// Split-half drift diagnostic: compares the means of the two halves of the
/// series in units of the pooled standard deviation.
///
/// Returns `None` when either half has fewer than 2 observations or the
/// pooled variance is zero.
pub fn drift_diagnostic(xs: &[f64]) -> Option<DriftDiagnostic> {
    let n = xs.len();
    if n < 4 {
        return None;
    }
    let (a, b) = xs.split_at(n / 2);
    let mean_first = stats::mean(a)?;
    let mean_second = stats::mean(b)?;
    let va = stats::variance_sample(a)?;
    let vb = stats::variance_sample(b)?;
    let pooled = (((a.len() - 1) as f64 * va + (b.len() - 1) as f64 * vb)
        / (a.len() + b.len() - 2) as f64)
        .sqrt();
    if pooled == 0.0 {
        return None;
    }
    Some(DriftDiagnostic {
        mean_first,
        mean_second,
        pooled_std: pooled,
        drift_score: (mean_second - mean_first).abs() / pooled,
    })
}

/// Coefficient of variation of block means: the dispersion of local levels
/// relative to the global level. Near zero for a stationary series; grows
/// with regime switching. Returns `None` when fewer than two blocks exist
/// or the global mean is zero.
pub fn level_instability(xs: &[f64], block: usize) -> Option<f64> {
    let means = block_means(xs, block);
    if means.len() < 2 {
        return None;
    }
    let global = stats::mean(&means)?;
    if global == 0.0 {
        return None;
    }
    let sd = stats::std_sample(&means)?;
    Some(sd / global.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_means_partition() {
        let xs = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(block_means(&xs, 2), vec![2.0, 6.0, 9.0]);
        assert_eq!(block_means(&[], 3), Vec::<f64>::new());
    }

    #[test]
    fn stationary_series_has_low_drift() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 5.0 } else { 6.0 })
            .collect();
        let d = drift_diagnostic(&xs).unwrap();
        assert!(d.drift_score < 0.1, "score = {}", d.drift_score);
    }

    #[test]
    fn level_shift_is_detected() {
        // First half around 2, second half around 8.
        let xs: Vec<f64> = (0..50)
            .map(|i| {
                if i < 25 {
                    2.0 + (i % 3) as f64 * 0.1
                } else {
                    8.0 + (i % 3) as f64 * 0.1
                }
            })
            .collect();
        let d = drift_diagnostic(&xs).unwrap();
        assert!(d.drift_score > 5.0, "score = {}", d.drift_score);
        assert!(d.mean_second > d.mean_first);
    }

    #[test]
    fn degenerate_inputs_give_none() {
        assert!(drift_diagnostic(&[1.0, 2.0, 3.0]).is_none());
        assert!(drift_diagnostic(&[5.0; 40]).is_none()); // zero variance
    }

    #[test]
    fn level_instability_orders_series() {
        let flat = vec![4.0; 60];
        let mut shifting = vec![2.0; 30];
        shifting.extend(vec![9.0; 30]);
        // Flat series: zero dispersion of block means -> 0 after Some.
        // Constant blocks give sd = 0 -> Some(0.0).
        assert_eq!(level_instability(&flat, 10), Some(0.0));
        let unstable = level_instability(&shifting, 10).unwrap();
        assert!(unstable > 0.3);
        assert!(level_instability(&[1.0, 2.0], 5).is_none());
    }
}
