//! Scalar summary statistics: moments and interpolated quantiles.
//!
//! Quantiles use the "type 7" linear-interpolation definition (the default
//! in R and NumPy), which is also what scikit-learn's ecosystem reports, so
//! the boxplot summaries in `vup-bench` are comparable with the paper's
//! matplotlib figures.

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divides by `n`). Returns `None` for an empty slice.
pub fn variance_population(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n - 1`). Returns `None` when `xs.len() < 2`.
pub fn variance_sample(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation. Returns `None` when `xs.len() < 2`.
pub fn std_sample(xs: &[f64]) -> Option<f64> {
    variance_sample(xs).map(f64::sqrt)
}

/// Minimum value. Returns `None` for an empty slice; NaNs are skipped.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|v| !v.is_nan()).reduce(f64::min)
}

/// Maximum value. Returns `None` for an empty slice; NaNs are skipped.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|v| !v.is_nan()).reduce(f64::max)
}

/// Type-7 (linear interpolation) quantile of `p ∈ [0, 1]` computed on a
/// *pre-sorted* ascending slice.
///
/// Returns `None` for an empty slice or `p` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&p) {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Type-7 quantile of an unsorted slice (sorts a copy).
pub fn quantile(xs: &[f64], p: f64) -> Option<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, p)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Interquartile range `Q3 - Q1`.
pub fn iqr(xs: &[f64]) -> Option<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in iqr input"));
    Some(quantile_sorted(&sorted, 0.75)? - quantile_sorted(&sorted, 0.25)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variances() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance_population(&xs), Some(4.0));
        let sv = variance_sample(&xs).unwrap();
        assert!((sv - 32.0 / 7.0).abs() < 1e-12);
        assert!(mean(&[]).is_none());
        assert!(variance_sample(&[1.0]).is_none());
    }

    #[test]
    fn min_max_skip_nan() {
        let xs = [3.0, f64::NAN, -1.0, 2.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert!(min(&[]).is_none());
    }

    #[test]
    fn quantile_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], [25, 50, 75]) -> [1.75, 2.5, 3.25]
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert!((quantile(&xs, 0.50).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.75).unwrap() - 3.25).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
    }

    #[test]
    fn quantile_edge_cases() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(quantile(&[1.0], 1.5).is_none());
        assert!(quantile(&[1.0], -0.1).is_none());
        assert_eq!(quantile(&[42.0], 0.3), Some(42.0));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        assert_eq!(iqr(&xs), Some(4.0)); // Q3=7, Q1=3
    }

    proptest! {
        #[test]
        fn prop_quantile_is_monotone_in_p(
            mut xs in proptest::collection::vec(-100.0_f64..100.0, 1..50),
            p1 in 0.0_f64..1.0,
            p2 in 0.0_f64..1.0,
        ) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let qlo = quantile_sorted(&xs, lo).unwrap();
            let qhi = quantile_sorted(&xs, hi).unwrap();
            prop_assert!(qlo <= qhi + 1e-12);
        }

        #[test]
        fn prop_quantile_within_range(
            xs in proptest::collection::vec(-100.0_f64..100.0, 1..50),
            p in 0.0_f64..1.0,
        ) {
            let q = quantile(&xs, p).unwrap();
            prop_assert!(q >= min(&xs).unwrap() - 1e-12);
            prop_assert!(q <= max(&xs).unwrap() + 1e-12);
        }

        #[test]
        fn prop_variance_nonnegative(
            xs in proptest::collection::vec(-100.0_f64..100.0, 2..50),
        ) {
            prop_assert!(variance_sample(&xs).unwrap() >= -1e-9);
            prop_assert!(variance_population(&xs).unwrap() >= -1e-9);
        }
    }
}
