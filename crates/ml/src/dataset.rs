//! Supervised regression datasets: a feature matrix paired with targets.

use vup_linalg::Matrix;

use crate::{MlError, Result};

/// A feature matrix `X` (one row per sample) paired with a target vector
/// `y`, validated for agreement and finiteness at construction.
///
/// Samples are assumed to be in *time order* (oldest first): the windowed
/// training-data generation in `vup-core` produces them that way, and the
/// time-ordered split used by [`Dataset::split_at`] and the grid search
/// depends on it.
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Matrix,
    y: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset after validating shape agreement and finiteness.
    pub fn new(x: Matrix, y: Vec<f64>) -> Result<Self> {
        if x.rows() != y.len() {
            return Err(MlError::SampleMismatch {
                x_rows: x.rows(),
                y_len: y.len(),
            });
        }
        if x.as_slice().iter().any(|v| !v.is_finite()) || y.iter().any(|v| !v.is_finite()) {
            return Err(MlError::NonFiniteInput);
        }
        Ok(Dataset { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Borrow of the feature matrix.
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// Borrow of the target vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Consumes the dataset and returns `(X, y)`.
    pub fn into_parts(self) -> (Matrix, Vec<f64>) {
        (self.x, self.y)
    }

    /// Standardizes `X` in place with a fitted scaler, avoiding the
    /// allocate-and-copy of [`crate::scaler::StandardScaler::transform`]
    /// on the fit hot path. Finite data under finite statistics (stds are
    /// clamped to be positive at fit time) stays finite, so the
    /// construction invariant is preserved.
    pub fn standardize_in_place(&mut self, scaler: &crate::scaler::StandardScaler) -> Result<()> {
        scaler.transform_in_place(&mut self.x)
    }

    /// Splits into `(first, second)` at sample index `at` — a time-ordered
    /// hold-out split (`first` = oldest samples for training).
    ///
    /// Returns an error when `at` is 0 or ≥ `len()` (either side empty).
    pub fn split_at(&self, at: usize) -> Result<(Dataset, Dataset)> {
        if at == 0 || at >= self.len() {
            return Err(MlError::NotEnoughSamples {
                required: 2,
                actual: self.len().min(1),
            });
        }
        let cols = self.n_features();
        let (head_rows, tail_rows) = self.x.as_slice().split_at(at * cols);
        let head = Matrix::from_vec(at, cols, head_rows.to_vec())?;
        let tail = Matrix::from_vec(self.len() - at, cols, tail_rows.to_vec())?;
        Ok((
            Dataset {
                x: head,
                y: self.y[..at].to_vec(),
            },
            Dataset {
                x: tail,
                y: self.y[at..].to_vec(),
            },
        ))
    }

    /// Time-ordered fractional split: the first `train_frac` of samples
    /// become the training set. `train_frac` must be in `(0, 1)`.
    pub fn split_fraction(&self, train_frac: f64) -> Result<(Dataset, Dataset)> {
        if !(train_frac > 0.0 && train_frac < 1.0) {
            return Err(MlError::InvalidParameter {
                name: "train_frac",
                reason: format!("must be in (0, 1), got {train_frac}"),
            });
        }
        if self.len() < 2 {
            return Err(MlError::NotEnoughSamples {
                required: 2,
                actual: self.len(),
            });
        }
        let at = ((self.len() as f64 * train_frac).round() as usize).clamp(1, self.len() - 1);
        self.split_at(at)
    }

    /// A new dataset keeping only the given feature columns (in order) —
    /// the operation performed after ACF-based lag selection.
    pub fn select_features(&self, columns: &[usize]) -> Result<Dataset> {
        let x = self.x.select_columns(columns)?;
        Ok(Dataset {
            x,
            y: self.y.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x =
            Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0], &[4.0, 40.0]]).unwrap();
        Dataset::new(x, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn construction_validates() {
        let x = Matrix::zeros(3, 2);
        assert!(matches!(
            Dataset::new(x.clone(), vec![1.0, 2.0]),
            Err(MlError::SampleMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(x.clone(), vec![1.0, f64::NAN, 3.0]),
            Err(MlError::NonFiniteInput)
        ));
        let mut bad = Matrix::zeros(1, 1);
        bad[(0, 0)] = f64::INFINITY;
        assert!(matches!(
            Dataset::new(bad, vec![1.0]),
            Err(MlError::NonFiniteInput)
        ));
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.y()[2], 3.0);
        assert_eq!(d.x()[(3, 1)], 40.0);
    }

    #[test]
    fn split_preserves_time_order() {
        let d = toy();
        let (train, test) = d.split_at(3).unwrap();
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(train.y(), &[1.0, 2.0, 3.0]);
        assert_eq!(test.y(), &[4.0]);
        assert_eq!(test.x()[(0, 0)], 4.0);
    }

    #[test]
    fn split_rejects_degenerate_points() {
        let d = toy();
        assert!(d.split_at(0).is_err());
        assert!(d.split_at(4).is_err());
        assert!(d.split_fraction(0.0).is_err());
        assert!(d.split_fraction(1.0).is_err());
    }

    #[test]
    fn split_fraction_clamps_to_nonempty_sides() {
        let d = toy();
        let (train, test) = d.split_fraction(0.99).unwrap();
        assert!(!train.is_empty() && !test.is_empty());
        let (train, test) = d.split_fraction(0.01).unwrap();
        assert!(!train.is_empty() && !test.is_empty());
        let (train, _) = d.split_fraction(0.75).unwrap();
        assert_eq!(train.len(), 3);
    }

    #[test]
    fn feature_selection_projects_columns() {
        let d = toy();
        let s = d.select_features(&[1]).unwrap();
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.x()[(2, 0)], 30.0);
        assert_eq!(s.y(), d.y());
        assert!(d.select_features(&[5]).is_err());
    }
}
