//! Step (v) and orchestration — the full preparation pipeline.
//!
//! [`prepare_vehicle_days`] runs the paper's five steps end to end for one
//! vehicle over a date range: raw 10-minute reports → cleaning → daily
//! aggregation → enrichment → a relational [`Table`] (one row per day).
//! [`daily_records_to_table`] performs the transformation step alone for
//! histories produced by the fast daily path.

use vup_fleetsim::calendar::Date;
use vup_fleetsim::dropout::DropoutConfig;
use vup_fleetsim::fleet::{Fleet, VehicleId};
use vup_fleetsim::generator::{self, DailyRecord};

use crate::aggregate::aggregate_day;
use crate::cleaning::{clean_day, CleaningStats, ValidityRules};
use crate::enrich::{day_context, encode_context, CONTEXT_FEATURE_NAMES};
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use crate::value::Value;
use crate::Result;

/// Names of the daily CAN channel columns, aligned with
/// [`can_channel_values`].
pub const CAN_CHANNEL_NAMES: [&str; 10] = [
    "fuel_used_l",
    "fuel_level_end_pct",
    "avg_rpm",
    "avg_oil_pressure_kpa",
    "avg_coolant_temp_c",
    "avg_speed_kmh",
    "avg_load_pct",
    "avg_digging_pressure_kpa",
    "avg_pump_temp_c",
    "avg_oil_tank_temp_c",
];

/// Extracts the CAN channel values of a record in [`CAN_CHANNEL_NAMES`]
/// order.
pub fn can_channel_values(r: &DailyRecord) -> [f64; 10] {
    [
        r.can.fuel_used_l,
        r.can.fuel_level_end_pct,
        r.can.avg_rpm,
        r.can.avg_oil_pressure_kpa,
        r.can.avg_coolant_temp_c,
        r.can.avg_speed_kmh,
        r.can.avg_load_pct,
        r.can.avg_digging_pressure_kpa,
        r.can.avg_pump_temp_c,
        r.can.avg_oil_tank_temp_c,
    ]
}

/// The relational schema of a prepared per-vehicle daily table.
pub fn daily_schema() -> Schema {
    let mut fields = vec![
        Field::new("vehicle_id", DataType::Int),
        Field::new("day", DataType::Int),
        Field::new("date", DataType::Str),
        Field::new("hours", DataType::Float),
    ];
    fields.extend(
        CAN_CHANNEL_NAMES
            .iter()
            .map(|&n| Field::new(n, DataType::Float)),
    );
    fields.extend(
        CONTEXT_FEATURE_NAMES
            .iter()
            .map(|&n| Field::new(n, DataType::Float)),
    );
    Schema::new(fields)
}

/// Transformation step: turns daily records (plus per-day context from the
/// vehicle's country calendar) into a relational table with the
/// [`daily_schema`] layout.
pub fn daily_records_to_table(
    fleet: &Fleet,
    id: VehicleId,
    records: &[DailyRecord],
) -> Result<Table> {
    let vehicle = fleet
        .vehicle(id)
        .unwrap_or_else(|| panic!("vehicle {id:?} not in fleet"));
    let country = fleet.country_of(vehicle);
    let mut table = Table::new(daily_schema());
    for r in records {
        let mut row: Vec<Value> = vec![
            Value::Int(id.0 as i64),
            Value::Int(r.day),
            Value::Str(r.date.to_string()),
            Value::Float(r.hours),
        ];
        row.extend(can_channel_values(r).iter().map(|&v| Value::Float(v)));
        let ctx = day_context(r.date, country);
        row.extend(encode_context(&ctx).into_iter().map(Value::Float));
        table.push_row(row)?;
    }
    Ok(table)
}

/// Output of the full five-step pipeline for one vehicle.
#[derive(Debug, Clone)]
pub struct PreparedVehicle {
    /// Daily records recovered from the cleaned report stream.
    pub records: Vec<DailyRecord>,
    /// The relational daily table (transformation step output).
    pub table: Table,
    /// Aggregate cleaning statistics over all processed days.
    pub cleaning: CleaningStats,
}

/// Runs the five preparation steps on the *raw 10-minute report stream*
/// of one vehicle over `[start, start + n_days)`.
///
/// `dropout` controls the injected connectivity defects (use
/// [`DropoutConfig::none`] for a clean stream). Normalization is fitted by
/// the caller on a training window (see [`crate::normalize`]) rather than
/// here, to avoid train/test leakage.
pub fn prepare_vehicle_days(
    fleet: &Fleet,
    id: VehicleId,
    start: Date,
    n_days: usize,
    dropout: &DropoutConfig,
) -> Result<PreparedVehicle> {
    let rules = ValidityRules::default();
    let mut records = Vec::with_capacity(n_days);
    let mut total_stats = CleaningStats::default();
    for i in 0..n_days {
        let date = start.plus_days(i as i64);
        let raw = generator::generate_day_raw_reports(fleet, id, date, dropout);
        let (clean, stats) = clean_day(raw, &rules);
        total_stats.duplicates_removed += stats.duplicates_removed;
        total_stats.glitches_nulled += stats.glitches_nulled;
        total_stats.values_imputed += stats.values_imputed;
        records.push(aggregate_day(date, &clean));
    }
    let table = daily_records_to_table(fleet, id, &records)?;
    Ok(PreparedVehicle {
        records,
        table,
        cleaning: total_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_fleetsim::fleet::FleetConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::small(20, 555))
    }

    #[test]
    fn schema_has_expected_layout() {
        let s = daily_schema();
        assert_eq!(s.len(), 4 + 10 + CONTEXT_FEATURE_NAMES.len());
        assert_eq!(s.fields()[0].name, "vehicle_id");
        assert_eq!(s.index_of("hours").unwrap(), 3);
        assert!(s.index_of("is_holiday").is_ok());
        assert!(s.index_of("avg_rpm").is_ok());
    }

    #[test]
    fn transformation_builds_one_row_per_day() {
        let fleet = fleet();
        let id = VehicleId(4);
        let history = generator::generate_history(&fleet, id);
        let table = daily_records_to_table(&fleet, id, &history.records[..60]).unwrap();
        assert_eq!(table.n_rows(), 60);
        assert_eq!(table.get(0, "vehicle_id").unwrap(), Value::Int(4));
        let hours = table.float_column("hours").unwrap();
        for (row, rec) in hours.iter().zip(&history.records[..60]) {
            assert_eq!(row.unwrap(), rec.hours);
        }
    }

    #[test]
    fn pipeline_recovers_fast_path_hours() {
        // End-to-end on a clean stream: hours recovered from report counts
        // must match the daily fast path within one report interval.
        let fleet = fleet();
        let id = VehicleId(2);
        let start = fleet.config().start;
        let prepared = prepare_vehicle_days(&fleet, id, start, 40, &DropoutConfig::none()).unwrap();
        let reference = generator::generate_history(&fleet, id);
        assert_eq!(prepared.records.len(), 40);
        for (got, want) in prepared.records.iter().zip(&reference.records[..40]) {
            assert_eq!(got.date, want.date);
            assert!(
                (got.hours - want.hours).abs() <= 0.4,
                "day {}: pipeline {} vs fast path {}",
                got.date,
                got.hours,
                want.hours
            );
        }
        // Clean stream means nothing to fix.
        assert_eq!(prepared.cleaning, CleaningStats::default());
    }

    #[test]
    fn pipeline_survives_heavy_dropout() {
        let fleet = fleet();
        let id = VehicleId(2);
        let start = fleet.config().start;
        let noisy_cfg = DropoutConfig {
            outage_prob: 0.5,
            field_missing_prob: 0.1,
            corrupt_prob: 0.05,
            duplicate_prob: 0.05,
        };
        let prepared = prepare_vehicle_days(&fleet, id, start, 60, &noisy_cfg).unwrap();
        // The cleaner must have had work to do...
        let s = &prepared.cleaning;
        assert!(
            s.duplicates_removed + s.glitches_nulled + s.values_imputed > 0,
            "no defects encountered under heavy dropout?"
        );
        // ...and the output must stay physically valid.
        for r in &prepared.records {
            assert!((0.0..=24.0).contains(&r.hours));
            assert!(r.can.fuel_level_end_pct >= 0.0 && r.can.fuel_level_end_pct <= 100.0);
            assert!(r.can.avg_rpm >= 0.0 && r.can.avg_rpm <= 4000.0);
        }
    }

    #[test]
    fn enriched_columns_reflect_the_calendar() {
        let fleet = fleet();
        let id = VehicleId(0);
        let history = generator::generate_history(&fleet, id);
        let table = daily_records_to_table(&fleet, id, &history.records[..14]).unwrap();
        // Verify the day-of-week one-hot columns track the calendar.
        let monday_flags = table.float_column("dow_mon").unwrap();
        let holiday_flags = table.float_column("is_holiday").unwrap();
        let vehicle = fleet.vehicle(id).unwrap();
        let country = fleet.country_of(vehicle);
        for (i, (mon, hol)) in monday_flags.iter().zip(&holiday_flags).enumerate() {
            let date = fleet.config().start.plus_days(i as i64);
            assert_eq!(mon.unwrap() > 0.5, date.weekday().index() == 0);
            assert_eq!(hol.unwrap() > 0.5, country.is_holiday(date));
        }
    }
}
