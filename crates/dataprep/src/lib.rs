//! Columnar relational engine and the paper's data-preparation pipeline.
//!
//! The paper (§2, "Data preparation") prepares raw CAN-bus streams for
//! machine learning in five steps:
//!
//! 1. **Cleaning** — handle missing values, unify formats, remove
//!    inconsistencies (connectivity loss corrupts field data);
//! 2. **Normalization** — make continuous features comparable;
//! 3. **Aggregation** — aggregate the 10-minute reports to daily values
//!    and derive daily utilization hours from the sample counts;
//! 4. **Enrichment** — attach multi-faceted contextual information
//!    (day of week, country-dependent holiday flag, week/month/season/
//!    year, location);
//! 5. **Transformation** — produce a relational dataset.
//!
//! Step 5 needs a relational substrate, so this crate ships a small
//! in-memory columnar engine ([`table::Table`]): typed columns with
//! bit-packed null bitmaps, filter/project/sort, hash group-by with
//! aggregates, hash join, and CSV import/export. The preparation steps
//! ([`cleaning`], [`normalize`], [`aggregate`], [`enrich`], orchestrated
//! by [`pipeline`]) all operate through it or produce it.

#![warn(missing_docs)]

pub mod aggregate;
pub mod cleaning;
pub mod column;
pub mod csv;
pub mod describe;
pub mod enrich;
mod error;
pub mod normalize;
pub mod pipeline;
pub mod schema;
pub mod table;
pub mod value;

pub use error::PrepError;
pub use schema::{DataType, Field, Schema};
pub use table::Table;
pub use value::Value;

/// Convenience result alias for fallible preparation operations.
pub type Result<T> = std::result::Result<T, PrepError>;
