//! Lock-free chunked work dispatch over scoped threads.
//!
//! Both offline fleet evaluation ([`crate::fleet_eval`]) and online batch
//! serving (`vup-serve`) run many independent per-vehicle tasks and need
//! their results back in input order. This executor does that without any
//! mutex on the hot path:
//!
//! - **Dispatch** is a single `AtomicUsize` cursor. Workers claim chunks
//!   of indices with `fetch_add`, so there is no dispatch lock and no
//!   per-task allocation.
//! - **Collection** writes into a pre-allocated per-slot output vector.
//!   Each index is claimed by exactly one worker, so slot writes never
//!   contend; there is no result lock and no post-hoc sort — outputs
//!   land in input order by construction.
//! - **Panics are isolated.** Each task runs under `catch_unwind`; a
//!   panicking task yields an `Err` with the captured message in its own
//!   slot while every other task completes normally.
//!
//! Determinism: task `i` always computes the same value regardless of
//! thread count or scheduling, and slot `i` always holds task `i`'s
//! result, so the returned vector is identical for any thread count.
//!
//! A mutex-based scheduler with the same contract is kept in
//! [`run_chunked_mutex_baseline`] purely as the benchmark baseline; it
//! mirrors the design this executor replaced (shared cursor mutex plus a
//! results mutex with a final sort).
//!
//! **Observability.** [`run_chunked_observed`] is the same scheduler with
//! a per-worker stats side channel: each worker counts its claimed chunks
//! and executed tasks locally (plain `u64`s, no shared state on the hot
//! path) and, when the supplied [`ExecutorMetrics`] are live, times its
//! busy and idle spans. The stats are folded into a [`RunSummary`] and
//! published to the metrics registry once per run, on the coordinating
//! thread. With disabled metrics no clock is ever read, and the task
//! results are bit-identical either way — the stats are write-only.
//! [`run_chunked_traced`] additionally gives each worker an
//! `executor_worker` span under a caller-supplied [`SpanCtx`]; with a
//! disabled context the spans are no-ops and, again, no clock is read.
//!
//! **Cancellation.** [`run_chunked_cancellable`] threads a
//! [`CancelToken`] through the dispatch loop: workers re-check it before
//! every chunk claim, so a manual trip or an expired wall-clock deadline
//! stops the run at the next claim boundary and fills every unclaimed
//! slot with `Err(`[`CANCELLED_TASK`]`)`. The never-token used by all
//! other entry points keeps the check to one discriminant read.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vup_obs::{Counter, Gauge, Registry, SpanCtx};

/// Outcome of one task: its value, or the captured panic message.
pub type TaskResult<T> = std::result::Result<T, String>;

/// Error message filled into the slots of tasks a cancelled run never
/// claimed (see [`CancelToken`]).
pub const CANCELLED_TASK: &str = "cancelled before execution";

/// Cooperative cancellation for executor runs.
///
/// Workers check the token between chunk claims: once it reports
/// cancelled, no *new* chunk is claimed (tasks already in flight finish
/// normally) and every unclaimed slot comes back as
/// `Err(`[`CANCELLED_TASK`]`)`. Two trip conditions exist:
///
/// - **manual** — [`CancelToken::cancel`] flips a shared flag;
/// - **deadline** — a token built with [`CancelToken::with_deadline`]
///   additionally trips once the wall clock passes the deadline.
///
/// [`CancelToken::never`] (also the `Default`) holds nothing: checks are
/// a single `Option` discriminant read and **never touch the clock**, so
/// the plain entry points keep the executor's clock-free guarantee.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<CancelInner>>,
}

struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A live token that only trips when [`CancelToken::cancel`] is
    /// called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that can never trip; checks are clock-free no-ops.
    pub fn never() -> CancelToken {
        CancelToken::default()
    }

    /// A live token that additionally trips once `budget` of wall-clock
    /// time has elapsed from now. Checking such a token reads the clock.
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// Trips the token; every subsequent check reports cancelled.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has tripped (manually, or by passing its
    /// deadline). Always `false` for [`CancelToken::never`], with no
    /// clock read.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }
}

/// What one executor worker did during one run.
///
/// Chunk and task counts are always collected (two local `u64` adds per
/// chunk). The nanosecond spans are only measured when the run's
/// [`ExecutorMetrics`] are live; otherwise they stay 0 and the clock is
/// never read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Chunks this worker claimed from the dispatch cursor.
    pub chunks_claimed: u64,
    /// Tasks this worker executed.
    pub tasks_run: u64,
    /// Nanoseconds spent inside task bodies.
    pub busy_nanos: u64,
    /// Nanoseconds spent outside task bodies (claim overhead plus waiting
    /// for `thread::scope` to wind down).
    pub idle_nanos: u64,
}

/// Per-worker stats of one [`run_chunked_observed`] call.
///
/// Worker entries are in completion order, which is scheduler-dependent;
/// the totals are what to assert on. Summed over all workers,
/// `chunks_claimed` is always `n_tasks.div_ceil(chunk_size)` and
/// `tasks_run` is always `n_tasks`, for every thread count.
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// One entry per worker that participated in the run.
    pub workers: Vec<WorkerStats>,
}

impl RunSummary {
    /// Total chunks claimed across all workers.
    pub fn chunks_claimed(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks_claimed).sum()
    }

    /// Total tasks executed across all workers.
    pub fn tasks_run(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_run).sum()
    }

    /// Total nanoseconds spent inside task bodies (0 when untimed).
    pub fn busy_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_nanos).sum()
    }

    /// Total nanoseconds spent outside task bodies (0 when untimed).
    pub fn idle_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_nanos).sum()
    }
}

/// Registry handles for one executor pool's metrics.
///
/// Register once per pool (e.g. `"fleet_eval"`, `"serve"`) and reuse for
/// every run; the `pool` label keeps independent dispatch sites apart in
/// one registry. [`ExecutorMetrics::disabled`] is the no-op used by the
/// un-instrumented entry points.
pub struct ExecutorMetrics {
    enabled: bool,
    runs: Counter,
    chunks: Counter,
    tasks: Counter,
    busy_nanos: Counter,
    idle_nanos: Counter,
    workers: Gauge,
}

impl ExecutorMetrics {
    /// Registers the executor metric family under `pool`.
    pub fn register(registry: &Registry, pool: &str) -> ExecutorMetrics {
        registry.describe("vup_executor_runs_total", "Executor runs, by pool.");
        registry.describe(
            "vup_executor_chunks_claimed_total",
            "Chunks claimed from the dispatch cursor.",
        );
        registry.describe("vup_executor_tasks_total", "Tasks executed.");
        registry.describe(
            "vup_executor_busy_nanos_total",
            "Worker nanoseconds spent inside task bodies.",
        );
        registry.describe(
            "vup_executor_idle_nanos_total",
            "Worker nanoseconds spent outside task bodies.",
        );
        registry.describe(
            "vup_executor_workers",
            "Workers that participated in the last run.",
        );
        let labels = [("pool", pool)];
        ExecutorMetrics {
            enabled: registry.is_enabled(),
            runs: registry.counter_with("vup_executor_runs_total", &labels),
            chunks: registry.counter_with("vup_executor_chunks_claimed_total", &labels),
            tasks: registry.counter_with("vup_executor_tasks_total", &labels),
            busy_nanos: registry.counter_with("vup_executor_busy_nanos_total", &labels),
            idle_nanos: registry.counter_with("vup_executor_idle_nanos_total", &labels),
            workers: registry.gauge_with("vup_executor_workers", &labels),
        }
    }

    /// Metrics that record nothing and suppress all timing.
    pub fn disabled() -> ExecutorMetrics {
        ExecutorMetrics::register(&Registry::disabled(), "")
    }

    /// Whether runs under these metrics measure and record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Publishes one run's summary (single update pass, coordinator only).
    fn record(&self, summary: &RunSummary) {
        if !self.enabled {
            return;
        }
        self.runs.inc();
        self.chunks.add(summary.chunks_claimed());
        self.tasks.add(summary.tasks_run());
        self.busy_nanos.add(summary.busy_nanos());
        self.idle_nanos.add(summary.idle_nanos());
        self.workers.set(summary.workers.len() as f64);
    }
}

/// Saturating nanosecond reading of an elapsed [`Instant`] span.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Pre-allocated output slots, one per task.
///
/// Safety contract: index `i` is written by exactly one worker (the one
/// that claimed it from the atomic cursor) and only read after
/// `thread::scope` has joined every worker, so no cell is ever aliased
/// mutably. This is what lets the executor require only `T: Send` —
/// `OnceLock` slots would demand `T: Sync`, which task outputs have no
/// reason to satisfy.
struct Slots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Slots<T> {
        Slots {
            cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Writes slot `i`. Caller must be the unique claimant of `i`.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { *self.cells[i].get() = Some(value) };
    }

    /// Consumes the slots after all workers have been joined.
    fn into_values(self) -> impl Iterator<Item = Option<T>> {
        self.cells.into_iter().map(UnsafeCell::into_inner)
    }
}

/// Resolves a requested thread count: `0` means the machine's available
/// parallelism, and the result is never larger than the task count.
pub fn effective_threads(n_threads: usize, n_tasks: usize) -> usize {
    let requested = if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        n_threads
    };
    requested.min(n_tasks).max(1)
}

/// Runs `n_tasks` independent tasks on `n_threads` workers (0 = auto),
/// one task per claim. Best for heavy, uneven tasks such as per-vehicle
/// model training. Results are returned in task-index order.
pub fn run_tasks<T, F>(n_tasks: usize, n_threads: usize, task: F) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked(n_tasks, n_threads, 1, task)
}

/// [`run_tasks`] with per-worker stats and metrics publishing.
pub fn run_tasks_observed<T, F>(
    n_tasks: usize,
    n_threads: usize,
    task: F,
    metrics: &ExecutorMetrics,
) -> (Vec<TaskResult<T>>, RunSummary)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_observed(n_tasks, n_threads, 1, task, metrics)
}

/// [`run_tasks_observed`] with per-worker trace spans under `parent`.
pub fn run_tasks_traced<T, F>(
    n_tasks: usize,
    n_threads: usize,
    task: F,
    metrics: &ExecutorMetrics,
    parent: &SpanCtx,
) -> (Vec<TaskResult<T>>, RunSummary)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_traced(n_tasks, n_threads, 1, task, metrics, parent)
}

/// Runs `n_tasks` independent tasks, claimed `chunk_size` indices at a
/// time. Larger chunks amortize the atomic claim for very light tasks;
/// `chunk_size = 1` gives the best load balance for heavy ones.
pub fn run_chunked<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_observed(
        n_tasks,
        n_threads,
        chunk_size,
        task,
        &ExecutorMetrics::disabled(),
    )
    .0
}

/// [`run_chunked`] with per-worker stats and metrics publishing.
///
/// Returns the task results (identical to [`run_chunked`]'s, bit for bit)
/// plus a [`RunSummary`] of what each worker did. When `metrics` are live
/// the workers additionally time their busy/idle spans and the summary is
/// published to the registry; when disabled no clock is read and only the
/// chunk/task counts are collected.
pub fn run_chunked_observed<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
    metrics: &ExecutorMetrics,
) -> (Vec<TaskResult<T>>, RunSummary)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_traced(
        n_tasks,
        n_threads,
        chunk_size,
        task,
        metrics,
        &SpanCtx::disabled(),
    )
}

/// [`run_chunked_observed`] with per-worker trace spans: every worker
/// (including the single-threaded fast path) runs under an
/// `executor_worker` span parented to `parent`, annotated with the
/// chunks and tasks it processed. A disabled `parent` makes the spans
/// no-ops — no clock reads, identical results.
pub fn run_chunked_traced<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
    metrics: &ExecutorMetrics,
    parent: &SpanCtx,
) -> (Vec<TaskResult<T>>, RunSummary)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked_cancellable(
        n_tasks,
        n_threads,
        chunk_size,
        task,
        metrics,
        parent,
        &CancelToken::never(),
    )
}

/// [`run_chunked_traced`] with a deadline-aware cancellation check:
/// workers consult `cancel` before every chunk claim (and, on the
/// single-threaded fast path, before every task), so a tripped token —
/// manual or wall-clock deadline — stops the run at the next claim
/// boundary. Tasks already in flight complete; every task that was never
/// claimed yields `Err(`[`CANCELLED_TASK`]`)` in its slot, and
/// `tasks_run` in the summary counts only the tasks that actually
/// executed. With [`CancelToken::never`] this is exactly
/// [`run_chunked_traced`]: one extra discriminant read per claim, no
/// clock access.
#[allow(clippy::too_many_arguments)]
pub fn run_chunked_cancellable<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
    metrics: &ExecutorMetrics,
    parent: &SpanCtx,
    cancel: &CancelToken,
) -> (Vec<TaskResult<T>>, RunSummary)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if n_tasks == 0 {
        let summary = RunSummary::default();
        metrics.record(&summary);
        return (Vec::new(), summary);
    }
    let n_threads = effective_threads(n_threads, n_tasks);
    let timed = metrics.is_enabled();

    let run_one = |i: usize| -> TaskResult<T> {
        catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| panic_message(&*payload))
    };

    if n_threads == 1 {
        // Same semantics (per-task panic isolation), no thread overhead.
        let mut span = parent.child("executor_worker");
        let started = timed.then(Instant::now);
        let mut executed = 0usize;
        let results: Vec<TaskResult<T>> = (0..n_tasks)
            .map(|i| {
                if cancel.is_cancelled() {
                    return Err(CANCELLED_TASK.to_string());
                }
                executed += 1;
                run_one(i)
            })
            .collect();
        let summary = RunSummary {
            workers: vec![WorkerStats {
                chunks_claimed: executed.div_ceil(chunk_size) as u64,
                tasks_run: executed as u64,
                busy_nanos: started.map_or(0, elapsed_nanos),
                idle_nanos: 0,
            }],
        };
        span.arg("chunks", summary.chunks_claimed());
        span.arg("tasks", summary.tasks_run());
        metrics.record(&summary);
        return (results, summary);
    }

    let slots: Slots<TaskResult<T>> = Slots::new(n_tasks);
    let cursor = AtomicUsize::new(0);
    // Cold path: each worker pushes its local stats exactly once, after
    // its last claim fails. Never touched while tasks run.
    let worker_stats: Mutex<Vec<WorkerStats>> = Mutex::new(Vec::with_capacity(n_threads));

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| {
                let mut span = parent.child("executor_worker");
                let worker_started = timed.then(Instant::now);
                let mut stats = WorkerStats::default();
                loop {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= n_tasks {
                        break;
                    }
                    let end = (start + chunk_size).min(n_tasks);
                    stats.chunks_claimed += 1;
                    stats.tasks_run += (end - start) as u64;
                    let chunk_started = timed.then(Instant::now);
                    for i in start..end {
                        let result = run_one(i);
                        // Sound: this worker is the unique claimant of i
                        // (fetch_add hands out each index once).
                        unsafe { slots.write(i, result) };
                    }
                    if let Some(t0) = chunk_started {
                        stats.busy_nanos += elapsed_nanos(t0);
                    }
                }
                if let Some(t0) = worker_started {
                    stats.idle_nanos = elapsed_nanos(t0).saturating_sub(stats.busy_nanos);
                }
                span.arg("chunks", stats.chunks_claimed);
                span.arg("tasks", stats.tasks_run);
                worker_stats.lock().expect("stats lock").push(stats);
            });
        }
    });

    let summary = RunSummary {
        workers: worker_stats.into_inner().expect("stats lock"),
    };
    metrics.record(&summary);

    let results = slots
        .into_values()
        // Every claimed slot was filled before its worker was joined; an
        // empty slot means the run was cancelled before the index was
        // ever claimed.
        .map(|slot| slot.unwrap_or_else(|| Err(CANCELLED_TASK.to_string())))
        .collect();
    (results, summary)
}

/// The pre-refactor scheduler, kept only so benchmarks can compare it
/// against [`run_chunked`]: a mutex-guarded cursor for dispatch and a
/// mutex-guarded result vector that must be sorted afterwards.
pub fn run_chunked_mutex_baseline<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if n_tasks == 0 {
        return Vec::new();
    }
    let n_threads = effective_threads(n_threads, n_tasks);

    let cursor: Mutex<usize> = Mutex::new(0);
    let results: Mutex<Vec<(usize, TaskResult<T>)>> = Mutex::new(Vec::with_capacity(n_tasks));

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let start = {
                    let mut next = cursor.lock().expect("cursor lock");
                    if *next >= n_tasks {
                        break;
                    }
                    let start = *next;
                    *next = (*next + chunk_size).min(n_tasks);
                    start
                };
                let end = (start + chunk_size).min(n_tasks);
                for i in start..end {
                    let result = catch_unwind(AssertUnwindSafe(|| task(i)))
                        .map_err(|payload| panic_message(&*payload));
                    results.lock().expect("results lock").push((i, result));
                }
            });
        }
    });

    let mut collected = results.into_inner().expect("results lock");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_for_all_thread_counts() {
        for threads in [1usize, 2, 4, 0] {
            let results = run_tasks(100, threads, |i| i * i);
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(values, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_claiming_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        for chunk in [1usize, 3, 7, 64, 1000] {
            let calls: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
            let results = run_chunked(97, 4, chunk, |i| {
                calls[i].fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(results.len(), 97);
            for (i, c) in calls.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {chunk}, index {i}");
            }
        }
    }

    #[test]
    fn a_panicking_task_is_isolated_to_its_slot() {
        let results = run_tasks(10, 4, |i| {
            if i == 3 {
                panic!("task {i} exploded");
            }
            i + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let message = r.as_ref().unwrap_err();
                assert!(message.contains("task 3 exploded"), "got: {message}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn panics_are_isolated_single_threaded_too() {
        let results = run_tasks(4, 1, |i| {
            if i % 2 == 0 {
                panic!("even panic");
            }
            i
        });
        assert!(results[0].is_err());
        assert_eq!(*results[1].as_ref().unwrap(), 1);
        assert!(results[2].is_err());
        assert_eq!(*results[3].as_ref().unwrap(), 3);
    }

    #[test]
    fn zero_tasks_returns_empty() {
        let results: Vec<TaskResult<u8>> = run_tasks(0, 4, |_| unreachable!());
        assert!(results.is_empty());
        let results: Vec<TaskResult<u8>> = run_chunked_mutex_baseline(0, 4, 8, |_| unreachable!());
        assert!(results.is_empty());
    }

    #[test]
    fn mutex_baseline_matches_lock_free_results() {
        let a = run_chunked(50, 4, 4, |i| i as u64 * 3);
        let b = run_chunked_mutex_baseline(50, 4, 4, |i| i as u64 * 3);
        let a: Vec<u64> = a.into_iter().map(|r| r.unwrap()).collect();
        let b: Vec<u64> = b.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn observed_run_matches_plain_run_and_counts_everything() {
        for (threads, chunk) in [(1usize, 1usize), (1, 8), (4, 1), (4, 8), (0, 3)] {
            let plain = run_chunked(97, threads, chunk, |i| i * 2);
            let (observed, summary) =
                run_chunked_observed(97, threads, chunk, |i| i * 2, &ExecutorMetrics::disabled());
            let a: Vec<usize> = plain.into_iter().map(|r| r.unwrap()).collect();
            let b: Vec<usize> = observed.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(a, b, "threads {threads}, chunk {chunk}");
            // The claim/task totals are deterministic for every schedule.
            assert_eq!(summary.tasks_run(), 97, "threads {threads}, chunk {chunk}");
            assert_eq!(
                summary.chunks_claimed(),
                97usize.div_ceil(chunk) as u64,
                "threads {threads}, chunk {chunk}"
            );
            // Untimed run: no clock was read, so no nanos were recorded.
            assert_eq!(summary.busy_nanos(), 0);
            assert_eq!(summary.idle_nanos(), 0);
        }
    }

    #[test]
    fn live_metrics_accumulate_run_totals() {
        let registry = Registry::new();
        let metrics = ExecutorMetrics::register(&registry, "test_pool");
        let (_, first) = run_chunked_observed(20, 4, 2, |i| i, &metrics);
        let (_, second) = run_chunked_observed(10, 2, 1, |i| i, &metrics);
        assert!(first.workers.len() <= 4 && !first.workers.is_empty());

        let labels = [("pool", "test_pool")];
        assert_eq!(
            registry
                .counter_with("vup_executor_runs_total", &labels)
                .get(),
            2
        );
        assert_eq!(
            registry
                .counter_with("vup_executor_tasks_total", &labels)
                .get(),
            30
        );
        assert_eq!(
            registry
                .counter_with("vup_executor_chunks_claimed_total", &labels)
                .get(),
            first.chunks_claimed() + second.chunks_claimed()
        );
        assert_eq!(
            registry
                .counter_with("vup_executor_busy_nanos_total", &labels)
                .get(),
            first.busy_nanos() + second.busy_nanos()
        );
        assert_eq!(
            registry.gauge_with("vup_executor_workers", &labels).get(),
            second.workers.len() as f64
        );
    }

    #[test]
    fn observed_empty_run_still_counts_the_run() {
        let registry = Registry::new();
        let metrics = ExecutorMetrics::register(&registry, "empty");
        let (results, summary) =
            run_chunked_observed(0, 4, 1, |_: usize| -> u8 { unreachable!() }, &metrics);
        assert!(results.is_empty() && summary.workers.is_empty());
        let labels = [("pool", "empty")];
        assert_eq!(
            registry
                .counter_with("vup_executor_runs_total", &labels)
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter_with("vup_executor_tasks_total", &labels)
                .get(),
            0
        );
    }

    #[test]
    fn traced_run_matches_plain_and_records_worker_spans() {
        use vup_obs::Tracer;
        for threads in [1usize, 4] {
            let tracer = Tracer::new();
            let root = tracer.root("run");
            let (traced, summary) = run_chunked_traced(
                40,
                threads,
                4,
                |i| i * 3,
                &ExecutorMetrics::disabled(),
                &root.ctx(),
            );
            drop(root);
            let plain = run_chunked(40, threads, 4, |i| i * 3);
            let a: Vec<usize> = plain.into_iter().map(|r| r.unwrap()).collect();
            let b: Vec<usize> = traced.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(a, b, "threads = {threads}");

            let snapshot = tracer.snapshot();
            let workers: Vec<_> = snapshot
                .events
                .iter()
                .filter(|e| e.name == "executor_worker")
                .collect();
            assert_eq!(workers.len(), summary.workers.len(), "threads = {threads}");
            // Worker spans carry the same totals the summary reports.
            let tasks: u64 = workers
                .iter()
                .map(|e| {
                    e.args
                        .iter()
                        .find(|(k, _)| *k == "tasks")
                        .unwrap()
                        .1
                        .parse::<u64>()
                        .unwrap()
                })
                .sum();
            assert_eq!(tasks, 40);
        }
    }

    #[test]
    fn disabled_span_ctx_keeps_the_traced_path_clock_free() {
        let (results, summary) = run_chunked_traced(
            16,
            2,
            2,
            |i| i,
            &ExecutorMetrics::disabled(),
            &SpanCtx::disabled(),
        );
        assert_eq!(results.len(), 16);
        assert_eq!(summary.busy_nanos(), 0);
        assert_eq!(summary.idle_nanos(), 0);
    }

    #[test]
    fn never_token_matches_the_plain_run_bit_for_bit() {
        for threads in [1usize, 4] {
            let plain = run_chunked(60, threads, 3, |i| i * 7);
            let (cancellable, summary) = run_chunked_cancellable(
                60,
                threads,
                3,
                |i| i * 7,
                &ExecutorMetrics::disabled(),
                &SpanCtx::disabled(),
                &CancelToken::never(),
            );
            let a: Vec<usize> = plain.into_iter().map(|r| r.unwrap()).collect();
            let b: Vec<usize> = cancellable.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(a, b, "threads = {threads}");
            assert_eq!(summary.tasks_run(), 60);
            // A never-token run stays clock-free.
            assert_eq!(summary.busy_nanos(), 0);
        }
    }

    #[test]
    fn pre_tripped_token_cancels_every_unclaimed_task() {
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 4] {
            let (results, summary) = run_chunked_cancellable(
                20,
                threads,
                2,
                |_| -> usize { panic!("a cancelled run must not execute tasks") },
                &ExecutorMetrics::disabled(),
                &SpanCtx::disabled(),
                &token,
            );
            assert_eq!(results.len(), 20, "threads = {threads}");
            for r in &results {
                assert_eq!(r.as_ref().unwrap_err(), CANCELLED_TASK);
            }
            assert_eq!(summary.tasks_run(), 0, "threads = {threads}");
        }
    }

    #[test]
    fn mid_run_cancellation_stops_new_claims_but_keeps_finished_work() {
        // Single-threaded so the trip point is deterministic: task 5
        // cancels the token, so tasks 0..=5 ran and 6.. were never
        // claimed.
        let token = CancelToken::new();
        let (results, summary) = run_chunked_cancellable(
            12,
            1,
            1,
            |i| {
                if i == 5 {
                    token.cancel();
                }
                i * 2
            },
            &ExecutorMetrics::disabled(),
            &SpanCtx::disabled(),
            &token,
        );
        for (i, r) in results.iter().enumerate() {
            if i <= 5 {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            } else {
                assert_eq!(r.as_ref().unwrap_err(), CANCELLED_TASK);
            }
        }
        assert_eq!(summary.tasks_run(), 6);
    }

    #[test]
    fn expired_deadline_token_reports_cancelled() {
        let token = CancelToken::with_deadline(Duration::from_nanos(0));
        assert!(token.is_cancelled());
        let (results, _) = run_chunked_cancellable(
            8,
            2,
            1,
            |i| i,
            &ExecutorMetrics::disabled(),
            &SpanCtx::disabled(),
            &token,
        );
        assert!(results.iter().all(|r| r.is_err()));
        // A generous deadline does not trip.
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        // The never token cannot trip at all, even after cancel().
        let never = CancelToken::never();
        never.cancel();
        assert!(!never.is_cancelled());
    }

    #[test]
    fn effective_threads_resolves_auto_and_caps() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
