//! Synthetic per-country holiday calendars.
//!
//! The paper enriches CAN data with a "holiday/working day" flag that
//! *depends on the country* and observes that "for most of the vehicles
//! located in the northern hemisphere, the number of days in which they
//! were unused was maximal in December and January due to Christmas
//! holidays and unfavourable weather". The simulator reproduces that:
//! every country has a weekend convention, a winter-shutdown block for
//! most northern countries, and a handful of seeded national holidays.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::calendar::{Date, Weekday};

/// Hemisphere of a country (drives the seasonal usage modulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hemisphere {
    /// North of the equator (≈ 85 % of the simulated fleet).
    North,
    /// South of the equator.
    South,
}

/// Weekend convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeekendKind {
    /// Saturday + Sunday (most countries).
    SatSun,
    /// Friday + Saturday (parts of the Middle East and North Africa).
    FriSat,
}

/// A simulated country: weekend convention, hemisphere, winter shutdown
/// and a set of fixed-date national holidays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Country {
    /// Stable identifier in `0..n_countries`.
    pub id: u16,
    /// Hemisphere of the country.
    pub hemisphere: Hemisphere,
    /// Weekend convention.
    pub weekend: WeekendKind,
    /// Whether the late-December / early-January shutdown applies.
    pub christmas_shutdown: bool,
    /// Fixed-date national holidays as `(month, day)` pairs.
    pub national_holidays: Vec<(u8, u8)>,
}

/// Number of simulated countries (paper: 151).
pub const N_COUNTRIES: u16 = 151;

impl Country {
    /// Deterministically builds country `id` from the fleet seed.
    pub fn generate(id: u16, fleet_seed: u64) -> Country {
        let mut rng = StdRng::seed_from_u64(
            fleet_seed ^ 0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(id as u64 + 1),
        );
        // ~85 % of industrial fleets in the data-rich north.
        let hemisphere = if rng.random::<f64>() < 0.85 {
            Hemisphere::North
        } else {
            Hemisphere::South
        };
        let weekend = if rng.random::<f64>() < 0.92 {
            WeekendKind::SatSun
        } else {
            WeekendKind::FriSat
        };
        // Christmas shutdown applies to most northern countries.
        let christmas_shutdown = match hemisphere {
            Hemisphere::North => rng.random::<f64>() < 0.9,
            Hemisphere::South => rng.random::<f64>() < 0.4,
        };
        let n_holidays = rng.random_range(4..=9);
        let mut national_holidays = Vec::with_capacity(n_holidays);
        while national_holidays.len() < n_holidays {
            let month = rng.random_range(1..=12_u8);
            let day = rng.random_range(1..=28_u8);
            if !national_holidays.contains(&(month, day)) {
                national_holidays.push((month, day));
            }
        }
        national_holidays.sort_unstable();
        Country {
            id,
            hemisphere,
            weekend,
            christmas_shutdown,
            national_holidays,
        }
    }

    /// Whether `date` falls on this country's weekend.
    pub fn is_weekend(&self, date: Date) -> bool {
        let wd = date.weekday();
        match self.weekend {
            WeekendKind::SatSun => matches!(wd, Weekday::Saturday | Weekday::Sunday),
            WeekendKind::FriSat => matches!(wd, Weekday::Friday | Weekday::Saturday),
        }
    }

    /// Whether `date` is a public holiday (national holiday or within the
    /// December 24 – January 2 shutdown where applicable). Weekends are
    /// *not* holidays; use [`Country::is_non_working`] for the union.
    pub fn is_holiday(&self, date: Date) -> bool {
        if self.christmas_shutdown
            && ((date.month == 12 && date.day >= 24) || (date.month == 1 && date.day <= 2))
        {
            return true;
        }
        self.national_holidays.contains(&(date.month, date.day))
    }

    /// Weekend or holiday.
    pub fn is_non_working(&self, date: Date) -> bool {
        self.is_weekend(date) || self.is_holiday(date)
    }
}

/// Builds the full set of [`N_COUNTRIES`] countries for a fleet seed.
pub fn generate_countries(fleet_seed: u64) -> Vec<Country> {
    (0..N_COUNTRIES)
        .map(|id| Country::generate(id, fleet_seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Country::generate(17, 42);
        let b = Country::generate(17, 42);
        assert_eq!(a, b);
        let c = Country::generate(17, 43);
        // Different seed should (with overwhelming probability) differ.
        assert!(a != c || a.national_holidays != c.national_holidays);
    }

    #[test]
    fn weekend_conventions() {
        let mut satsun = Country::generate(0, 1);
        satsun.weekend = WeekendKind::SatSun;
        let sat = Date::new(2017, 6, 17).unwrap(); // Saturday
        let fri = Date::new(2017, 6, 16).unwrap(); // Friday
        let mon = Date::new(2017, 6, 19).unwrap(); // Monday
        assert!(satsun.is_weekend(sat));
        assert!(!satsun.is_weekend(fri));
        assert!(!satsun.is_weekend(mon));

        let mut frisat = satsun.clone();
        frisat.weekend = WeekendKind::FriSat;
        assert!(frisat.is_weekend(fri));
        assert!(frisat.is_weekend(sat));
        assert!(!frisat.is_weekend(Date::new(2017, 6, 18).unwrap())); // Sunday
    }

    #[test]
    fn christmas_shutdown_window() {
        let mut c = Country::generate(0, 1);
        c.christmas_shutdown = true;
        assert!(c.is_holiday(Date::new(2016, 12, 25).unwrap()));
        assert!(c.is_holiday(Date::new(2016, 12, 24).unwrap()));
        assert!(c.is_holiday(Date::new(2017, 1, 1).unwrap()));
        assert!(c.is_holiday(Date::new(2017, 1, 2).unwrap()));
        assert!(
            !c.is_holiday(Date::new(2017, 1, 3).unwrap()) || c.national_holidays.contains(&(1, 3))
        );
        c.christmas_shutdown = false;
        c.national_holidays.clear();
        assert!(!c.is_holiday(Date::new(2016, 12, 25).unwrap()));
    }

    #[test]
    fn national_holidays_hit() {
        let mut c = Country::generate(3, 9);
        c.national_holidays = vec![(7, 14)];
        c.christmas_shutdown = false;
        assert!(c.is_holiday(Date::new(2018, 7, 14).unwrap()));
        assert!(!c.is_holiday(Date::new(2018, 7, 15).unwrap()));
    }

    #[test]
    fn non_working_is_union() {
        let mut c = Country::generate(5, 11);
        c.weekend = WeekendKind::SatSun;
        c.christmas_shutdown = true;
        c.national_holidays = vec![(5, 1)];
        assert!(c.is_non_working(Date::new(2017, 5, 1).unwrap())); // Monday holiday
        assert!(c.is_non_working(Date::new(2017, 5, 6).unwrap())); // Saturday
        assert!(!c.is_non_working(Date::new(2017, 5, 3).unwrap())); // plain Wednesday
    }

    #[test]
    fn full_roster_properties() {
        let countries = generate_countries(7);
        assert_eq!(countries.len(), N_COUNTRIES as usize);
        let north = countries
            .iter()
            .filter(|c| c.hemisphere == Hemisphere::North)
            .count();
        // ~85 % north with generous tolerance.
        assert!(north > 110 && north < 151, "north = {north}");
        for c in &countries {
            assert!((4..=9).contains(&c.national_holidays.len()));
            let mut sorted = c.national_holidays.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), c.national_holidays.len(), "dup holidays");
        }
    }
}
