//! Metric primitives: atomic counters, gauges, fixed-bucket histograms,
//! and the timing spans recorded into them.
//!
//! Every handle is a thin `Option<Arc<…>>`: a handle from an enabled
//! [`Registry`](crate::Registry) updates shared atomics with relaxed
//! ordering (the hot path takes no lock), while a handle from a disabled
//! registry is `None` and every operation — including the clock reads of
//! the timing spans — is skipped entirely.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing `u64` metric.
#[derive(Clone, Default)]
pub struct Counter {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that records nothing (what disabled registries return).
    pub fn noop() -> Counter {
        Counter::default()
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op counter).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A settable `f64` metric (stored as bits in an `AtomicU64`).
#[derive(Clone, Default)]
pub struct Gauge {
    pub(crate) cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A gauge that records nothing (what disabled registries return).
    pub fn noop() -> Gauge {
        Gauge::default()
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (lock-free compare-exchange loop).
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.cell {
            let mut current = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + delta).to_bits();
                match cell.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(observed) => current = observed,
                }
            }
        }
    }

    /// Current value (0.0 for a no-op gauge).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Upper bucket bounds of a [`Histogram`]: a strictly increasing list of
/// inclusive `u64` upper limits; observations above the last bound land
/// in an implicit `+Inf` bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Buckets(Vec<u64>);

impl Buckets {
    /// Buckets from explicit bounds. Panics unless the bounds are
    /// non-empty and strictly increasing.
    pub fn from_bounds(bounds: Vec<u64>) -> Buckets {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing: {bounds:?}"
        );
        Buckets(bounds)
    }

    /// `count` bounds starting at `start`, each `factor` times the last.
    pub fn exponential(start: u64, factor: u64, count: usize) -> Buckets {
        assert!(start > 0 && factor > 1 && count > 0);
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start;
        for _ in 0..count {
            bounds.push(bound);
            bound = bound.saturating_mul(factor);
        }
        Buckets::from_bounds(bounds)
    }

    /// `count` bounds starting at `start`, spaced `step` apart.
    pub fn linear(start: u64, step: u64, count: usize) -> Buckets {
        assert!(step > 0 && count > 0);
        Buckets::from_bounds((0..count as u64).map(|i| start + i * step).collect())
    }

    /// The default latency scale for nanosecond spans: 1 µs to ~16.8 s in
    /// ×4 steps (13 finite buckets).
    pub fn latency() -> Buckets {
        Buckets::exponential(1_000, 4, 13)
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0
    }
}

/// Shared state of one histogram.
pub(crate) struct HistogramCore {
    bounds: Vec<u64>,
    /// One count per finite bucket plus the trailing `+Inf` bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(buckets: &Buckets) -> HistogramCore {
        let bounds = buckets.bounds().to_vec();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            counts,
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&bound| value > bound);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// A fixed-bucket distribution of `u64` observations (typically elapsed
/// nanoseconds). Observing is two relaxed atomic adds; no lock, no
/// allocation.
#[derive(Clone, Default)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A histogram that records nothing (what disabled registries return).
    pub fn noop() -> Histogram {
        Histogram::default()
    }

    /// Test-only constructor for a standalone live histogram.
    #[cfg(test)]
    pub(crate) fn live(buckets: &Buckets) -> Histogram {
        Histogram {
            core: Some(Arc::new(HistogramCore::new(buckets))),
        }
    }

    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.core {
            core.observe(value);
        }
    }

    /// Runs `f`, recording its elapsed nanoseconds. The clock is not read
    /// at all when the histogram is disabled.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.core {
            None => f(),
            Some(core) => {
                let started = Instant::now();
                let result = f();
                core.observe(elapsed_nanos(started));
                result
            }
        }
    }

    /// Starts a span that records its elapsed nanoseconds here when
    /// dropped (or explicitly [`Timer::stop`]ped).
    pub fn start_timer(&self) -> Timer {
        Timer {
            span: self
                .core
                .as_ref()
                .map(|core| (Arc::clone(core), Instant::now())),
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.as_ref().map_or(0, |core| {
            core.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
        })
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |core| core.sum.load(Ordering::Relaxed))
    }

    /// The finite upper bounds (empty for a no-op histogram).
    pub fn bounds(&self) -> &[u64] {
        self.core.as_ref().map_or(&[], |core| &core.bounds)
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// bucket. Empty for a no-op histogram.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core.as_ref().map_or_else(Vec::new, |core| {
            core.counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect()
        })
    }

    /// Adds every observation of `other` into this histogram. Panics when
    /// the bucket bounds differ (merging distributions measured on
    /// different scales is meaningless) or when either side is a no-op.
    pub fn merge_from(&self, other: &Histogram) {
        let (mine, theirs) = match (&self.core, &other.core) {
            (Some(a), Some(b)) => (a, b),
            _ => panic!("merge_from requires two live histograms"),
        };
        assert_eq!(
            mine.bounds, theirs.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (dst, src) in mine.counts.iter().zip(&theirs.counts) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        mine.sum
            .fetch_add(theirs.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Saturating nanosecond reading of an elapsed [`Instant`] span.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A running timing span; see [`Histogram::start_timer`].
///
/// Records the elapsed nanoseconds into its histogram on drop. A span
/// started on a no-op histogram holds nothing and never reads the clock.
#[must_use = "a dropped timer records immediately; bind it to time a scope"]
pub struct Timer {
    span: Option<(Arc<HistogramCore>, Instant)>,
}

impl Timer {
    /// Stops the span now and returns the recorded nanoseconds (0 when
    /// the histogram is disabled).
    pub fn stop(mut self) -> u64 {
        match self.span.take() {
            None => 0,
            Some((core, started)) => {
                let nanos = elapsed_nanos(started);
                core.observe(nanos);
                nanos
            }
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some((core, started)) = self.span.take() {
            core.observe(elapsed_nanos(started));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handles_record_nothing() {
        let counter = Counter::noop();
        counter.inc();
        counter.add(10);
        assert_eq!(counter.get(), 0);
        assert!(!counter.is_enabled());

        let gauge = Gauge::noop();
        gauge.set(3.5);
        gauge.add(1.0);
        assert_eq!(gauge.get(), 0.0);

        let hist = Histogram::noop();
        hist.observe(5);
        assert_eq!(hist.time(|| 42), 42);
        assert_eq!(hist.start_timer().stop(), 0);
        assert_eq!(hist.count(), 0);
        assert!(hist.bucket_counts().is_empty());
    }

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let hist = Histogram::live(&Buckets::from_bounds(vec![10, 100]));
        for v in [0, 10, 11, 100, 101, 5_000] {
            hist.observe(v);
        }
        // Inclusive upper bounds: 10 → first, 100 → second, rest → +Inf.
        assert_eq!(hist.bucket_counts(), vec![2, 2, 2]);
        assert_eq!(hist.count(), 6);
        assert_eq!(hist.sum(), 10 + 11 + 100 + 101 + 5_000);
    }

    #[test]
    fn gauge_add_accumulates() {
        let gauge = Gauge {
            cell: Some(Arc::new(AtomicU64::new(0))),
        };
        gauge.set(2.0);
        gauge.add(0.5);
        gauge.add(-1.0);
        assert!((gauge.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timer_records_one_observation() {
        let hist = Histogram::live(&Buckets::latency());
        {
            let _timer = hist.start_timer();
        }
        hist.time(|| std::hint::black_box(1 + 1));
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn merge_adds_counts_and_sum() {
        let bounds = Buckets::from_bounds(vec![5, 50]);
        let a = Histogram::live(&bounds);
        let b = Histogram::live(&bounds);
        a.observe(1);
        b.observe(30);
        b.observe(1_000);
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), vec![1, 1, 1]);
        assert_eq!(a.sum(), 1_031);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let a = Histogram::live(&Buckets::from_bounds(vec![1]));
        let b = Histogram::live(&Buckets::from_bounds(vec![2]));
        a.merge_from(&b);
    }

    #[test]
    fn latency_buckets_are_increasing_and_span_micro_to_seconds() {
        let buckets = Buckets::latency();
        let bounds = buckets.bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds[0], 1_000);
        assert!(*bounds.last().unwrap() > 10_000_000_000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Buckets::from_bounds(vec![10, 10]);
    }
}
