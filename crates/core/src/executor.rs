//! Lock-free chunked work dispatch over scoped threads.
//!
//! Both offline fleet evaluation ([`crate::fleet_eval`]) and online batch
//! serving (`vup-serve`) run many independent per-vehicle tasks and need
//! their results back in input order. This executor does that without any
//! mutex on the hot path:
//!
//! - **Dispatch** is a single `AtomicUsize` cursor. Workers claim chunks
//!   of indices with `fetch_add`, so there is no dispatch lock and no
//!   per-task allocation.
//! - **Collection** writes into a pre-allocated per-slot output vector.
//!   Each index is claimed by exactly one worker, so slot writes never
//!   contend; there is no result lock and no post-hoc sort — outputs
//!   land in input order by construction.
//! - **Panics are isolated.** Each task runs under `catch_unwind`; a
//!   panicking task yields an `Err` with the captured message in its own
//!   slot while every other task completes normally.
//!
//! Determinism: task `i` always computes the same value regardless of
//! thread count or scheduling, and slot `i` always holds task `i`'s
//! result, so the returned vector is identical for any thread count.
//!
//! A mutex-based scheduler with the same contract is kept in
//! [`run_chunked_mutex_baseline`] purely as the benchmark baseline; it
//! mirrors the design this executor replaced (shared cursor mutex plus a
//! results mutex with a final sort).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of one task: its value, or the captured panic message.
pub type TaskResult<T> = std::result::Result<T, String>;

/// Pre-allocated output slots, one per task.
///
/// Safety contract: index `i` is written by exactly one worker (the one
/// that claimed it from the atomic cursor) and only read after
/// `thread::scope` has joined every worker, so no cell is ever aliased
/// mutably. This is what lets the executor require only `T: Send` —
/// `OnceLock` slots would demand `T: Sync`, which task outputs have no
/// reason to satisfy.
struct Slots<T> {
    cells: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Slots<T> {
        Slots {
            cells: (0..n).map(|_| UnsafeCell::new(None)).collect(),
        }
    }

    /// Writes slot `i`. Caller must be the unique claimant of `i`.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { *self.cells[i].get() = Some(value) };
    }

    /// Consumes the slots after all workers have been joined.
    fn into_values(self) -> impl Iterator<Item = Option<T>> {
        self.cells.into_iter().map(UnsafeCell::into_inner)
    }
}

/// Resolves a requested thread count: `0` means the machine's available
/// parallelism, and the result is never larger than the task count.
pub fn effective_threads(n_threads: usize, n_tasks: usize) -> usize {
    let requested = if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        n_threads
    };
    requested.min(n_tasks).max(1)
}

/// Runs `n_tasks` independent tasks on `n_threads` workers (0 = auto),
/// one task per claim. Best for heavy, uneven tasks such as per-vehicle
/// model training. Results are returned in task-index order.
pub fn run_tasks<T, F>(n_tasks: usize, n_threads: usize, task: F) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_chunked(n_tasks, n_threads, 1, task)
}

/// Runs `n_tasks` independent tasks, claimed `chunk_size` indices at a
/// time. Larger chunks amortize the atomic claim for very light tasks;
/// `chunk_size = 1` gives the best load balance for heavy ones.
pub fn run_chunked<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if n_tasks == 0 {
        return Vec::new();
    }
    let n_threads = effective_threads(n_threads, n_tasks);

    let run_one = |i: usize| -> TaskResult<T> {
        catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| panic_message(&*payload))
    };

    if n_threads == 1 {
        // Same semantics (per-task panic isolation), no thread overhead.
        return (0..n_tasks).map(run_one).collect();
    }

    let slots: Slots<TaskResult<T>> = Slots::new(n_tasks);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
                if start >= n_tasks {
                    break;
                }
                let end = (start + chunk_size).min(n_tasks);
                for i in start..end {
                    let result = run_one(i);
                    // Sound: this worker is the unique claimant of i
                    // (fetch_add hands out each index once).
                    unsafe { slots.write(i, result) };
                }
            });
        }
    });

    slots
        .into_values()
        .map(|slot| slot.expect("scope joined all workers, so every claimed slot is filled"))
        .collect()
}

/// The pre-refactor scheduler, kept only so benchmarks can compare it
/// against [`run_chunked`]: a mutex-guarded cursor for dispatch and a
/// mutex-guarded result vector that must be sorted afterwards.
pub fn run_chunked_mutex_baseline<T, F>(
    n_tasks: usize,
    n_threads: usize,
    chunk_size: usize,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    if n_tasks == 0 {
        return Vec::new();
    }
    let n_threads = effective_threads(n_threads, n_tasks);

    let cursor: Mutex<usize> = Mutex::new(0);
    let results: Mutex<Vec<(usize, TaskResult<T>)>> = Mutex::new(Vec::with_capacity(n_tasks));

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let start = {
                    let mut next = cursor.lock().expect("cursor lock");
                    if *next >= n_tasks {
                        break;
                    }
                    let start = *next;
                    *next = (*next + chunk_size).min(n_tasks);
                    start
                };
                let end = (start + chunk_size).min(n_tasks);
                for i in start..end {
                    let result = catch_unwind(AssertUnwindSafe(|| task(i)))
                        .map_err(|payload| panic_message(&*payload));
                    results.lock().expect("results lock").push((i, result));
                }
            });
        }
    });

    let mut collected = results.into_inner().expect("results lock");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_for_all_thread_counts() {
        for threads in [1usize, 2, 4, 0] {
            let results = run_tasks(100, threads, |i| i * i);
            let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
            let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(values, expected, "threads = {threads}");
        }
    }

    #[test]
    fn chunked_claiming_covers_every_index_exactly_once() {
        use std::sync::atomic::AtomicU32;
        for chunk in [1usize, 3, 7, 64, 1000] {
            let calls: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
            let results = run_chunked(97, 4, chunk, |i| {
                calls[i].fetch_add(1, Ordering::Relaxed);
                i
            });
            assert_eq!(results.len(), 97);
            for (i, c) in calls.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {chunk}, index {i}");
            }
        }
    }

    #[test]
    fn a_panicking_task_is_isolated_to_its_slot() {
        let results = run_tasks(10, 4, |i| {
            if i == 3 {
                panic!("task {i} exploded");
            }
            i + 1
        });
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let message = r.as_ref().unwrap_err();
                assert!(message.contains("task 3 exploded"), "got: {message}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i + 1);
            }
        }
    }

    #[test]
    fn panics_are_isolated_single_threaded_too() {
        let results = run_tasks(4, 1, |i| {
            if i % 2 == 0 {
                panic!("even panic");
            }
            i
        });
        assert!(results[0].is_err());
        assert_eq!(*results[1].as_ref().unwrap(), 1);
        assert!(results[2].is_err());
        assert_eq!(*results[3].as_ref().unwrap(), 3);
    }

    #[test]
    fn zero_tasks_returns_empty() {
        let results: Vec<TaskResult<u8>> = run_tasks(0, 4, |_| unreachable!());
        assert!(results.is_empty());
        let results: Vec<TaskResult<u8>> = run_chunked_mutex_baseline(0, 4, 8, |_| unreachable!());
        assert!(results.is_empty());
    }

    #[test]
    fn mutex_baseline_matches_lock_free_results() {
        let a = run_chunked(50, 4, 4, |i| i as u64 * 3);
        let b = run_chunked_mutex_baseline(50, 4, 4, |i| i as u64 * 3);
        let a: Vec<u64> = a.into_iter().map(|r| r.unwrap()).collect();
        let b: Vec<u64> = b.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn effective_threads_resolves_auto_and_caps() {
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
    }
}
