//! Per-vehicle model-quality and data-quality monitors.
//!
//! The paper's central observation is that per-vehicle usage series are
//! heterogeneous and non-stationary: a model that was accurate when
//! trained can quietly degrade for *one* vehicle while the fleet-level
//! averages stay flat. This module watches each vehicle separately:
//!
//! - **Rolling residual windows** — the last `window` prediction
//!   residuals per vehicle feed recent-MAE / recent-RMSE readings (and
//!   gauges, when a [`crate::Registry`] is attached);
//! - **Drift detection** — a one-sided CUSUM on the normalized excess
//!   absolute error over the vehicle's *training-time* baseline MAE,
//!   plus a simpler recent/baseline MAE ratio threshold. CUSUM catches
//!   small persistent shifts; the ratio catches abrupt large ones.
//! - **Data-quality monitors** — reporting gaps (missing day indices in
//!   a vehicle's history, mirroring the paper's §2 cleaning step, which
//!   had to drop vehicles with unusable report streams) and stale
//!   histories (vehicles whose last report is far behind the fleet).
//!
//! Determinism contract: monitors are pure arithmetic over the residuals
//! and day indices fed to them — no clocks, no randomness — so feeding
//! them is a write-only side channel just like the metrics registry.
//! State lives behind a `Mutex`, but callers feed it from a coordinating
//! thread (see `vup_core::fleet_eval`), never on the parallel hot path.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::metrics::Gauge;
use crate::registry::Registry;

/// Tunables for the per-vehicle monitors. The defaults suit the daily
/// series of the paper's fleet (multi-month histories, weekly retrains).
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Residuals kept in each vehicle's rolling window.
    pub window: usize,
    /// Residuals used to establish the training-time baseline MAE when
    /// no explicit baseline is supplied (the leading residuals, which an
    /// offline evaluation produces right after the first fit).
    pub baseline_window: usize,
    /// CUSUM slack, in units of the baseline MAE: error excursions
    /// smaller than `k * baseline` are considered noise.
    pub cusum_k: f64,
    /// CUSUM decision threshold, in units of the baseline MAE.
    pub cusum_h: f64,
    /// Recent/baseline MAE ratio above which a vehicle is flagged as
    /// degraded even if the CUSUM has not fired yet.
    pub degrade_ratio: f64,
    /// A jump in consecutive day indices strictly larger than this
    /// counts as a reporting gap.
    pub max_gap_days: i64,
    /// A vehicle whose last report is more than this many days behind
    /// the fleet's latest report has a stale history.
    pub stale_after_days: i64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            window: 30,
            baseline_window: 30,
            cusum_k: 0.25,
            cusum_h: 6.0,
            degrade_ratio: 1.5,
            max_gap_days: 7,
            stale_after_days: 14,
        }
    }
}

/// Fixed-capacity ring over the most recent residuals.
#[derive(Clone, Debug)]
pub struct RollingWindow {
    values: Vec<f64>,
    capacity: usize,
    next: usize,
}

impl RollingWindow {
    /// An empty window holding at most `capacity` residuals.
    pub fn new(capacity: usize) -> RollingWindow {
        assert!(capacity > 0, "rolling window needs at least one slot");
        RollingWindow {
            values: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Pushes a residual, evicting the oldest once full.
    pub fn push(&mut self, value: f64) {
        if self.values.len() < self.capacity {
            self.values.push(value);
        } else {
            self.values[self.next] = value;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Residuals currently held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no residual has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean absolute value of the held residuals (`NaN` when empty).
    pub fn mae(&self) -> f64 {
        let n = self.values.len();
        if n == 0 {
            return f64::NAN;
        }
        self.values.iter().map(|v| v.abs()).sum::<f64>() / n as f64
    }

    /// Root-mean-square of the held residuals (`NaN` when empty).
    pub fn rmse(&self) -> f64 {
        let n = self.values.len();
        if n == 0 {
            return f64::NAN;
        }
        (self.values.iter().map(|v| v * v).sum::<f64>() / n as f64).sqrt()
    }
}

/// Everything the monitor tracks for one vehicle.
#[derive(Debug)]
struct VehicleState {
    /// Training-time baseline MAE (explicit or accumulated).
    baseline_mae: Option<f64>,
    /// Running sum/count while the implicit baseline accumulates.
    baseline_sum_abs: f64,
    baseline_count: usize,
    /// Post-baseline residual window.
    recent: RollingWindow,
    /// One-sided CUSUM statistic (in baseline-MAE units).
    cusum: f64,
    /// Latched once the CUSUM crosses its threshold.
    drifted: bool,
    /// Post-baseline residuals observed (lifetime).
    residuals_seen: usize,
    /// Reporting gaps found in the day-index series.
    data_gaps: usize,
    /// Largest day jump seen between consecutive reports.
    longest_gap_days: i64,
    /// Whether the history trails the fleet's latest report.
    stale: bool,
}

impl VehicleState {
    fn new(config: &MonitorConfig) -> VehicleState {
        VehicleState {
            baseline_mae: None,
            baseline_sum_abs: 0.0,
            baseline_count: 0,
            recent: RollingWindow::new(config.window),
            cusum: 0.0,
            drifted: false,
            residuals_seen: 0,
            data_gaps: 0,
            longest_gap_days: 0,
            stale: false,
        }
    }
}

/// A point-in-time health report for one vehicle.
#[derive(Clone, Debug, PartialEq)]
pub struct VehicleHealth {
    /// The vehicle the report describes.
    pub vehicle_id: u32,
    /// Training-time baseline MAE, once established.
    pub baseline_mae: Option<f64>,
    /// MAE over the rolling residual window (`None` until a
    /// post-baseline residual arrives).
    pub recent_mae: Option<f64>,
    /// RMSE over the rolling residual window.
    pub recent_rmse: Option<f64>,
    /// Post-baseline residuals observed (lifetime).
    pub residuals_seen: usize,
    /// Current CUSUM statistic, in baseline-MAE units.
    pub cusum: f64,
    /// CUSUM drift flag (latched).
    pub drifted: bool,
    /// Threshold flag: recent MAE exceeds `degrade_ratio * baseline`.
    pub degraded: bool,
    /// Reporting gaps found in the day-index series.
    pub data_gaps: usize,
    /// Largest day jump seen between consecutive reports.
    pub longest_gap_days: i64,
    /// Whether the history trails the fleet's latest report.
    pub stale: bool,
}

impl VehicleHealth {
    /// Whether any monitor (drift, degradation, gaps, staleness) fired.
    pub fn flagged(&self) -> bool {
        self.drifted || self.degraded || self.data_gaps > 0 || self.stale
    }
}

/// Registry handles for the fleet-level monitor gauges; per-vehicle
/// gauges are created on demand in [`FleetMonitor::health`].
#[derive(Default)]
struct MonitorMetrics {
    /// `vup_monitor_vehicles` — vehicles currently tracked.
    vehicles: Gauge,
    /// `vup_monitor_drifting_vehicles` — vehicles with the CUSUM flag up.
    drifting: Gauge,
    /// `vup_monitor_degraded_vehicles` — vehicles over the MAE ratio.
    degraded: Gauge,
    /// `vup_monitor_stale_vehicles` — vehicles with stale histories.
    stale: Gauge,
}

impl MonitorMetrics {
    fn register(registry: &Registry, scope: &[(String, String)]) -> MonitorMetrics {
        let labels: Vec<(&str, &str)> = scope
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        registry.describe("vup_monitor_vehicles", "Vehicles tracked by the monitor.");
        registry.describe(
            "vup_monitor_drifting_vehicles",
            "Vehicles whose CUSUM drift detector has fired.",
        );
        registry.describe(
            "vup_monitor_degraded_vehicles",
            "Vehicles whose recent MAE exceeds the degrade ratio.",
        );
        registry.describe(
            "vup_monitor_stale_vehicles",
            "Vehicles whose history trails the fleet's latest report.",
        );
        MonitorMetrics {
            vehicles: registry.gauge_with("vup_monitor_vehicles", &labels),
            drifting: registry.gauge_with("vup_monitor_drifting_vehicles", &labels),
            degraded: registry.gauge_with("vup_monitor_degraded_vehicles", &labels),
            stale: registry.gauge_with("vup_monitor_stale_vehicles", &labels),
        }
    }
}

/// Per-vehicle model-quality and data-quality monitors for a fleet.
pub struct FleetMonitor {
    config: MonitorConfig,
    states: Mutex<BTreeMap<u32, VehicleState>>,
    registry: Registry,
    metrics: MonitorMetrics,
    /// Extra labels stamped onto every gauge this monitor publishes
    /// (e.g. `shard="3"` for a shard-owned monitor). Empty by default,
    /// which keeps the published series byte-identical to an unscoped
    /// monitor.
    scope: Vec<(String, String)>,
}

impl FleetMonitor {
    /// A monitor that keeps state but publishes no gauges.
    pub fn new(config: MonitorConfig) -> FleetMonitor {
        FleetMonitor::observed(&Registry::disabled(), config)
    }

    /// A monitor that additionally publishes per-vehicle and fleet-level
    /// gauges into `registry` whenever [`FleetMonitor::health`] runs.
    pub fn observed(registry: &Registry, config: MonitorConfig) -> FleetMonitor {
        FleetMonitor::observed_scoped(registry, config, &[])
    }

    /// [`FleetMonitor::observed`] with extra labels stamped onto every
    /// published gauge — how a shard-owned monitor keeps its series
    /// (`vup_monitor_*{shard="N", ...}`) distinguishable in the merged
    /// fleet registry. With a disabled registry the scope is inert and
    /// every publish stays a no-op.
    pub fn observed_scoped(
        registry: &Registry,
        config: MonitorConfig,
        scope: &[(&str, &str)],
    ) -> FleetMonitor {
        let scope: Vec<(String, String)> = scope
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        FleetMonitor {
            metrics: MonitorMetrics::register(registry, &scope),
            registry: registry.clone(),
            config,
            states: Mutex::new(BTreeMap::new()),
            scope,
        }
    }

    /// The configuration the monitor runs with.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Number of vehicles currently tracked.
    pub fn vehicles(&self) -> usize {
        self.states.lock().expect("monitor lock").len()
    }

    /// Sets `vehicle`'s training-time baseline MAE explicitly. Residuals
    /// observed afterwards all count as live (post-baseline) residuals.
    pub fn set_baseline(&self, vehicle: u32, baseline_mae: f64) {
        let mut states = self.states.lock().expect("monitor lock");
        let state = states
            .entry(vehicle)
            .or_insert_with(|| VehicleState::new(&self.config));
        state.baseline_mae = Some(baseline_mae.abs());
    }

    /// Feeds one prediction residual (`predicted - actual`).
    ///
    /// Until a baseline exists, residuals accumulate into the implicit
    /// training-time baseline (the first `baseline_window` of them);
    /// after that each residual updates the rolling window and the CUSUM
    /// drift statistic.
    pub fn observe_residual(&self, vehicle: u32, residual: f64) {
        let mut states = self.states.lock().expect("monitor lock");
        let state = states
            .entry(vehicle)
            .or_insert_with(|| VehicleState::new(&self.config));
        let Some(baseline) = state.baseline_mae else {
            state.baseline_sum_abs += residual.abs();
            state.baseline_count += 1;
            if state.baseline_count >= self.config.baseline_window {
                state.baseline_mae = Some(state.baseline_sum_abs / state.baseline_count as f64);
            }
            return;
        };
        state.recent.push(residual);
        state.residuals_seen += 1;
        // One-sided CUSUM on the normalized excess absolute error: with
        // b = baseline MAE, z = (|r| - b) / b measures how far this
        // residual exceeds the training-time error in baseline units.
        let b = baseline.max(f64::EPSILON);
        let z = (residual.abs() - b) / b;
        state.cusum = (state.cusum + z - self.config.cusum_k).max(0.0);
        if state.cusum > self.config.cusum_h {
            state.drifted = true;
        }
    }

    /// Feeds a batch of residuals in order (see
    /// [`observe_residual`](Self::observe_residual)).
    pub fn ingest_residuals(&self, vehicle: u32, residuals: &[f64]) {
        for &r in residuals {
            self.observe_residual(vehicle, r);
        }
    }

    /// Feeds `vehicle`'s day-index series (strictly increasing) for the
    /// data-quality monitors. `fleet_last_day` is the latest day any
    /// vehicle in the fleet reported; a vehicle trailing it by more than
    /// `stale_after_days` is flagged stale.
    pub fn observe_days(&self, vehicle: u32, days: &[i64], fleet_last_day: i64) {
        let mut states = self.states.lock().expect("monitor lock");
        let state = states
            .entry(vehicle)
            .or_insert_with(|| VehicleState::new(&self.config));
        state.data_gaps = 0;
        state.longest_gap_days = 0;
        for pair in days.windows(2) {
            let jump = pair[1] - pair[0];
            state.longest_gap_days = state.longest_gap_days.max(jump);
            if jump > self.config.max_gap_days {
                state.data_gaps += 1;
            }
        }
        state.stale = match days.last() {
            Some(&last) => fleet_last_day - last > self.config.stale_after_days,
            None => true,
        };
    }

    /// Health report for every tracked vehicle, sorted by vehicle id.
    ///
    /// When the monitor was built over a live registry this also
    /// publishes the per-vehicle gauges
    /// (`vup_monitor_recent_mae{vehicle=...}` etc.) and the fleet-level
    /// drift/degraded/stale totals.
    pub fn health(&self) -> Vec<VehicleHealth> {
        let states = self.states.lock().expect("monitor lock");
        let mut reports = Vec::with_capacity(states.len());
        for (&vehicle_id, state) in states.iter() {
            reports.push(self.report_of(vehicle_id, state));
        }
        drop(states);
        self.publish(&reports);
        reports
    }

    /// Health report for a single vehicle, or `None` if the monitor has
    /// never seen it. Unlike [`FleetMonitor::health`] this publishes no
    /// gauges — it is the cheap read a retrain scheduler polls after
    /// every residual.
    pub fn health_of(&self, vehicle: u32) -> Option<VehicleHealth> {
        let states = self.states.lock().expect("monitor lock");
        states
            .get(&vehicle)
            .map(|state| self.report_of(vehicle, state))
    }

    /// Restarts `vehicle`'s CUSUM accumulation from zero — called after
    /// a drift firing has been *acted on* (the vehicle retrained), so
    /// the detector arms for the next shift instead of re-firing on the
    /// residue of the old one. The latched `drifted` flag and the
    /// baseline are left untouched: the flag is the operator's record
    /// that a drift happened, and the baseline still describes the
    /// training-time error the new residual stream is judged against.
    pub fn restart_cusum(&self, vehicle: u32) {
        let mut states = self.states.lock().expect("monitor lock");
        if let Some(state) = states.get_mut(&vehicle) {
            state.cusum = 0.0;
        }
    }

    fn report_of(&self, vehicle_id: u32, state: &VehicleState) -> VehicleHealth {
        let recent_mae = (!state.recent.is_empty()).then(|| state.recent.mae());
        let degraded = match (state.baseline_mae, recent_mae) {
            (Some(b), Some(r)) => r > self.config.degrade_ratio * b.max(f64::EPSILON),
            _ => false,
        };
        VehicleHealth {
            vehicle_id,
            baseline_mae: state.baseline_mae,
            recent_mae,
            recent_rmse: (!state.recent.is_empty()).then(|| state.recent.rmse()),
            residuals_seen: state.residuals_seen,
            cusum: state.cusum,
            drifted: state.drifted,
            degraded,
            data_gaps: state.data_gaps,
            longest_gap_days: state.longest_gap_days,
            stale: state.stale,
        }
    }

    fn publish(&self, reports: &[VehicleHealth]) {
        self.metrics.vehicles.set(reports.len() as f64);
        self.metrics
            .drifting
            .set(reports.iter().filter(|h| h.drifted).count() as f64);
        self.metrics
            .degraded
            .set(reports.iter().filter(|h| h.degraded).count() as f64);
        self.metrics
            .stale
            .set(reports.iter().filter(|h| h.stale).count() as f64);
        if !self.registry.is_enabled() {
            return;
        }
        self.registry.describe(
            "vup_monitor_recent_mae",
            "Rolling-window MAE of one vehicle's prediction residuals.",
        );
        self.registry.describe(
            "vup_monitor_recent_rmse",
            "Rolling-window RMSE of one vehicle's prediction residuals.",
        );
        self.registry.describe(
            "vup_monitor_baseline_mae",
            "Training-time baseline MAE the drift detector compares against.",
        );
        self.registry.describe(
            "vup_monitor_drift",
            "1 when the vehicle's CUSUM drift detector has fired.",
        );
        self.registry.describe(
            "vup_monitor_data_gaps",
            "Reporting gaps detected in the vehicle's history.",
        );
        for health in reports {
            let vehicle = health.vehicle_id.to_string();
            let mut labels: Vec<(&str, &str)> = self
                .scope
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            labels.push(("vehicle", vehicle.as_str()));
            if let Some(mae) = health.recent_mae {
                self.registry
                    .gauge_with("vup_monitor_recent_mae", &labels)
                    .set(mae);
            }
            if let Some(rmse) = health.recent_rmse {
                self.registry
                    .gauge_with("vup_monitor_recent_rmse", &labels)
                    .set(rmse);
            }
            if let Some(baseline) = health.baseline_mae {
                self.registry
                    .gauge_with("vup_monitor_baseline_mae", &labels)
                    .set(baseline);
            }
            self.registry
                .gauge_with("vup_monitor_drift", &labels)
                .set(f64::from(u8::from(health.drifted)));
            self.registry
                .gauge_with("vup_monitor_data_gaps", &labels)
                .set(health.data_gaps as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_config() -> MonitorConfig {
        MonitorConfig {
            window: 5,
            baseline_window: 4,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn rolling_window_evicts_oldest() {
        let mut w = RollingWindow::new(3);
        assert!(w.is_empty());
        assert!(w.mae().is_nan());
        for v in [1.0, -2.0, 3.0, -4.0] {
            w.push(v);
        }
        // Holds [-2, 3, -4]: MAE 3, RMSE sqrt(29/3).
        assert_eq!(w.len(), 3);
        assert!((w.mae() - 3.0).abs() < 1e-12);
        assert!((w.rmse() - (29.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn implicit_baseline_forms_from_leading_residuals() {
        let monitor = FleetMonitor::new(tight_config());
        monitor.ingest_residuals(7, &[1.0, -1.0, 1.0, -1.0]);
        let health = &monitor.health()[0];
        assert_eq!(health.vehicle_id, 7);
        assert_eq!(health.baseline_mae, Some(1.0));
        // Baseline residuals are not "recent" residuals.
        assert_eq!(health.residuals_seen, 0);
        assert_eq!(health.recent_mae, None);
        assert!(!health.flagged());
    }

    #[test]
    fn stable_error_does_not_drift() {
        let monitor = FleetMonitor::new(tight_config());
        monitor.set_baseline(1, 1.0);
        for _ in 0..200 {
            monitor.observe_residual(1, 1.0);
        }
        let health = &monitor.health()[0];
        assert!(!health.drifted, "on-baseline error must not drift");
        assert!(!health.degraded);
        assert_eq!(health.residuals_seen, 200);
    }

    #[test]
    fn persistent_excess_error_fires_cusum_and_ratio() {
        let monitor = FleetMonitor::new(tight_config());
        monitor.set_baseline(1, 1.0);
        // 2x the training error, persistently: z = 1.0 per step, k=0.25,
        // so CUSUM grows 0.75/step and crosses h=6 within 9 steps.
        for _ in 0..9 {
            monitor.observe_residual(1, 2.0);
        }
        let health = &monitor.health()[0];
        assert!(health.drifted);
        assert!(health.degraded, "recent MAE 2.0 > 1.5 * baseline 1.0");
        assert!(health.flagged());
    }

    #[test]
    fn recovery_drains_the_cusum_but_drift_stays_latched() {
        let monitor = FleetMonitor::new(tight_config());
        monitor.set_baseline(1, 1.0);
        for _ in 0..9 {
            monitor.observe_residual(1, 2.0);
        }
        for _ in 0..100 {
            monitor.observe_residual(1, 1.0);
        }
        let health = &monitor.health()[0];
        assert!(health.cusum < 1.0, "on-baseline error drains the statistic");
        assert!(health.drifted, "drift flags latch for the operator");
        assert!(!health.degraded, "the window itself has recovered");
    }

    #[test]
    fn zero_baseline_does_not_divide_by_zero() {
        let monitor = FleetMonitor::new(tight_config());
        monitor.set_baseline(1, 0.0);
        monitor.observe_residual(1, 0.5);
        let health = &monitor.health()[0];
        assert!(health.cusum.is_finite());
        assert!(health.drifted, "any error over a perfect baseline drifts");
    }

    #[test]
    fn day_gaps_and_staleness_are_detected() {
        let monitor = FleetMonitor::new(MonitorConfig::default());
        // Two jumps over max_gap_days = 7 (10 and 17 days), last report
        // on day 30 while the fleet runs to day 60 (> 14 days behind).
        monitor.observe_days(3, &[0, 1, 2, 12, 13, 30], 60);
        monitor.observe_days(4, &[0, 1, 2, 3, 4, 59], 60);
        let health = monitor.health();
        let h3 = health.iter().find(|h| h.vehicle_id == 3).unwrap();
        assert_eq!(h3.data_gaps, 2);
        assert_eq!(h3.longest_gap_days, 17);
        assert!(h3.stale);
        assert!(h3.flagged());
        let h4 = health.iter().find(|h| h.vehicle_id == 4).unwrap();
        // The 55-day jump is a gap, but the history itself is current.
        assert_eq!(h4.data_gaps, 1);
        assert!(!h4.stale);
    }

    #[test]
    fn empty_day_series_is_stale() {
        let monitor = FleetMonitor::new(MonitorConfig::default());
        monitor.observe_days(9, &[], 100);
        assert!(monitor.health()[0].stale);
    }

    #[test]
    fn health_is_sorted_and_publishes_gauges_when_observed() {
        let registry = Registry::new();
        let monitor = FleetMonitor::observed(&registry, tight_config());
        monitor.set_baseline(5, 1.0);
        monitor.set_baseline(2, 1.0);
        for _ in 0..9 {
            monitor.observe_residual(5, 2.0);
        }
        monitor.observe_residual(2, 1.0);
        let health = monitor.health();
        assert_eq!(
            health.iter().map(|h| h.vehicle_id).collect::<Vec<_>>(),
            vec![2, 5]
        );
        assert_eq!(registry.gauge("vup_monitor_vehicles").get(), 2.0);
        assert_eq!(registry.gauge("vup_monitor_drifting_vehicles").get(), 1.0);
        let labels = [("vehicle", "5")];
        assert_eq!(registry.gauge_with("vup_monitor_drift", &labels).get(), 1.0);
        assert_eq!(
            registry.gauge_with("vup_monitor_recent_mae", &labels).get(),
            2.0
        );
    }

    #[test]
    fn disabled_registry_monitor_keeps_state_but_publishes_nothing() {
        let monitor = FleetMonitor::new(tight_config());
        monitor.set_baseline(0, 1.0);
        monitor.observe_residual(0, 3.0);
        assert_eq!(monitor.vehicles(), 1);
        assert_eq!(monitor.health().len(), 1);
    }

    #[test]
    fn scoped_monitors_stamp_their_labels_on_every_gauge() {
        let registry = Registry::new();
        let shard0 = FleetMonitor::observed_scoped(&registry, tight_config(), &[("shard", "0")]);
        let shard1 = FleetMonitor::observed_scoped(&registry, tight_config(), &[("shard", "1")]);
        shard0.set_baseline(2, 1.0);
        shard0.observe_residual(2, 1.0);
        shard1.set_baseline(7, 1.0);
        shard1.observe_residual(7, 4.0);
        shard0.health();
        shard1.health();
        // Fleet-level gauges keep one series per scope …
        assert_eq!(
            registry
                .gauge_with("vup_monitor_vehicles", &[("shard", "0")])
                .get(),
            1.0
        );
        assert_eq!(
            registry
                .gauge_with("vup_monitor_vehicles", &[("shard", "1")])
                .get(),
            1.0
        );
        // … and per-vehicle gauges carry scope + vehicle.
        assert_eq!(
            registry
                .gauge_with(
                    "vup_monitor_recent_mae",
                    &[("shard", "1"), ("vehicle", "7")]
                )
                .get(),
            4.0
        );
        // A disabled registry keeps the scoped path a no-op.
        let silent =
            FleetMonitor::observed_scoped(&Registry::disabled(), tight_config(), &[("shard", "2")]);
        silent.set_baseline(0, 1.0);
        silent.observe_residual(0, 2.0);
        assert_eq!(silent.health().len(), 1);
    }
}
