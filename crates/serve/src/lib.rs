//! Online batch serving of per-vehicle utilization predictions.
//!
//! The offline side of this repository evaluates the paper's methodology
//! ([`vup_core::fleet_eval`]); this crate is the online counterpart: a
//! [`PredictionService`] that answers batches of `(vehicle, horizon)`
//! requests, caching one fitted model per vehicle in a [`ModelStore`] and
//! retraining only when the vehicle's series has advanced past the
//! configured `retrain_every` cadence. Work is dispatched on the same
//! lock-free executor as offline evaluation ([`vup_core::executor`]), so
//! the serving hot path takes no mutex.

#![warn(missing_docs)]

pub mod service;
pub mod store;

pub use service::{
    BatchRequest, Forecast, PredictionService, Provenance, ServeJournal, ServeOutcome, ServePath,
    StageNanos,
};
pub use store::{Lookup, ModelStore, StoredModel};
