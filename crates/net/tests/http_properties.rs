//! Property tests for the HTTP/1.1 parser — the daemon's security
//! boundary (`DESIGN.md` §4).
//!
//! Pinned properties:
//!
//! 1. **Split-invariance** — a byte stream parses to the same requests
//!    (and the same error, if any) no matter where the network
//!    fragments it.
//! 2. **Totality** — arbitrary bytes never panic the parser; they
//!    either parse, wait for more input, or yield a structured 4xx/5xx.
//! 3. **Exact body framing** — the parser consumes exactly
//!    `Content-Length` body bytes; trailing pipelined bytes are left
//!    buffered for the next request, never folded into the body.
//! 4. **Bounded buffering** — oversized heads/bodies are rejected with
//!    the documented status instead of being buffered without limit.

use proptest::prelude::*;
use vup_net::http::{HttpError, Limits, Request, RequestParser};

/// Feeds `bytes` in one push, then polls everything out.
fn parse_one_shot(bytes: &[u8], limits: Limits) -> (Vec<Request>, Option<HttpError>) {
    let mut parser = RequestParser::new(limits);
    parser.push(bytes);
    drain(&mut parser)
}

/// Feeds `bytes` fragment-by-fragment at the given split points,
/// polling after every fragment (as the worker loop does).
fn parse_split(
    bytes: &[u8],
    splits: &[usize],
    limits: Limits,
) -> (Vec<Request>, Option<HttpError>) {
    let mut parser = RequestParser::new(limits);
    let mut requests = Vec::new();
    let mut start = 0;
    let mut boundaries: Vec<usize> = splits.iter().map(|&s| s % (bytes.len() + 1)).collect();
    boundaries.sort_unstable();
    boundaries.push(bytes.len());
    for end in boundaries {
        if end < start {
            continue;
        }
        parser.push(&bytes[start..end]);
        start = end;
        loop {
            match parser.poll() {
                Ok(Some(request)) => requests.push(request),
                Ok(None) => break,
                Err(e) => return (requests, Some(e)),
            }
        }
    }
    (requests, None)
}

fn drain(parser: &mut RequestParser) -> (Vec<Request>, Option<HttpError>) {
    let mut requests = Vec::new();
    loop {
        match parser.poll() {
            Ok(Some(request)) => requests.push(request),
            Ok(None) => return (requests, None),
            Err(e) => return (requests, Some(e)),
        }
    }
}

/// Lowercase-alphanumeric string strategy (the shim has no regex
/// strategies).
fn word(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(0_u8..36, len).prop_map(|digits| {
        digits
            .iter()
            .map(|d| {
                if *d < 26 {
                    (b'a' + d) as char
                } else {
                    (b'0' + (d - 26)) as char
                }
            })
            .collect()
    })
}

/// A generator for syntactically valid requests (so the split test
/// exercises the success path, not just early rejects).
fn valid_request() -> impl Strategy<Value = Vec<u8>> {
    (
        prop_oneof![Just("GET"), Just("POST"), Just("PUT"), Just("HEAD")],
        word(1..16),
        proptest::collection::vec((word(1..8), word(0..12)), 0..4),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(method, path, extra_headers, body)| {
            let mut request = format!("{method} /{path} HTTP/1.1\r\nHost: test\r\n");
            for (name, value) in &extra_headers {
                // Dodge the framing headers the parser treats specially
                // (generated names are alphanumeric-only, so a prefix
                // check is enough).
                if name.is_empty() || name.starts_with('c') || name.starts_with('t') {
                    continue;
                }
                request.push_str(&format!("x-{name}: {value}\r\n"));
            }
            let needs_body = method == "POST" || method == "PUT" || !body.is_empty();
            if needs_body {
                request.push_str(&format!("Content-Length: {}\r\n", body.len()));
            }
            request.push_str("\r\n");
            let mut bytes = request.into_bytes();
            if needs_body {
                bytes.extend_from_slice(&body);
            }
            bytes
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1 + 3: pipelined valid requests parse identically under
    /// arbitrary fragmentation, and every request's body is framed
    /// exactly.
    #[test]
    fn arbitrary_splits_parse_identically_to_one_shot(
        messages in proptest::collection::vec(valid_request(), 1..4),
        splits in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let stream: Vec<u8> = messages.iter().flatten().copied().collect();
        let limits = Limits::default();
        let (one_shot, one_err) = parse_one_shot(&stream, limits);
        let (fragmented, frag_err) = parse_split(&stream, &splits, limits);
        prop_assert!(one_err.is_none(), "valid stream rejected: {one_err:?}");
        prop_assert!(frag_err.is_none(), "valid stream rejected when split: {frag_err:?}");
        prop_assert_eq!(one_shot.len(), messages.len(), "every pipelined request parses");
        prop_assert_eq!(one_shot.len(), fragmented.len());
        for (a, b) in one_shot.iter().zip(&fragmented) {
            prop_assert_eq!(&a.method, &b.method);
            prop_assert_eq!(&a.target, &b.target);
            prop_assert_eq!(&a.headers, &b.headers);
            prop_assert_eq!(&a.body, &b.body, "body framing must be split-invariant");
        }
    }

    /// Property 2: pure fuzz — any byte soup either parses, waits, or
    /// errors with a structured status; no panics, and errors are
    /// split-invariant too.
    #[test]
    fn arbitrary_bytes_never_panic_and_errors_are_split_invariant(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let limits = Limits {
            max_request_line: 128,
            max_head_bytes: 256,
            max_headers: 8,
            max_body_bytes: 256,
        };
        let (one_shot, one_err) = parse_one_shot(&bytes, limits);
        let (fragmented, frag_err) = parse_split(&bytes, &splits, limits);
        if let Some(e) = &one_err {
            prop_assert!((400..600).contains(&e.status), "status {} not an error", e.status);
        }
        // The error (or lack of one) must not depend on fragmentation,
        // and neither may the successfully parsed prefix.
        prop_assert_eq!(&one_err, &frag_err);
        prop_assert_eq!(one_shot.len(), fragmented.len());
        for (a, b) in one_shot.iter().zip(&fragmented) {
            prop_assert_eq!(&a.body, &b.body);
        }
    }

    /// Property 3, directly: bytes after the declared body length stay
    /// in the buffer — the parser never over-reads past Content-Length.
    #[test]
    fn parser_never_reads_past_content_length(
        body in proptest::collection::vec(any::<u8>(), 0..64),
        trailing in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut stream = format!(
            "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        stream.extend_from_slice(&body);
        stream.extend_from_slice(&trailing);
        let mut parser = RequestParser::new(Limits::default());
        parser.push(&stream);
        let request = parser.poll().expect("valid head").expect("complete request");
        prop_assert_eq!(&request.body, &body, "body is exactly Content-Length bytes");
        prop_assert_eq!(
            parser.buffered(),
            trailing.len(),
            "pipelined bytes stay buffered for the next request"
        );
    }

    /// Property 4: heads that exceed the ceiling are rejected with 431
    /// even when the terminator never arrives — the parser must not
    /// buffer an unbounded head waiting for CRLFCRLF.
    #[test]
    fn oversized_heads_are_rejected_while_still_incomplete(
        filler in proptest::collection::vec(0x61_u8..0x7b, 300..600),
    ) {
        let limits = Limits {
            max_request_line: 64,
            max_head_bytes: 256,
            max_headers: 8,
            max_body_bytes: 64,
        };
        let mut parser = RequestParser::new(limits);
        parser.push(b"GET / HTTP/1.1\r\nX-Fill: ");
        parser.push(&filler); // no CRLF: the head never terminates
        let err = loop {
            match parser.poll() {
                Ok(Some(_)) => prop_assert!(false, "unterminated head cannot complete"),
                Ok(None) => prop_assert!(false, "parser kept buffering past the head ceiling"),
                Err(e) => break e,
            }
        };
        prop_assert_eq!(err.status, 431);
    }

    /// Property 4 for bodies: a Content-Length above the cap is a 413
    /// at header time, before any body byte is buffered.
    #[test]
    fn oversized_bodies_are_rejected_at_header_time(excess in 1_u64..1_000_000) {
        let limits = Limits {
            max_body_bytes: 1024,
            ..Limits::default()
        };
        let head = format!(
            "POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            1024 + excess
        );
        let mut parser = RequestParser::new(limits);
        parser.push(head.as_bytes());
        let err = parser.poll().expect_err("over-cap body must be rejected");
        prop_assert_eq!(err.status, 413);
    }
}

/// Deterministic table of malformed inputs → the documented status.
/// (Not a proptest: these are the contract lines in `DESIGN.md` §4.)
#[test]
fn malformed_inputs_map_to_documented_statuses() {
    let table: &[(&[u8], u16)] = &[
        (b"GARBAGE\r\n\r\n", 400),                              // no version
        (b"GET / HTTP/2.0\r\n\r\n", 505),                       // unsupported version
        (b"GET / HTTP/1.1\r\nBad Header\r\n\r\n", 400),         // no colon
        (b"POST / HTTP/1.1\r\n\r\n", 411),                      // POST without length
        (b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n", 400), // unparseable length
        (
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            400,
        ),
        (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            501,
        ),
        (b"\xff\xfe / HTTP/1.1\r\n\r\n", 400), // non-UTF-8 head
    ];
    for (bytes, expected) in table {
        let mut parser = RequestParser::new(Limits::default());
        parser.push(bytes);
        match parser.poll() {
            Err(e) => assert_eq!(
                e.status,
                *expected,
                "input {:?}: got {}",
                String::from_utf8_lossy(bytes),
                e
            ),
            other => panic!(
                "input {:?}: expected status {expected}, got {other:?}",
                String::from_utf8_lossy(bytes)
            ),
        }
    }
}
