//! Streaming roster generation for fleets too large to materialize.
//!
//! [`Fleet::generate`](crate::fleet::Fleet::generate) draws every
//! vehicle from one sequential RNG, which means generating vehicle
//! 999 999 requires generating the 999 999 vehicles before it — and
//! holding all of them. [`RosterStream`] removes both costs: every
//! vehicle is a **pure function of `(config, id)`**, so any single
//! vehicle of a million-unit fleet resolves in O(types + models +
//! countries) work and the stream as a whole holds only the per-type id
//! ranges and popularity weights (a few hundred floats), never the
//! roster.
//!
//! The stream reproduces `Fleet::generate`'s *distributions* exactly —
//! the same largest-remainder type apportionment (shared code, so the
//! id→type ranges agree bit for bit) and the same Zipf popularity
//! weights for models and countries — but the per-vehicle model/country
//! draws come from a splitmix64 hash of `(seed, id)` instead of the
//! sequential RNG, so individual assignments differ. `Fleet::generate`
//! remains the canonical paper roster; the stream is the shard-scale
//! tool (`vup shard-eval`) where no one can afford the other one.

use crate::fleet::{apportion_types, FleetConfig, Vehicle, VehicleId};
use crate::holidays;
use crate::types::VehicleType;

/// Salt separating the model draw stream from the country draw stream.
const SALT_MODEL: u64 = 0x4d_4f_44;
const SALT_COUNTRY: u64 = 0x43_54_52;

/// The splitmix64 finalizer (same construction as the serve-side fault
/// injector; duplicated here because `vup-fleetsim` sits below
/// `vup-serve` in the crate graph).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform value in `[0, 1)` for one `(seed, salt, id)` coordinate.
fn hashed_unit(seed: u64, salt: u64, id: u32) -> f64 {
    let h = splitmix64(splitmix64(seed ^ salt) ^ u64::from(id));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Picks an index proportionally to `weights` from a unit draw.
/// `total` must be the precomputed weight sum.
fn weighted_pick(u: f64, weights: &[f64], total: f64) -> usize {
    let mut x = u * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// O(1)-per-vehicle roster: resolves any vehicle of an arbitrarily
/// large fleet on demand without materializing the others.
pub struct RosterStream {
    config: FleetConfig,
    /// `(type, first id, one past last id)` — contiguous, in id order,
    /// from the same apportionment as [`crate::fleet::Fleet::generate`].
    ranges: Vec<(VehicleType, u32, u32)>,
    /// Zipf model weights per entry of `ranges`, with their sums.
    model_weights: Vec<(Vec<f64>, f64)>,
    /// Zipf country weights over the config's country list, with sum.
    country_weights: (Vec<f64>, f64),
}

impl RosterStream {
    /// Builds the stream for a configuration. Costs O(types + models +
    /// countries) — independent of `n_vehicles`.
    pub fn new(config: FleetConfig) -> RosterStream {
        assert!(config.n_vehicles > 0, "fleet must contain vehicles");
        let mut ranges = Vec::new();
        let mut model_weights = Vec::new();
        let mut next = 0u32;
        for (vtype, count) in apportion_types(config.n_vehicles) {
            let end = next + count as u32;
            ranges.push((vtype, next, end));
            let weights: Vec<f64> = (0..vtype.profile().model_count)
                .map(|i| 1.0 / (i as f64 + 1.0))
                .collect();
            let total = weights.iter().sum();
            model_weights.push((weights, total));
            next = end;
        }
        let n_countries = holidays::generate_countries(config.seed).len();
        let weights: Vec<f64> = (0..n_countries).map(|i| 1.0 / (i as f64 + 1.5)).collect();
        let total = weights.iter().sum();
        RosterStream {
            config,
            ranges,
            model_weights,
            country_weights: (weights, total),
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of vehicles the stream can resolve.
    pub fn len(&self) -> usize {
        self.config.n_vehicles
    }

    /// Whether the stream is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.config.n_vehicles == 0
    }

    /// Resolves one vehicle as a pure function of `(config, id)`, or
    /// `None` past the end of the fleet.
    pub fn vehicle(&self, id: VehicleId) -> Option<Vehicle> {
        let slot = self
            .ranges
            .iter()
            .position(|&(_, start, end)| id.0 >= start && id.0 < end)?;
        let (vtype, _, _) = self.ranges[slot];
        let (weights, total) = &self.model_weights[slot];
        let model = weighted_pick(
            hashed_unit(self.config.seed, SALT_MODEL, id.0),
            weights,
            *total,
        );
        let (weights, total) = &self.country_weights;
        let country = weighted_pick(
            hashed_unit(self.config.seed, SALT_COUNTRY, id.0),
            weights,
            *total,
        ) as u16;
        Some(Vehicle {
            id,
            vtype,
            model,
            country,
        })
    }

    /// Streams the whole roster in id order, one vehicle at a time.
    pub fn iter(&self) -> impl Iterator<Item = Vehicle> + '_ {
        (0..self.config.n_vehicles as u32).map(move |id| {
            self.vehicle(VehicleId(id))
                .expect("ids below n_vehicles resolve")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;

    #[test]
    fn stream_is_a_pure_function_of_config_and_id() {
        let a = RosterStream::new(FleetConfig::small(1000, 7));
        let b = RosterStream::new(FleetConfig::small(1000, 7));
        for id in [0u32, 1, 499, 999] {
            assert_eq!(a.vehicle(VehicleId(id)), b.vehicle(VehicleId(id)));
        }
        assert!(a.vehicle(VehicleId(1000)).is_none());
        let other = RosterStream::new(FleetConfig::small(1000, 8));
        let diverged = (0..1000u32)
            .any(|id| a.vehicle(VehicleId(id)).unwrap() != other.vehicle(VehicleId(id)).unwrap());
        assert!(diverged, "seed changes the roster");
    }

    #[test]
    fn stream_type_ranges_agree_with_the_materialized_fleet() {
        // Same apportionment code ⇒ the id→type map is identical; only
        // model/country draws differ (hash vs sequential RNG).
        let config = FleetConfig::small(500, 3);
        let fleet = Fleet::generate(config.clone());
        let stream = RosterStream::new(config);
        assert_eq!(stream.len(), 500);
        for (v, s) in fleet.vehicles().iter().zip(stream.iter()) {
            assert_eq!(v.id, s.id);
            assert_eq!(v.vtype, s.vtype);
            assert!(s.model < s.vtype.profile().model_count);
            assert!((s.country as usize) < fleet.countries().len());
        }
    }

    #[test]
    fn million_vehicle_fleets_resolve_single_vehicles_cheaply() {
        let stream = RosterStream::new(FleetConfig::small(1_000_000, 7));
        let v = stream.vehicle(VehicleId(999_999)).unwrap();
        assert_eq!(v.id, VehicleId(999_999));
        // Popularity skew survives the hashed draws: model 0 is the
        // most common model within a sampled slice of one type.
        let (vtype, start, end) = stream.ranges[0];
        let mut by_model = vec![0usize; vtype.profile().model_count];
        for id in start..(start + 5_000).min(end) {
            by_model[stream.vehicle(VehicleId(id)).unwrap().model] += 1;
        }
        let max = by_model.iter().copied().max().unwrap();
        assert_eq!(by_model[0], max, "model 0 dominates: {by_model:?}");
    }
}
