//! Hyperparameter grid search with a time-ordered hold-out.
//!
//! The paper reports running "a grid search to fit the model to the
//! analyzed data distribution" (§4.2). Because the samples are windowed
//! time-series records, random K-fold would leak future information;
//! candidates are instead scored by training on the oldest fraction of
//! samples and measuring the paper's Percentage Error on the newest
//! remainder.

use crate::gbm::GbmParams;
use crate::kernel::Kernel;
use crate::lasso::LassoParams;
use crate::metrics;
use crate::svr::SvrParams;
use crate::{Dataset, MlError, RegressorSpec, Result};

/// Score of one evaluated candidate.
#[derive(Debug, Clone)]
pub struct CandidateScore {
    /// The candidate configuration.
    pub spec: RegressorSpec,
    /// Hold-out Percentage Error (lower is better); `None` when the fit or
    /// the metric failed for this candidate.
    pub pe: Option<f64>,
}

/// Exhaustive search over a list of candidate configurations.
#[derive(Debug, Clone)]
pub struct GridSearch {
    candidates: Vec<RegressorSpec>,
    validation_fraction: f64,
}

impl GridSearch {
    /// Creates a search over the given candidates; 25 % of the samples
    /// (the newest) are held out for scoring.
    pub fn new(candidates: Vec<RegressorSpec>) -> Result<Self> {
        Self::with_validation_fraction(candidates, 0.25)
    }

    /// Creates a search holding out the newest `validation_fraction` of
    /// samples (must be in `(0, 1)`).
    pub fn with_validation_fraction(
        candidates: Vec<RegressorSpec>,
        validation_fraction: f64,
    ) -> Result<Self> {
        if candidates.is_empty() {
            return Err(MlError::InvalidParameter {
                name: "candidates",
                reason: "grid must contain at least one candidate".into(),
            });
        }
        if !(validation_fraction > 0.0 && validation_fraction < 1.0) {
            return Err(MlError::InvalidParameter {
                name: "validation_fraction",
                reason: format!("must be in (0, 1), got {validation_fraction}"),
            });
        }
        Ok(GridSearch {
            candidates,
            validation_fraction,
        })
    }

    /// Scores every candidate and returns `(best, all_scores)`. Candidates
    /// whose fit fails are skipped; an error is returned only when *no*
    /// candidate could be scored.
    pub fn run(&self, data: &Dataset) -> Result<(RegressorSpec, Vec<CandidateScore>)> {
        let (train, valid) = data.split_fraction(1.0 - self.validation_fraction)?;
        let mut scores = Vec::with_capacity(self.candidates.len());
        for spec in &self.candidates {
            let pe = Self::score_candidate(spec, &train, &valid);
            scores.push(CandidateScore {
                spec: spec.clone(),
                pe,
            });
        }
        let best = scores
            .iter()
            .filter_map(|s| s.pe.map(|pe| (s.spec.clone(), pe)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("PE is finite"))
            .map(|(spec, _)| spec)
            .ok_or_else(|| MlError::InvalidParameter {
                name: "candidates",
                reason: "no candidate could be fitted and scored".into(),
            })?;
        Ok((best, scores))
    }

    fn score_candidate(spec: &RegressorSpec, train: &Dataset, valid: &Dataset) -> Option<f64> {
        let mut model = spec.build();
        model.fit(train).ok()?;
        let pred = model.predict(valid.x()).ok()?;
        metrics::percentage_error(&pred, valid.y()).ok()
    }
}

/// Lasso candidates over a list of α values.
pub fn lasso_grid(alphas: &[f64]) -> Vec<RegressorSpec> {
    alphas
        .iter()
        .map(|&alpha| {
            RegressorSpec::Lasso(LassoParams {
                alpha,
                ..LassoParams::default()
            })
        })
        .collect()
}

/// SVR candidates over the cross product of `C`, `γ`, and `ε` values.
pub fn svr_grid(cs: &[f64], gammas: &[f64], epsilons: &[f64]) -> Vec<RegressorSpec> {
    let mut out = Vec::with_capacity(cs.len() * gammas.len() * epsilons.len());
    for &c in cs {
        for &gamma in gammas {
            for &epsilon in epsilons {
                out.push(RegressorSpec::Svr(SvrParams {
                    c,
                    epsilon,
                    kernel: Kernel::Rbf { gamma },
                    ..SvrParams::default()
                }));
            }
        }
    }
    out
}

/// Gradient-boosting candidates over stage counts and depths.
pub fn gbm_grid(n_estimators: &[usize], depths: &[usize]) -> Vec<RegressorSpec> {
    let mut out = Vec::with_capacity(n_estimators.len() * depths.len());
    for &n in n_estimators {
        for &depth in depths {
            out.push(RegressorSpec::Gbm(GbmParams {
                n_estimators: n,
                max_depth: depth,
                ..GbmParams::default()
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_linalg::Matrix;

    fn linear_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 3.0).collect();
        Dataset::new(Matrix::from_rows(&refs).unwrap(), y).unwrap()
    }

    #[test]
    fn grid_builders_enumerate_cross_products() {
        assert_eq!(lasso_grid(&[0.01, 0.1, 1.0]).len(), 3);
        assert_eq!(svr_grid(&[1.0, 10.0], &[0.1, 1.0], &[0.1]).len(), 4);
        assert_eq!(gbm_grid(&[50, 100], &[1, 2, 3]).len(), 6);
    }

    #[test]
    fn picks_the_obviously_better_candidate() {
        // On noise-free linear data, tiny-alpha Lasso must beat huge-alpha
        // Lasso (which collapses to predicting the mean).
        let data = linear_dataset(40);
        let grid = GridSearch::new(lasso_grid(&[1e-6, 1e6])).unwrap();
        let (best, scores) = grid.run(&data).unwrap();
        assert_eq!(
            best, scores[0].spec,
            "expected the small-alpha candidate to win"
        );
        assert!(scores[0].pe.unwrap() < scores[1].pe.unwrap());
    }

    #[test]
    fn reports_scores_for_all_candidates() {
        let data = linear_dataset(30);
        let grid = GridSearch::new(RegressorSpec::paper_suite()).unwrap();
        let (_, scores) = grid.run(&data).unwrap();
        assert_eq!(scores.len(), 4);
        assert!(scores.iter().all(|s| s.pe.is_some()));
    }

    #[test]
    fn construction_validation() {
        assert!(GridSearch::new(vec![]).is_err());
        assert!(GridSearch::with_validation_fraction(lasso_grid(&[0.1]), 0.0).is_err());
        assert!(GridSearch::with_validation_fraction(lasso_grid(&[0.1]), 1.0).is_err());
    }

    #[test]
    fn too_small_dataset_fails_gracefully() {
        let data = linear_dataset(1);
        let grid = GridSearch::new(lasso_grid(&[0.1])).unwrap();
        assert!(grid.run(&data).is_err());
    }
}
