use crate::{LinalgError, Matrix, Result};

/// Householder QR decomposition of a tall (or square) matrix `A = Q R`.
///
/// The factorization is stored compactly: the Householder vectors live in
/// the lower trapezoid of `qr` and the upper triangle holds `R`. This is the
/// standard LAPACK-style layout; `Q` is never formed explicitly — instead
/// [`QrDecomposition::apply_qt`] applies `Qᵀ` to a right-hand side, which is
/// all least squares needs.
///
/// # Example
///
/// ```
/// use vup_linalg::{Matrix, QrDecomposition};
///
/// let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
/// let qr = QrDecomposition::decompose(&a).unwrap();
/// let beta = qr.solve_lstsq(&[2.0, 3.0, 4.0]).unwrap();
/// assert!((beta[0] - 1.0).abs() < 1e-10); // intercept
/// assert!((beta[1] - 1.0).abs() < 1e-10); // slope
/// ```
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    qr: Matrix,
    /// Scalar `tau_k = 2 / (v_kᵀ v_k)`-style factors; here we store the
    /// leading element of each (normalized) Householder vector implicitly
    /// and keep the full vector in the lower trapezoid, so `tau` holds the
    /// conventional reflection coefficients.
    tau: Vec<f64>,
    rows: usize,
    cols: usize,
}

/// Relative pivot tolerance below which a column is declared dependent.
const RANK_TOL: f64 = 1e-10;

/// Column-tile width of the blocked reflector application: at most this
/// many trailing-column accumulators are kept live while the rows stream
/// through, so the scratch stays within one cache page even for wide
/// designs. See DESIGN.md §3f for the blocking contract.
const QR_COL_BLOCK: usize = 64;

impl QrDecomposition {
    /// Factorizes `a` (requires `rows >= cols` and a non-empty matrix).
    ///
    /// Returns [`LinalgError::ShapeMismatch`] for wide matrices and
    /// [`LinalgError::Empty`] when `a` has no elements.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        Self::decompose_owned(a.clone())
    }

    /// [`QrDecomposition::decompose`] taking ownership of `a`, factoring
    /// in place instead of cloning — the entry point for hot paths that
    /// no longer need the design matrix afterwards.
    pub fn decompose_owned(a: Matrix) -> Result<Self> {
        Self::decompose_blocked(a, QR_COL_BLOCK)
    }

    /// The blocked factorization kernel. `col_block` only tiles the
    /// *schedule* of the reflector application; every `s_j = vᵀ a_j` is
    /// accumulated over ascending row indices exactly as in
    /// [`QrDecomposition::decompose_reference`], so the factors are
    /// bit-identical to the reference kernel for every block width.
    fn decompose_blocked(a: Matrix, col_block: usize) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a;
        let mut tau = vec![0.0; n];
        // Reusable accumulator tile for the blocked application.
        let mut s = vec![0.0_f64; col_block.min(n)];
        let data = qr.as_mut_slice();
        for k in 0..n {
            // Compute the Householder reflector for column k, rows k..m.
            let mut norm = 0.0_f64;
            for i in k..m {
                let v = data[i * n + k];
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0; // column already zero below the diagonal
                continue;
            }
            // Choose sign to avoid cancellation.
            let alpha = if data[k * n + k] >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, normalized so v[0] = 1.
            let v0 = data[k * n + k] - alpha;
            // tau = -v0 / alpha  (standard formula: tau = (alpha - x0)/alpha)
            tau[k] = -v0 / alpha;
            let inv_v0 = 1.0 / v0;
            for i in (k + 1)..m {
                data[i * n + k] *= inv_v0;
            }
            data[k * n + k] = alpha;
            // Apply the reflector to the remaining columns,
            // A := (I - tau v vᵀ) A for rows k..m, cols k+1..n, one
            // column tile at a time. Each tile makes two row-major
            // sweeps (accumulate, then update) instead of the reference
            // kernel's two stride-n column walks per trailing column.
            let mut jb = k + 1;
            while jb < n {
                let je = (jb + col_block).min(n);
                let width = je - jb;
                // Pass 1: s_j = a_kj + Σ_{i>k} v_ik · a_ij, rows ascending.
                s[..width].copy_from_slice(&data[k * n + jb..k * n + je]);
                for i in (k + 1)..m {
                    let row = &data[i * n..i * n + n];
                    let vik = row[k];
                    for (acc, &aij) in s[..width].iter_mut().zip(&row[jb..je]) {
                        *acc += vik * aij;
                    }
                }
                for acc in &mut s[..width] {
                    *acc *= tau[k];
                }
                // Pass 2: a_kj -= s_j; a_ij -= s_j · v_ik (one op per
                // element, so ordering cannot change the result).
                for (akj, &acc) in data[k * n + jb..k * n + je].iter_mut().zip(&s[..width]) {
                    *akj -= acc;
                }
                for i in (k + 1)..m {
                    let row = &mut data[i * n..i * n + n];
                    let vik = row[k];
                    for (aij, &acc) in row[jb..je].iter_mut().zip(&s[..width]) {
                        *aij -= acc * vik;
                    }
                }
                jb = je;
            }
        }
        Ok(QrDecomposition {
            qr,
            tau,
            rows: m,
            cols: n,
        })
    }

    /// The original column-at-a-time kernel, retained as the oracle for
    /// the blocked path: the equivalence proptests below assert the
    /// blocked factors match these bit for bit.
    // Index-based loops keep the reflector/rhs coupling explicit.
    #[allow(clippy::needless_range_loop)]
    pub fn decompose_reference(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k, rows k..m.
            let mut norm = 0.0_f64;
            for i in k..m {
                let v = qr[(i, k)];
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0; // column already zero below the diagonal
                continue;
            }
            // Choose sign to avoid cancellation.
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            // v = x - alpha * e1, normalized so v[0] = 1.
            let v0 = qr[(k, k)] - alpha;
            // tau = -v0 / alpha  (standard formula: tau = (alpha - x0)/alpha)
            tau[k] = -v0 / alpha;
            let inv_v0 = 1.0 / v0;
            for i in (k + 1)..m {
                qr[(i, k)] *= inv_v0;
            }
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns:
            // A := (I - tau v vᵀ) A for rows k..m, cols k+1..n.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(QrDecomposition {
            qr,
            tau,
            rows: m,
            cols: n,
        })
    }

    /// Shape of the factored matrix as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Applies `Qᵀ` to `b` in place (length must equal `rows`).
    // Index-based loops keep the reflector/rhs coupling explicit.
    #[allow(clippy::needless_range_loop)]
    pub fn apply_qt(&self, b: &mut [f64]) -> Result<()> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "apply_qt",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        for k in 0..self.cols {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..self.rows {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..self.rows {
                b[i] -= s * self.qr[(i, k)];
            }
        }
        Ok(())
    }

    /// Back-substitutes `R x = y` using the first `cols` entries of `y`.
    ///
    /// Returns [`LinalgError::RankDeficient`] when a diagonal entry of `R`
    /// is (relatively) negligible.
    // Index-based loop keeps the i/j coupling of back-substitution clear.
    #[allow(clippy::needless_range_loop)]
    fn back_substitute(&self, y: &[f64]) -> Result<Vec<f64>> {
        let n = self.cols;
        let scale = self.qr.max_abs().max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= RANK_TOL * scale {
                return Err(LinalgError::RankDeficient { column: i });
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Solves the least-squares problem `min_x ||A x - b||₂`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != rows` and
    /// [`LinalgError::RankDeficient`] when `A` lacks full column rank.
    pub fn solve_lstsq(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut y = b.to_vec();
        self.apply_qt(&mut y)?;
        self.back_substitute(&y)
    }

    /// Numerical rank estimate: the number of diagonal entries of `R` above
    /// the relative tolerance.
    pub fn rank(&self) -> usize {
        let scale = self.qr.max_abs().max(1.0);
        (0..self.cols)
            .filter(|&i| self.qr[(i, i)].abs() > RANK_TOL * scale)
            .count()
    }

    /// Extracts the upper-triangular factor `R` (`cols x cols`).
    pub fn r(&self) -> Matrix {
        let n = self.cols;
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

/// One-shot least squares: solves `min_x ||A x - b||₂` via Householder QR.
///
/// This is the entry point the OLS regressor in `vup-ml` uses.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    QrDecomposition::decompose(a)?.solve_lstsq(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = lstsq(&a, &[5.0, 10.0]).unwrap();
        // Solution of [2 1; 1 3] x = [5; 10] is [1, 3].
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_regression_line() {
        // y = 3 + 2 t with noise-free points: least squares must be exact.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![1.0, t]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let b: Vec<f64> = ts.iter().map(|&t| 3.0 + 2.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[1.0, 1.5], &[1.0, 2.5], &[1.0, 4.0]]).unwrap();
        let b = [1.0, 2.0, 2.0, 5.0];
        let x = lstsq(&a, &b).unwrap();
        let pred = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(&pred).map(|(&bi, &pi)| bi - pi).collect();
        let atr = a.matvec_t(&resid).unwrap();
        assert!(atr.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn detects_rank_deficiency() {
        // Second column is twice the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0, 3.0]),
            Err(LinalgError::RankDeficient { .. })
        ));
        let qr = QrDecomposition::decompose(&a).unwrap();
        assert_eq!(qr.rank(), 1);
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(matches!(
            QrDecomposition::decompose(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            QrDecomposition::decompose(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn rhs_length_is_validated() {
        let a = Matrix::identity(3);
        let qr = QrDecomposition::decompose(&a).unwrap();
        assert!(qr.solve_lstsq(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn r_is_upper_triangular_and_reconstructs_gram() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 7.0]]).unwrap();
        let qr = QrDecomposition::decompose(&a).unwrap();
        let r = qr.r();
        // RᵀR must equal AᵀA (since QᵀQ = I).
        let rtr = r.transpose().matmul(&r).unwrap();
        let ata = a.gram();
        assert!(rtr.sub(&ata).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn handles_column_with_zero_tail() {
        // First column is e1: reflector for it degenerates gracefully.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0], &[0.0, 1.0]]).unwrap();
        let x = lstsq(&a, &[2.0, 1.0, 1.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    proptest! {
        #[test]
        fn prop_lstsq_recovers_planted_coefficients(
            coeffs in proptest::collection::vec(-4.0_f64..4.0, 3),
            xs in proptest::collection::vec(-10.0_f64..10.0, 24),
        ) {
            // Build a 12x3 design matrix with an intercept-like first column
            // jittered so that columns are independent almost surely.
            let mut rows = Vec::new();
            for chunk in xs.chunks_exact(2) {
                rows.push(vec![1.0 + 0.01 * chunk[0] * chunk[1], chunk[0], chunk[1]]);
            }
            let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
            let a = Matrix::from_rows(&refs).unwrap();
            let qr = QrDecomposition::decompose(&a).unwrap();
            prop_assume!(qr.rank() == 3);
            let b = a.matvec(&coeffs).unwrap();
            let x = qr.solve_lstsq(&b).unwrap();
            prop_assert!(crate::vector::max_abs_diff(&x, &coeffs) < 1e-6);
        }

        #[test]
        fn prop_qt_preserves_norm(
            data in proptest::collection::vec(-5.0_f64..5.0, 12),
            rhs in proptest::collection::vec(-5.0_f64..5.0, 4),
        ) {
            let a = Matrix::from_vec(4, 3, data).unwrap();
            let qr = match QrDecomposition::decompose(&a) {
                Ok(qr) => qr,
                Err(_) => return Ok(()),
            };
            let before = crate::vector::norm2(&rhs);
            let mut after = rhs.clone();
            qr.apply_qt(&mut after).unwrap();
            prop_assert!((crate::vector::norm2(&after) - before).abs() < 1e-8 * (1.0 + before));
        }

        /// Equivalence gate for the speed pass: the blocked row-major
        /// kernel must reproduce the reference factorization *bit for
        /// bit* (no tolerance) — each trailing column's `s_j = vᵀ a_j` is
        /// accumulated over ascending row indices in both kernels, so the
        /// rounding sequence is identical. Tile widths 1, 2, and 5
        /// straddle block boundaries on an 11x8 design; the default
        /// `QR_COL_BLOCK` path is covered too.
        #[test]
        fn prop_blocked_factor_bit_identical_to_reference(
            data in proptest::collection::vec(-5.0_f64..5.0, 88),
            rhs in proptest::collection::vec(-5.0_f64..5.0, 11),
        ) {
            let a = Matrix::from_vec(11, 8, data).unwrap();
            let reference = QrDecomposition::decompose_reference(&a).unwrap();
            for block in [1, 2, 5, QR_COL_BLOCK] {
                let blocked =
                    QrDecomposition::decompose_blocked(a.clone(), block).unwrap();
                prop_assert_eq!(
                    blocked.qr.as_slice(),
                    reference.qr.as_slice(),
                    "factor diverged at col_block={}", block
                );
                prop_assert_eq!(&blocked.tau, &reference.tau);
                prop_assert_eq!(blocked.rank(), reference.rank());
                if reference.rank() == 8 {
                    let xb = blocked.solve_lstsq(&rhs).unwrap();
                    let xr = reference.solve_lstsq(&rhs).unwrap();
                    prop_assert_eq!(xb, xr);
                }
            }
        }
    }
}
