//! Timing hooks for model fitting and prediction.
//!
//! A [`MlTimers`] pair is the ML layer's whole observability surface: one
//! histogram for fit durations, one for single-prediction durations, both
//! in nanoseconds on the shared latency bucket scale. Callers that fit
//! models (e.g. `vup-core`'s `FittedPredictor`) accept an `&MlTimers` and
//! record into it; the default/[disabled](MlTimers::disabled) pair makes
//! every span a no-op that never reads the clock, so un-instrumented
//! call sites pay nothing.

use vup_obs::{Buckets, Histogram, Registry, SpanCtx};

/// Histograms timing model fits and single predictions, plus the span
/// context fits trace under.
///
/// Cheap to clone (a few `Option<Arc>`s); a fitted model keeps a copy so
/// its predictions keep recording wherever the model travels.
#[derive(Clone, Default)]
pub struct MlTimers {
    /// Nanoseconds per model fit (`vup_ml_fit_nanos`).
    pub fit_nanos: Histogram,
    /// Nanoseconds per single prediction (`vup_ml_predict_nanos`).
    pub predict_nanos: Histogram,
    /// Parent span context: when enabled, each fit emits an `ml_fit`
    /// span under it (see `vup_obs::trace`). Disabled by default, so
    /// plain metric recording stays trace-free.
    pub trace: SpanCtx,
}

impl MlTimers {
    /// Registers the ML timing histograms in `registry` (tracing stays
    /// disabled; attach a context with [`MlTimers::for_span`]).
    pub fn register(registry: &Registry) -> MlTimers {
        registry.describe("vup_ml_fit_nanos", "Nanoseconds per model fit.");
        registry.describe("vup_ml_predict_nanos", "Nanoseconds per single prediction.");
        MlTimers {
            fit_nanos: registry.histogram("vup_ml_fit_nanos", Buckets::latency()),
            predict_nanos: registry.histogram("vup_ml_predict_nanos", Buckets::latency()),
            trace: SpanCtx::disabled(),
        }
    }

    /// Timers that record nothing and never read the clock.
    pub fn disabled() -> MlTimers {
        MlTimers::default()
    }

    /// A copy of these timers whose fits trace as children of `ctx`
    /// (same histograms, different position in the span tree).
    pub fn for_span(&self, ctx: &SpanCtx) -> MlTimers {
        MlTimers {
            fit_nanos: self.fit_nanos.clone(),
            predict_nanos: self.predict_nanos.clone(),
            trace: ctx.clone(),
        }
    }

    /// Whether these timers record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.fit_nanos.is_enabled() || self.predict_nanos.is_enabled() || self.trace.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timers_are_noops() {
        let timers = MlTimers::disabled();
        assert!(!timers.is_enabled());
        assert_eq!(timers.fit_nanos.time(|| 7), 7);
        assert_eq!(timers.fit_nanos.count(), 0);
    }

    #[test]
    fn registered_timers_record_spans() {
        let registry = Registry::new();
        let timers = MlTimers::register(&registry);
        assert!(timers.is_enabled());
        timers.fit_nanos.time(|| std::hint::black_box(1 + 1));
        timers.predict_nanos.time(|| std::hint::black_box(2 + 2));
        // A clone keeps recording into the same series.
        timers.clone().predict_nanos.time(|| ());
        assert_eq!(registry.snapshot().counter_total("nonexistent"), 0);
        assert_eq!(timers.fit_nanos.count(), 1);
        assert_eq!(timers.predict_nanos.count(), 2);
    }

    #[test]
    fn for_span_shares_histograms_and_swaps_the_trace_context() {
        let registry = Registry::new();
        let tracer = vup_obs::Tracer::new();
        let root = tracer.root("root");
        let timers = MlTimers::register(&registry);
        assert!(!timers.trace.is_enabled());
        let traced = timers.for_span(&root.ctx());
        assert!(traced.trace.is_enabled());
        traced.fit_nanos.time(|| ());
        assert_eq!(timers.fit_nanos.count(), 1, "same underlying histogram");
    }
}
