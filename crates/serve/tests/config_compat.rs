//! Compatibility contract for the operator-facing JSON configs
//! ([`ResilienceConfig`] and [`FaultPlan`], including its nested disk
//! section): every config round-trips through its own JSON losslessly,
//! and a stray key — a typo in a chaos plan silently neutering the
//! fault it meant to enable — is rejected with an error that names it.

use vup_serve::{DiskFaultPlan, FaultPlan, ResilienceConfig, RetryPolicy};

#[test]
fn resilience_config_round_trips_through_json() {
    let config = ResilienceConfig {
        retry: RetryPolicy::with_attempts(4),
        deadline_nanos: Some(9_000_000),
        ..ResilienceConfig::resilient()
    };
    let parsed = ResilienceConfig::from_json(&config.to_json()).unwrap();
    assert_eq!(parsed, config);
}

#[test]
fn fault_plan_with_disk_section_round_trips_through_json() {
    let plan = FaultPlan {
        seed: 7,
        fit_error_rate: 0.25,
        disk: Some(DiskFaultPlan {
            torn_write_rate: 0.3,
            torn_write_byte: 24,
            bit_flip_rate: 0.25,
            io_error_rate: 0.3,
            io_error_attempts: 2,
            full_disk_after_bytes: Some(4_096),
        }),
        ..FaultPlan::default()
    };
    let parsed = FaultPlan::from_json(&plan.to_json()).unwrap();
    assert_eq!(parsed, plan);
    assert!(parsed.disk_faults().is_some());
}

/// Injects a stray `"key": value` pair at the top of a JSON object.
fn with_stray_key(json: &str, key: &str) -> String {
    json.replacen('{', &format!("{{\n  \"{key}\": 1,"), 1)
}

#[test]
fn unknown_top_level_fault_plan_keys_are_rejected_by_name() {
    let err = FaultPlan::from_json(&with_stray_key(
        &FaultPlan::default().to_json(),
        "fit_eror_rate",
    ))
    .expect_err("a typoed key must not parse");
    let message = err.to_string();
    assert!(message.contains("unknown field"), "{message}");
    assert!(message.contains("fit_eror_rate"), "{message}");
}

#[test]
fn unknown_disk_section_keys_are_rejected_by_name() {
    let plan = FaultPlan {
        disk: Some(DiskFaultPlan {
            torn_write_rate: 0.3,
            ..DiskFaultPlan::default()
        }),
        ..FaultPlan::default()
    };
    // Typo one key *inside* the nested disk object only.
    let text = plan.to_json().replace("torn_write_rate", "torn_rate");
    let err = FaultPlan::from_json(&text).expect_err("a typoed disk key must not parse");
    let message = err.to_string();
    assert!(message.contains("unknown field"), "{message}");
    assert!(message.contains("torn_rate"), "{message}");
    assert!(message.contains("DiskFaultPlan"), "{message}");
}

#[test]
fn unknown_resilience_keys_are_rejected_by_name() {
    let mut text = ResilienceConfig::resilient().to_json();
    let closing = text.rfind('}').unwrap();
    text.truncate(closing);
    text.push_str(",\n  \"dead_line_nanos\": 5\n}");
    let err = ResilienceConfig::from_json(&text).expect_err("a typoed key must not parse");
    let message = err.to_string();
    assert!(message.contains("unknown field"), "{message}");
    assert!(message.contains("dead_line_nanos"), "{message}");
}

#[test]
fn absent_optional_sections_parse_as_none_not_as_errors() {
    // Rejecting unknown keys must not confuse "absent" with "unknown":
    // a plan written before the disk section existed still parses.
    let legacy = FaultPlan {
        seed: 3,
        fit_error_rate: 0.5,
        ..FaultPlan::default()
    };
    let text = legacy.to_json();
    // Cut `,"disk": null` (the last field) out of the serialized form.
    let key = text.find("\"disk\"").unwrap();
    let comma = text[..key].rfind(',').unwrap();
    let end = key + text[key..].find("null").unwrap() + "null".len();
    let stripped = format!("{}{}", &text[..comma], &text[end..]);
    let plan = FaultPlan::from_json(&stripped).unwrap();
    assert_eq!(plan.seed, 3);
    assert!(plan.disk.is_none());
    assert!(plan.disk_faults().is_none());
}
