//! Per-vehicle utilization-hour forecasting — the paper's contribution.
//!
//! This crate assembles the substrates (`vup-fleetsim`, `vup-dataprep`,
//! `vup-tseries`, `vup-ml`) into the methodology of *Heterogeneous
//! Industrial Vehicle Usage Predictions: A Real Case* (EDBT/ICDT-WS 2019):
//!
//! 1. a **per-vehicle view** of the prepared daily data under one of two
//!    scenarios — *next-day* (all days) or *next-working-day* (only days
//!    with ≥ 1 h of usage) — see [`scenario`] and [`view`];
//! 2. **windowed training-data generation**: each record holds the target
//!    `H_{t+1}` plus lagged features of preceding days ([`window`]);
//! 3. **statistics-based feature selection**: the `K` lags with maximal
//!    autocorrelation in the training window are kept ([`select`]);
//! 4. **per-vehicle regression** with the paper's algorithms and the LV /
//!    MA baselines ([`predictor`]);
//! 5. **hold-out evaluation** with sliding- or expanding-window training
//!    and the paper's Percentage Error, aggregated per vehicle and over
//!    the fleet ([`evaluate`], [`fleet_eval`] — the latter dispatched on
//!    the lock-free [`executor`], which is shared with the `vup-serve`
//!    batch prediction service).
//!
//! The paper's §5 future-work items are implemented too: weather context
//! (`vup_fleetsim::weather` + `FeatureConfig::target_weather`) and
//! discrete usage-level classification ([`levels`]).
//!
//! # Quickstart
//!
//! ```
//! use vup_fleetsim::{Fleet, FleetConfig, VehicleId};
//! use vup_core::{PipelineConfig, Scenario, VehicleView, evaluate::evaluate_vehicle};
//!
//! let fleet = Fleet::generate(FleetConfig::small(5, 42));
//! let view = VehicleView::build(&fleet, VehicleId(0), Scenario::NextWorkingDay);
//! let config = PipelineConfig::default();
//! let eval = evaluate_vehicle(&view, &config).unwrap();
//! assert!(eval.percentage_error > 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod evaluate;
pub mod executor;
pub mod fleet_eval;
pub mod forecast;
pub mod levels;
pub mod predictor;
pub mod report;
pub mod scenario;
pub mod select;
pub mod view;
pub mod window;

pub use config::{FeatureConfig, ModelSpec, PipelineConfig, Strategy};
pub use predictor::{FittedPredictor, SavedPredictor, SavedPredictorKind};
pub use scenario::Scenario;
pub use view::VehicleView;

/// Convenience result alias; core errors are `vup-ml` errors.
pub type Result<T> = std::result::Result<T, vup_ml::MlError>;
