//! Observability must be a write-only side channel: fleet evaluations
//! and served forecasts have to be bit-identical whether metrics are
//! recorded into a live registry or dropped by the no-op one, at every
//! thread count. These are the regression tests for that invariant.

use vehicle_usage_prediction::core::fleet_eval::{
    evaluate_fleet, evaluate_fleet_observed, evaluate_fleet_traced, FleetEvaluation,
};
use vehicle_usage_prediction::prelude::*;

fn eval_config() -> PipelineConfig {
    PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 60,
        eval_tail: Some(90),
        ..PipelineConfig::default()
    }
}

fn assert_bit_identical(a: &FleetEvaluation, b: &FleetEvaluation, label: &str) {
    assert_eq!(a.members.len(), b.members.len(), "{label}");
    for (ma, mb) in a.members.iter().zip(&b.members) {
        assert_eq!(ma.vehicle_id, mb.vehicle_id, "{label}");
        match (&ma.outcome, &mb.outcome) {
            (Ok(ea), Ok(eb)) => {
                assert_eq!(
                    ea.percentage_error.to_bits(),
                    eb.percentage_error.to_bits(),
                    "{label}: PE diverged for vehicle {}",
                    ma.vehicle_id
                );
                assert_eq!(ea.mae.to_bits(), eb.mae.to_bits(), "{label}");
                assert_eq!(ea.points.len(), eb.points.len(), "{label}");
                for (pa, pb) in ea.points.iter().zip(&eb.points) {
                    assert_eq!(pa.predicted.to_bits(), pb.predicted.to_bits(), "{label}");
                }
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{label}"),
            _ => panic!("{label}: outcome kind mismatch"),
        }
    }
    assert_eq!(
        a.mean_percentage_error.to_bits(),
        b.mean_percentage_error.to_bits(),
        "{label}"
    );
}

#[test]
fn fleet_eval_is_bit_identical_with_and_without_metrics_across_threads() {
    let fleet = Fleet::generate(FleetConfig::small(8, 404));
    let ids: Vec<VehicleId> = (0..8).map(VehicleId).collect();
    let cfg = eval_config();

    let reference = evaluate_fleet(&fleet, &ids, &cfg, 1);
    for threads in [1usize, 2, 4] {
        // No-op registry: the un-instrumented entry point.
        let plain = evaluate_fleet(&fleet, &ids, &cfg, threads);
        assert_bit_identical(&reference, &plain, &format!("plain, {threads} threads"));

        // Live registry: every span timed, every counter recorded.
        let registry = Registry::new();
        let (observed, summary) = evaluate_fleet_observed(&fleet, &ids, &cfg, threads, &registry);
        assert_bit_identical(
            &reference,
            &observed,
            &format!("observed, {threads} threads"),
        );

        // The instrumentation itself must be internally consistent.
        assert_eq!(summary.tasks_run(), ids.len() as u64);
        assert_eq!(summary.chunks_claimed(), ids.len() as u64);
        assert!(summary.busy_nanos() > 0, "live metrics time the workers");
        let labels = [("pool", "fleet_eval")];
        assert_eq!(
            registry
                .counter_with("vup_executor_tasks_total", &labels)
                .get(),
            ids.len() as u64
        );
        assert_eq!(
            registry
                .snapshot()
                .counter_total("vup_fleet_eval_vehicles_total"),
            ids.len() as u64
        );
    }
}

#[test]
fn disabled_registry_records_nothing_through_the_observed_path() {
    let fleet = Fleet::generate(FleetConfig::small(4, 405));
    let ids: Vec<VehicleId> = (0..4).map(VehicleId).collect();
    let registry = Registry::disabled();
    let (_, summary) = evaluate_fleet_observed(&fleet, &ids, &eval_config(), 2, &registry);
    assert!(registry.snapshot().samples.is_empty());
    // Counts are still collected (cheap), but no clock was read.
    assert_eq!(summary.tasks_run(), 4);
    assert_eq!(summary.busy_nanos(), 0);
    assert_eq!(summary.idle_nanos(), 0);
}

#[test]
fn fleet_eval_is_bit_identical_with_live_tracer_across_threads() {
    let fleet = Fleet::generate(FleetConfig::small(8, 404));
    let ids: Vec<VehicleId> = (0..8).map(VehicleId).collect();
    let cfg = eval_config();

    let reference = evaluate_fleet(&fleet, &ids, &cfg, 1);
    for threads in [1usize, 2, 4] {
        let tracer = Tracer::new();
        let (traced, _) =
            evaluate_fleet_traced(&fleet, &ids, &cfg, threads, &Registry::disabled(), &tracer);
        assert_bit_identical(&reference, &traced, &format!("traced, {threads} threads"));

        // The span tree covers the whole run regardless of thread count.
        let snapshot = tracer.snapshot();
        let count = |name: &str| snapshot.events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("evaluate_fleet"), 1, "{threads} threads");
        assert_eq!(count("evaluate_vehicle"), ids.len(), "{threads} threads");
        assert_eq!(count("view_build"), ids.len(), "{threads} threads");
        assert_eq!(snapshot.dropped, 0);
    }
}

#[test]
fn disabled_tracer_records_nothing_and_reads_no_clock() {
    let fleet = Fleet::generate(FleetConfig::small(4, 407));
    let ids: Vec<VehicleId> = (0..4).map(VehicleId).collect();
    let tracer = Tracer::disabled();
    let (_, summary) = evaluate_fleet_traced(
        &fleet,
        &ids,
        &eval_config(),
        2,
        &Registry::disabled(),
        &tracer,
    );
    assert!(tracer.snapshot().is_empty());
    // The traced code path stayed clock-free end to end.
    assert_eq!(summary.busy_nanos(), 0);
    assert_eq!(summary.idle_nanos(), 0);
}

#[test]
fn served_forecasts_are_bit_identical_with_and_without_metrics_across_threads() {
    let fleet = Fleet::generate(FleetConfig::small(6, 406));
    let requests: Vec<BatchRequest> = (0..6)
        .map(|id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon: 3,
        })
        .collect();
    let config = || PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 7,
        ..PipelineConfig::default()
    };

    let reference = {
        let service = PredictionService::new(&fleet, config(), 1).unwrap();
        service.serve_batch(&requests, None)
    };
    for threads in [1usize, 2, 4] {
        let registry = Registry::new();
        let service =
            PredictionService::new_observed(&fleet, config(), threads, &registry).unwrap();
        // Two rounds: retrain-then-serve, then cache hits — both must
        // yield the reference forecasts bit for bit.
        let first = service.serve_batch(&requests, None);
        for (a, b) in reference.iter().zip(&first) {
            let (fa, fb) = (a.forecast().unwrap(), b.forecast().unwrap());
            let bits = |f: &vehicle_usage_prediction::serve::Forecast| {
                f.hours.iter().map(|h| h.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(fa), bits(fb), "threads = {threads}");
        }
        let second = service.serve_batch(&requests, None);
        assert!(second.iter().all(ServeOutcome::is_cache_hit));
        assert_eq!(
            registry
                .snapshot()
                .counter_total("vup_serve_outcomes_total"),
            2 * requests.len() as u64
        );
    }
}

#[test]
fn served_forecasts_are_bit_identical_with_live_tracer_across_threads() {
    let fleet = Fleet::generate(FleetConfig::small(6, 406));
    let requests: Vec<BatchRequest> = (0..6)
        .map(|id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon: 3,
        })
        .collect();
    let config = || PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 7,
        ..PipelineConfig::default()
    };

    let reference = {
        let service = PredictionService::new(&fleet, config(), 1).unwrap();
        service.serve_batch(&requests, None)
    };
    for threads in [1usize, 2, 4] {
        let tracer = Tracer::new();
        let service = PredictionService::new(&fleet, config(), threads)
            .unwrap()
            .with_tracer(tracer.clone());
        let outcomes = service.serve_batch(&requests, None);
        assert_eq!(outcomes, reference, "threads = {threads}");
        for (a, b) in reference.iter().zip(&outcomes) {
            let (fa, fb) = (a.forecast().unwrap(), b.forecast().unwrap());
            let bits = |f: &vehicle_usage_prediction::serve::Forecast| {
                f.hours.iter().map(|h| h.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(fa), bits(fb), "threads = {threads}");
        }

        let snapshot = tracer.snapshot();
        let count = |name: &str| snapshot.events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("serve_batch"), 1, "{threads} threads");
        assert_eq!(count("view_build"), requests.len(), "{threads} threads");
        assert_eq!(count("predict"), requests.len(), "{threads} threads");
        assert_eq!(snapshot.dropped, 0);
    }
}

#[test]
fn provenance_survives_tracing_and_reports_zero_nanos_when_disabled() {
    let fleet = Fleet::generate(FleetConfig::small(2, 408));
    let requests: Vec<BatchRequest> = (0..2)
        .map(|id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon: 2,
        })
        .collect();
    let config = PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 7,
        ..PipelineConfig::default()
    };
    let service = PredictionService::new(&fleet, config, 1).unwrap();
    let outcomes = service.serve_batch(&requests, None);
    for outcome in &outcomes {
        let p = outcome.provenance();
        // Without a live registry the stage clocks were never read.
        assert_eq!(p.stage_nanos.view_build, 0);
        assert_eq!(p.stage_nanos.fit, 0);
        assert_eq!(p.stage_nanos.predict, 0);
        assert!(p.trained_at.is_some());
    }
    // The journal serializes every record and parses back unchanged.
    let journal = ServeJournal::from_outcomes(&outcomes);
    let parsed = ServeJournal::from_json(&journal.to_json()).unwrap();
    assert_eq!(parsed, journal);
}
