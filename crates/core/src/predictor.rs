//! Per-vehicle model fitting and prediction.
//!
//! [`FittedPredictor::fit`] performs one training pass exactly as the
//! paper prescribes: compute the ACF of the training window's utilization
//! series, keep the `K` strongest lags, build the windowed records,
//! standardize the features, and train the configured regressor. The
//! naive baselines (LV, MA) skip the feature machinery and forecast from
//! the raw series.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};
use vup_ml::baseline::BaselineSpec;
use vup_ml::instrument::MlTimers;
use vup_ml::scaler::StandardScaler;
use vup_ml::{Regressor, SavedModel, TrainArena};

use crate::config::{ModelSpec, PipelineConfig};
use crate::select::select_lags;
use crate::view::VehicleView;
use crate::window::{build_dataset_arena, feature_row_into};

/// Physical bounds on a daily-hours prediction.
const MIN_HOURS: f64 = 0.0;
/// Upper physical bound (a day has 24 hours).
const MAX_HOURS: f64 = 24.0;

thread_local! {
    /// Per-thread feature-row scratch for the predict hot path; fully
    /// overwritten on every use, so sharing it across predictors is safe.
    static PREDICT_ROW: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Schema fingerprint for [`TrainArena`] reuse: everything a design-matrix
/// row's contents depend on besides the target index — the vehicle, the
/// scenario that shaped the view, the selected lags and the feature
/// flags. Section counts separate the variable-length parts.
fn arena_key(view: &VehicleView, config: &PipelineConfig, lags: &[usize]) -> u64 {
    let f = &config.features;
    let can_idx = f.can_channels.indices();
    vup_ml::arena::fingerprint(
        [
            view.vehicle_id.0 as u64,
            config.scenario as u64,
            f.lag_hours as u64,
            f.target_calendar as u64,
            f.target_weather as u64,
            can_idx.len() as u64,
        ]
        .into_iter()
        .chain(can_idx.iter().map(|&c| c as u64))
        .chain([lags.len() as u64])
        .chain(lags.iter().map(|&l| l as u64)),
    )
}

#[derive(Clone)]
enum FittedKind {
    Baseline(BaselineSpec),
    Learned {
        scaler: StandardScaler,
        model: Box<dyn Regressor + Send + Sync>,
    },
}

/// A model fitted on one training window of one vehicle.
///
/// `Clone + Send + Sync` by construction, so `vup-serve` can hold one in
/// an `Arc` and serve predictions from many threads at once.
#[derive(Clone)]
pub struct FittedPredictor {
    kind: FittedKind,
    lags: Vec<usize>,
    config: PipelineConfig,
    /// Timing hooks carried from fitting; predictions self-record their
    /// duration into `timers.predict_nanos`. No-op (and clock-free)
    /// unless fitted through [`FittedPredictor::fit_observed`] with live
    /// timers.
    timers: MlTimers,
}

impl FittedPredictor {
    /// Fits on the training window of slots `[train_from, train_to)`.
    ///
    /// For learned models the window must hold at least
    /// `max_lag + 2` slots so that at least two records exist.
    pub fn fit(
        view: &VehicleView,
        config: &PipelineConfig,
        train_from: usize,
        train_to: usize,
    ) -> crate::Result<FittedPredictor> {
        Self::fit_observed(view, config, train_from, train_to, &MlTimers::disabled())
    }

    /// [`FittedPredictor::fit`] with timing: the whole fit is recorded
    /// into `timers.fit_nanos`, and the returned predictor keeps a clone
    /// of `timers` so each later [`predict`](FittedPredictor::predict)
    /// records into `timers.predict_nanos`. Timing never changes what is
    /// fitted or predicted.
    pub fn fit_observed(
        view: &VehicleView,
        config: &PipelineConfig,
        train_from: usize,
        train_to: usize,
        timers: &MlTimers,
    ) -> crate::Result<FittedPredictor> {
        let mut arena = TrainArena::new();
        Self::fit_arena_observed(view, config, train_from, train_to, timers, &mut arena)
    }

    /// [`FittedPredictor::fit_observed`] building the design matrix
    /// through a caller-owned [`TrainArena`], so a sequence of retrain
    /// episodes for the *same vehicle stream* reuses buffers and the
    /// overlapping window rows. The arena never changes what is fitted —
    /// results are bit-identical to [`FittedPredictor::fit`].
    pub fn fit_arena_observed(
        view: &VehicleView,
        config: &PipelineConfig,
        train_from: usize,
        train_to: usize,
        timers: &MlTimers,
        arena: &mut TrainArena,
    ) -> crate::Result<FittedPredictor> {
        let mut span = timers.trace.child("ml_fit");
        span.arg("vehicle", view.vehicle_id.0);
        span.arg("train_from", train_from);
        span.arg("train_to", train_to);
        let result = timers
            .fit_nanos
            .time(|| Self::fit_inner(view, config, train_from, train_to, timers, arena));
        if let Ok(fitted) = &result {
            span.arg("lags", fitted.lags.len());
        }
        result
    }

    fn fit_inner(
        view: &VehicleView,
        config: &PipelineConfig,
        train_from: usize,
        train_to: usize,
        timers: &MlTimers,
        arena: &mut TrainArena,
    ) -> crate::Result<FittedPredictor> {
        config.validate()?;
        if train_to > view.len() || train_from >= train_to {
            return Err(vup_ml::MlError::NotEnoughSamples {
                required: 2,
                actual: 0,
            });
        }
        match &config.model {
            ModelSpec::Baseline(spec) => Ok(FittedPredictor {
                kind: FittedKind::Baseline(*spec),
                lags: Vec::new(),
                config: config.clone(),
                timers: timers.clone(),
            }),
            ModelSpec::Learned(spec) => {
                let window_len = train_to - train_from;
                if window_len < config.max_lag + 2 {
                    return Err(vup_ml::MlError::NotEnoughSamples {
                        required: config.max_lag + 2,
                        actual: window_len,
                    });
                }
                // Statistics-based feature selection on the window's series.
                let train_hours = view.hours_range(train_from, train_to);
                let lags = select_lags(&train_hours, config.effective_k(), config.max_lag);

                let mut dataset = build_dataset_arena(
                    arena,
                    arena_key(view, config, &lags),
                    view,
                    train_from + config.max_lag,
                    train_to,
                    &lags,
                    &config.features,
                )?;
                // Fit-then-transform in place: the same arithmetic as
                // `StandardScaler::fit_transform` without cloning the
                // arena-owned matrix.
                let scaler = StandardScaler::fit(dataset.x())?;
                dataset.standardize_in_place(&scaler)?;
                let mut model = spec.build();
                model.fit(&dataset)?;
                arena.reclaim(dataset);
                Ok(FittedPredictor {
                    kind: FittedKind::Learned { scaler, model },
                    lags,
                    config: config.clone(),
                    timers: timers.clone(),
                })
            }
        }
    }

    /// The lags selected during fitting (empty for baselines).
    pub fn selected_lags(&self) -> &[usize] {
        &self.lags
    }

    /// The configuration this predictor was fitted under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Display label of the fitted model.
    pub fn label(&self) -> &'static str {
        self.config.model.label()
    }

    /// Predicts the utilization hours of slot `target`, clamped to the
    /// physical `[0, 24]` range.
    ///
    /// `target` must leave enough history: `max_lag` slots for learned
    /// models, at least one slot for the baselines.
    pub fn predict(&self, view: &VehicleView, target: usize) -> crate::Result<f64> {
        self.timers
            .predict_nanos
            .time(|| self.predict_inner(view, target))
    }

    fn predict_inner(&self, view: &VehicleView, target: usize) -> crate::Result<f64> {
        if target > view.len() {
            return Err(vup_ml::MlError::InvalidParameter {
                name: "target",
                reason: format!("slot {target} beyond series of {}", view.len()),
            });
        }
        let raw = match &self.kind {
            FittedKind::Baseline(spec) => {
                if target == 0 {
                    return Err(vup_ml::MlError::NotEnoughSamples {
                        required: 1,
                        actual: 0,
                    });
                }
                let history_start = match spec {
                    BaselineSpec::LastValue => target - 1,
                    BaselineSpec::MovingAverage(p) => target.saturating_sub(*p),
                };
                let history = view.hours_range(history_start, target);
                spec.build()?.forecast(&history)?
            }
            FittedKind::Learned { scaler, model } => {
                let max_lag = self.config.max_lag;
                if target < max_lag {
                    return Err(vup_ml::MlError::NotEnoughSamples {
                        required: max_lag,
                        actual: target,
                    });
                }
                PREDICT_ROW.with(|cell| {
                    let mut row = cell.borrow_mut();
                    row.clear();
                    row.resize(self.config.features.n_features(self.lags.len()), 0.0);
                    feature_row_into(view, target, &self.lags, &self.config.features, &mut row);
                    scaler.transform_row(&mut row)?;
                    model.predict_row(&row)
                })?
            }
        };
        Ok(raw.clamp(MIN_HOURS, MAX_HOURS))
    }

    /// Snapshots everything needed to rebuild this predictor into the
    /// serializable [`SavedPredictor`] envelope.
    pub fn save(&self) -> SavedPredictor {
        let kind = match &self.kind {
            FittedKind::Baseline(spec) => SavedPredictorKind::Baseline(*spec),
            FittedKind::Learned { scaler, model } => SavedPredictorKind::Learned {
                scaler: scaler.clone(),
                model: model.save(),
            },
        };
        SavedPredictor {
            kind,
            lags: self.lags.clone(),
            config: self.config.clone(),
        }
    }
}

/// Serializable counterpart of the private fitted-model state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SavedPredictorKind {
    /// A naive series baseline (no fit state beyond the spec).
    Baseline(BaselineSpec),
    /// A learned regressor with its feature scaler.
    Learned {
        /// The standardizer fitted on the training window.
        scaler: StandardScaler,
        /// The fitted estimator, type-tagged for restoration.
        model: SavedModel,
    },
}

/// A serializable snapshot of a [`FittedPredictor`].
///
/// Captures the fitted model (or baseline spec), the selected lags and
/// the pipeline configuration — everything [`FittedPredictor::predict`]
/// consults. Because the JSON shim round-trips `f64` values bit-exactly,
/// a save → serialize → deserialize → restore cycle yields a predictor
/// whose outputs are bit-identical to the original's.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedPredictor {
    kind: SavedPredictorKind,
    lags: Vec<usize>,
    config: PipelineConfig,
}

impl SavedPredictor {
    /// The configuration the snapshotted predictor was fitted under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Rebuilds the live predictor.
    ///
    /// The restored predictor carries disabled timers: snapshots hold
    /// model state, not observability wiring. Use
    /// [`SavedPredictor::restore_observed`] to attach live timers.
    pub fn restore(self) -> FittedPredictor {
        self.restore_observed(&MlTimers::disabled())
    }

    /// [`SavedPredictor::restore`] with timing hooks, mirroring
    /// [`FittedPredictor::fit_observed`].
    pub fn restore_observed(self, timers: &MlTimers) -> FittedPredictor {
        let kind = match self.kind {
            SavedPredictorKind::Baseline(spec) => FittedKind::Baseline(spec),
            SavedPredictorKind::Learned { scaler, model } => FittedKind::Learned {
                scaler,
                model: model.restore(),
            },
        };
        FittedPredictor {
            kind,
            lags: self.lags,
            config: self.config,
            timers: timers.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use crate::scenario::Scenario;
    use vup_fleetsim::fleet::{Fleet, FleetConfig, VehicleId};
    use vup_ml::RegressorSpec;

    fn view() -> VehicleView {
        let fleet = Fleet::generate(FleetConfig::small(5, 2024));
        VehicleView::build(&fleet, VehicleId(0), Scenario::NextWorkingDay)
    }

    fn config_with(model: ModelSpec) -> PipelineConfig {
        PipelineConfig {
            model,
            scenario: Scenario::NextWorkingDay,
            strategy: Strategy::Sliding,
            train_window: 140,
            max_lag: 30,
            k: 10,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn learned_model_fits_and_predicts_in_range() {
        let v = view();
        let cfg = config_with(ModelSpec::Learned(RegressorSpec::Linear));
        let fitted = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        assert_eq!(fitted.selected_lags().len(), 10);
        assert_eq!(fitted.label(), "LR");
        for t in 140..160 {
            let p = fitted.predict(&v, t).unwrap();
            assert!((0.0..=24.0).contains(&p), "prediction {p} out of range");
        }
    }

    #[test]
    fn all_paper_models_fit() {
        let v = view();
        for model in ModelSpec::paper_suite() {
            let cfg = config_with(model);
            let fitted = FittedPredictor::fit(&v, &cfg, 0, 140)
                .unwrap_or_else(|e| panic!("{} failed: {e}", cfg.model.label()));
            let p = fitted.predict(&v, 150).unwrap();
            assert!((0.0..=24.0).contains(&p));
        }
    }

    #[test]
    fn baseline_lv_predicts_previous_slot() {
        let v = view();
        let cfg = config_with(ModelSpec::Baseline(BaselineSpec::LastValue));
        let fitted = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        let p = fitted.predict(&v, 141).unwrap();
        assert_eq!(p, v.slot(140).hours.clamp(0.0, 24.0));
        assert!(fitted.selected_lags().is_empty());
    }

    #[test]
    fn baseline_ma_averages_trailing_window() {
        let v = view();
        let cfg = config_with(ModelSpec::Baseline(BaselineSpec::MovingAverage(30)));
        let fitted = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        let p = fitted.predict(&v, 150).unwrap();
        let expect: f64 = v.hours_range(120, 150).iter().sum::<f64>() / 30.0;
        assert!((p - expect.clamp(0.0, 24.0)).abs() < 1e-12);
    }

    #[test]
    fn window_too_small_for_learned_model_errors() {
        let v = view();
        let cfg = config_with(ModelSpec::Learned(RegressorSpec::Linear));
        assert!(matches!(
            FittedPredictor::fit(&v, &cfg, 0, cfg.max_lag + 1),
            Err(vup_ml::MlError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn prediction_requires_history() {
        let v = view();
        let cfg = config_with(ModelSpec::Learned(RegressorSpec::Linear));
        let fitted = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        // Not enough lag history at slot 5.
        assert!(fitted.predict(&v, 5).is_err());
        // Beyond the series.
        assert!(fitted.predict(&v, v.len() + 1).is_err());
    }

    #[test]
    fn observed_fit_records_spans_without_changing_results() {
        let v = view();
        let cfg = config_with(ModelSpec::Learned(RegressorSpec::Linear));
        let registry = vup_obs::Registry::new();
        let timers = MlTimers::register(&registry);

        let plain = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        let observed = FittedPredictor::fit_observed(&v, &cfg, 0, 140, &timers).unwrap();
        assert_eq!(timers.fit_nanos.count(), 1);

        let a = plain.predict(&v, 150).unwrap();
        let b = observed.predict(&v, 150).unwrap();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "timing must not perturb predictions"
        );
        assert_eq!(timers.predict_nanos.count(), 1);
        // The un-observed predictor recorded nothing.
        assert_eq!(timers.fit_nanos.count(), 1);
    }

    #[test]
    fn saved_predictor_round_trips_bit_identically() {
        let v = view();
        // Every paper model plus RF must survive a save → JSON →
        // restore cycle with bit-identical predictions.
        let mut models = ModelSpec::paper_suite();
        models.push(ModelSpec::Learned(RegressorSpec::Forest(
            vup_ml::forest::ForestParams {
                n_trees: 5,
                ..vup_ml::forest::ForestParams::default()
            },
        )));
        for model in models {
            let cfg = config_with(model);
            let fitted = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
            let json = serde_json::to_string(&fitted.save()).unwrap();
            let saved: SavedPredictor = serde_json::from_str(&json).unwrap();
            assert_eq!(saved.config(), &cfg);
            let restored = saved.restore();
            assert_eq!(restored.selected_lags(), fitted.selected_lags());
            for t in 140..170 {
                assert_eq!(
                    restored.predict(&v, t).unwrap().to_bits(),
                    fitted.predict(&v, t).unwrap().to_bits(),
                    "{} diverged at slot {t}",
                    cfg.model.label()
                );
            }
        }
    }

    #[test]
    fn restore_observed_attaches_timers_without_changing_results() {
        let v = view();
        let cfg = config_with(ModelSpec::Learned(RegressorSpec::Linear));
        let fitted = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        let registry = vup_obs::Registry::new();
        let timers = MlTimers::register(&registry);
        let restored = fitted.save().restore_observed(&timers);
        assert_eq!(
            restored.predict(&v, 150).unwrap().to_bits(),
            fitted.predict(&v, 150).unwrap().to_bits()
        );
        assert_eq!(timers.predict_nanos.count(), 1);
    }

    #[test]
    fn selection_is_window_dependent() {
        // Fitting on different windows may (and for non-stationary series
        // usually does) select different lags; both must be valid.
        let v = view();
        let cfg = config_with(ModelSpec::Learned(RegressorSpec::Linear));
        let a = FittedPredictor::fit(&v, &cfg, 0, 140).unwrap();
        let b = FittedPredictor::fit(&v, &cfg, 200, 340).unwrap();
        for lags in [a.selected_lags(), b.selected_lags()] {
            assert_eq!(lags.len(), 10);
            assert!(lags.iter().all(|&l| (1..=30).contains(&l)));
        }
    }
}
