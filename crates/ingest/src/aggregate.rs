//! Incremental per-vehicle daily aggregation over the commit log.
//!
//! The batch pipeline regenerates a vehicle's whole history to build a
//! view; the streaming path cannot afford that. [`FleetAggregator`]
//! folds raw 10-minute reports into per-day buffers as they arrive and
//! *seals* a day once the log's watermark moves past it — running
//! [`vup_dataprep::aggregate::aggregate_day`] exactly once per
//! (vehicle, day) and appending the resulting [`DailyRecord`] to that
//! vehicle's shared history. Sealed days are immutable: a record for an
//! already-sealed day is counted as out-of-order and dropped, never
//! silently merged (re-aggregating would change slots that models were
//! already trained on).
//!
//! Sealing is a pure fold over the log: replaying any prefix of the
//! same log reproduces identical histories and identical
//! [`SealedSlot`] events, which is the foundation of the replay
//! determinism contract.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use vup_core::Scenario;
use vup_dataprep::aggregate::aggregate_day;
use vup_dataprep::cleaning::{clean_day, CleaningStats, ValidityRules};
use vup_fleetsim::calendar::Date;
use vup_fleetsim::canbus::RawReport;
use vup_fleetsim::generator::DailyRecord;

use crate::log::LogRecord;

/// Per-vehicle daily histories shared between the aggregator (writer)
/// and the serving path's `ViewSource` (reader). The lock is only held
/// for the duration of one day-seal or one view build.
pub type SharedHistories = Arc<RwLock<BTreeMap<u32, Vec<DailyRecord>>>>;

/// Emitted when a sealed day enters a vehicle's scenario series: the
/// day became slot `slot` of that vehicle's view.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedSlot {
    /// The vehicle whose series grew.
    pub vehicle_id: u32,
    /// Index of the new slot in the vehicle's scenario series.
    pub slot: usize,
    /// Absolute day index of the sealed day.
    pub day: i64,
    /// Utilization hours of the sealed day (the target variable).
    pub hours: f64,
}

/// Folds log records into sealed per-vehicle daily histories.
pub struct FleetAggregator {
    /// First day of the observation period (days before it are never
    /// sealed).
    start_day: i64,
    scenario: Scenario,
    /// Highest day seen in any record.
    watermark: i64,
    /// Last sealed day (`start_day - 1` when nothing is sealed yet).
    sealed_through: i64,
    /// Unsealed raw reports, keyed by (day, vehicle) so sealing walks
    /// days in order and vehicles deterministically within a day.
    buffers: BTreeMap<(i64, u32), Vec<RawReport>>,
    histories: SharedHistories,
    /// Scenario-slot counts per known vehicle. Presence in this map is
    /// what makes a vehicle *known*: sealing emits a (possibly idle)
    /// record for every known vehicle every day.
    slot_counts: BTreeMap<u32, usize>,
    /// Records rejected because their day was already sealed.
    out_of_order: u64,
    /// Days sealed so far (capped by the watermark, not per vehicle).
    days_sealed: u64,
    /// Cleaning rules applied to each day's reports before aggregation
    /// (same defaults as the batch pipeline).
    rules: ValidityRules,
    /// Aggregate cleaning statistics over all sealed days.
    cleaning: CleaningStats,
}

impl FleetAggregator {
    /// A fresh aggregator sealing days from `start_day` on.
    pub fn new(start_day: i64, scenario: Scenario) -> FleetAggregator {
        FleetAggregator {
            start_day,
            scenario,
            watermark: start_day - 1,
            sealed_through: start_day - 1,
            buffers: BTreeMap::new(),
            histories: Arc::new(RwLock::new(BTreeMap::new())),
            slot_counts: BTreeMap::new(),
            out_of_order: 0,
            days_sealed: 0,
            rules: ValidityRules::default(),
            cleaning: CleaningStats::default(),
        }
    }

    /// Handle to the shared histories (for a `ViewSource`).
    pub fn histories(&self) -> SharedHistories {
        Arc::clone(&self.histories)
    }

    /// Folds one record in. Advancing the watermark past a day seals
    /// it for every known vehicle; the returned events list each
    /// sealed day that entered a vehicle's scenario series (empty for
    /// most records — days seal only at day boundaries).
    pub fn observe(&mut self, record: &LogRecord) -> Vec<SealedSlot> {
        let day = record.report.day;
        if day <= self.sealed_through || day < self.start_day {
            self.out_of_order += 1;
            return Vec::new();
        }
        self.register_vehicle(record.vehicle_id);
        let events = if day - 1 > self.sealed_through {
            self.seal_through(day - 1)
        } else {
            Vec::new()
        };
        self.buffers
            .entry((day, record.vehicle_id))
            .or_default()
            .push(record.report.clone());
        if day > self.watermark {
            self.watermark = day;
        }
        events
    }

    /// Seals everything up to and including the watermark. Call at the
    /// end of a replay so the final (partial) day is not lost.
    pub fn seal_all(&mut self) -> Vec<SealedSlot> {
        self.seal_through(self.watermark)
    }

    /// Seals every day up to and including `through` for every known
    /// vehicle, in (day, vehicle) order.
    fn seal_through(&mut self, through: i64) -> Vec<SealedSlot> {
        let mut events = Vec::new();
        while self.sealed_through < through {
            let day = self.sealed_through + 1;
            let vehicles: Vec<u32> = self.slot_counts.keys().copied().collect();
            for vehicle in vehicles {
                let reports = self.buffers.remove(&(day, vehicle)).unwrap_or_default();
                // Same cleaning step the batch pipeline applies to the
                // raw stream, so streaming and batch aggregates agree.
                let (clean, stats) = clean_day(reports, &self.rules);
                self.cleaning.duplicates_removed += stats.duplicates_removed;
                self.cleaning.glitches_nulled += stats.glitches_nulled;
                self.cleaning.values_imputed += stats.values_imputed;
                let record = aggregate_day(Date::from_day_index(day), &clean);
                let included = self.scenario.includes(record.hours);
                let hours = record.hours;
                self.histories
                    .write()
                    .expect("histories lock")
                    .entry(vehicle)
                    .or_default()
                    .push(record);
                if included {
                    let slot = self.slot_counts.get_mut(&vehicle).expect("known vehicle");
                    events.push(SealedSlot {
                        vehicle_id: vehicle,
                        slot: *slot,
                        day,
                        hours,
                    });
                    *slot += 1;
                }
            }
            self.sealed_through = day;
            self.days_sealed += 1;
        }
        events
    }

    /// Makes a vehicle known, backfilling idle records for every
    /// already-sealed day so its history stays aligned with the rest of
    /// the fleet. Backfilled days count slots but emit no events (there
    /// is nothing to retrain on yet).
    fn register_vehicle(&mut self, vehicle: u32) {
        if self.slot_counts.contains_key(&vehicle) {
            return;
        }
        let mut slots = 0usize;
        let mut backfill = Vec::new();
        for day in self.start_day..=self.sealed_through {
            let record = aggregate_day(Date::from_day_index(day), &[]);
            if self.scenario.includes(record.hours) {
                slots += 1;
            }
            backfill.push(record);
        }
        if !backfill.is_empty() {
            self.histories
                .write()
                .expect("histories lock")
                .insert(vehicle, backfill);
        }
        self.slot_counts.insert(vehicle, slots);
    }

    /// Scenario-slot count of a vehicle (0 when unknown).
    pub fn slots_of(&self, vehicle: u32) -> usize {
        self.slot_counts.get(&vehicle).copied().unwrap_or(0)
    }

    /// Vehicles seen so far.
    pub fn vehicles_known(&self) -> usize {
        self.slot_counts.len()
    }

    /// Records rejected because their day was already sealed.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Days sealed so far.
    pub fn days_sealed(&self) -> u64 {
        self.days_sealed
    }

    /// The last sealed day (`start_day - 1` when nothing sealed yet).
    pub fn sealed_through(&self) -> i64 {
        self.sealed_through
    }

    /// Aggregate cleaning statistics over all sealed days.
    pub fn cleaning(&self) -> &CleaningStats {
        &self.cleaning
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_dataprep::pipeline::prepare_vehicle_days;
    use vup_fleetsim::dropout::DropoutConfig;
    use vup_fleetsim::fleet::{Fleet, FleetConfig};
    use vup_fleetsim::generator::generate_day_raw_reports;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::small(3, 1234))
    }

    /// Streams `days` days of the fleet day-major into the aggregator,
    /// exactly as a log replay would deliver them.
    fn stream_days(fleet: &Fleet, agg: &mut FleetAggregator, days: usize, dropout: &DropoutConfig) {
        let mut offset = 0u64;
        for d in 0..days {
            let date = fleet.config().start.plus_days(d as i64);
            for vehicle in fleet.vehicles() {
                for report in generate_day_raw_reports(fleet, vehicle.id, date, dropout) {
                    agg.observe(&LogRecord {
                        offset,
                        vehicle_id: vehicle.id.0,
                        report,
                    });
                    offset += 1;
                }
            }
        }
        agg.seal_all();
    }

    #[test]
    fn streaming_aggregation_matches_the_batch_pipeline() {
        let fleet = fleet();
        let days = 30;
        let dropout = DropoutConfig::default();
        let mut agg = FleetAggregator::new(fleet.config().start.day_index(), Scenario::NextDay);
        stream_days(&fleet, &mut agg, days, &dropout);

        let histories = agg.histories();
        let histories = histories.read().unwrap();
        // A vehicle idle for the whole window sends nothing and stays
        // unknown — that is correct; everyone else must match batch.
        assert!(histories.len() >= 2, "most vehicles should have reported");
        for (&vehicle_id, streamed) in histories.iter() {
            let batch = prepare_vehicle_days(
                &fleet,
                vup_fleetsim::fleet::VehicleId(vehicle_id),
                fleet.config().start,
                days,
                &dropout,
            )
            .unwrap();
            // The stream can end in silent (idle) days the watermark
            // never passes; everything sealed must match bit for bit.
            assert!(streamed.len() >= days - 7, "too few sealed days");
            assert_eq!(streamed.as_slice(), &batch.records[..streamed.len()]);
        }
    }

    #[test]
    fn out_of_order_records_for_sealed_days_are_rejected_not_merged() {
        let fleet = fleet();
        let start = fleet.config().start;
        let mut agg = FleetAggregator::new(start.day_index(), Scenario::NextDay);
        stream_days(&fleet, &mut agg, 5, &DropoutConfig::none());
        let vehicle = *agg
            .histories()
            .read()
            .unwrap()
            .keys()
            .next()
            .expect("some vehicle reported");
        let before: Vec<DailyRecord> = agg.histories().read().unwrap()[&vehicle].clone();
        assert_eq!(agg.out_of_order(), 0);

        // A record for an already-sealed day must bounce. (Scan the
        // streamed days for one where this vehicle actually reported.)
        let stale = (0..5)
            .find_map(|d| {
                generate_day_raw_reports(
                    &fleet,
                    vup_fleetsim::fleet::VehicleId(vehicle),
                    start.plus_days(d),
                    &DropoutConfig::none(),
                )
                .into_iter()
                .next()
            })
            .expect("vehicle reported at least once");
        let events = agg.observe(&LogRecord {
            offset: 999_999,
            vehicle_id: vehicle,
            report: stale,
        });
        assert!(events.is_empty());
        assert_eq!(agg.out_of_order(), 1);
        assert_eq!(agg.histories().read().unwrap()[&vehicle], before);
    }

    #[test]
    fn late_first_report_backfills_idle_days_for_alignment() {
        let start = 17000i64;
        let mut agg = FleetAggregator::new(start, Scenario::NextDay);
        let mk = |offset: u64, vehicle: u32, day: i64| LogRecord {
            offset,
            vehicle_id: vehicle,
            report: RawReport {
                day,
                minute: 480,
                engine_on: true,
                fuel_level_pct: Some(50.0),
                engine_rpm: Some(1200.0),
                oil_pressure_kpa: Some(300.0),
                coolant_temp_c: Some(80.0),
                fuel_rate_lph: Some(8.0),
                speed_kmh: Some(10.0),
                load_pct: Some(40.0),
                digging_pressure_kpa: None,
                pump_drive_temp_c: Some(60.0),
                oil_tank_temp_c: Some(50.0),
            },
        };
        // Vehicle 0 reports from day 0; vehicle 9 first appears on day 3.
        for (i, day) in (0..4).enumerate() {
            agg.observe(&mk(i as u64, 0, start + day));
        }
        agg.observe(&mk(99, 9, start + 3));
        agg.seal_all();
        let histories = agg.histories();
        let histories = histories.read().unwrap();
        assert_eq!(histories[&0].len(), 4);
        let late = &histories[&9];
        // Backfilled days are idle; the reported day carries hours.
        assert_eq!(late.len(), 4);
        assert!(late[..3].iter().all(|r| r.hours == 0.0));
        assert!(late[3].hours > 0.0);
        // Day indices align across vehicles.
        for (a, b) in histories[&0].iter().zip(late.iter()) {
            assert_eq!(a.day, b.day);
        }
    }

    #[test]
    fn next_working_day_scenario_emits_slots_only_for_working_days() {
        let fleet = fleet();
        let mut agg =
            FleetAggregator::new(fleet.config().start.day_index(), Scenario::NextWorkingDay);
        let mut events = Vec::new();
        let mut offset = 0u64;
        for d in 0..21 {
            let date = fleet.config().start.plus_days(d as i64);
            for vehicle in fleet.vehicles() {
                for report in
                    generate_day_raw_reports(&fleet, vehicle.id, date, &DropoutConfig::none())
                {
                    events.extend(agg.observe(&LogRecord {
                        offset,
                        vehicle_id: vehicle.id.0,
                        report,
                    }));
                    offset += 1;
                }
            }
        }
        events.extend(agg.seal_all());
        assert!(!events.is_empty());
        for event in &events {
            assert!(event.hours >= vup_core::scenario::WORKING_DAY_THRESHOLD);
        }
        // Slot indices per vehicle are contiguous from zero.
        let mut next: BTreeMap<u32, usize> = BTreeMap::new();
        for event in &events {
            let n = next.entry(event.vehicle_id).or_default();
            assert_eq!(event.slot, *n);
            *n += 1;
        }
    }
}
