//! Figure 6 — predicted vs actual utilization series for one unit.
//!
//! Reproduces both panels: the next-day series (6a, idle days make the
//! prediction hard) and the next-working-day series (6b, the filtered
//! problem is visibly easier), printed day by day for the final stretch
//! of the unit's history.
//!
//! Run with: `cargo run --release -p vup-bench --bin fig6_series`

use vup_bench::{bar, experiment_fleet, write_json};
use vup_core::evaluate::evaluate_vehicle;
use vup_core::report::SeriesPoint;
use vup_core::{PipelineConfig, Scenario, VehicleView};
use vup_fleetsim::calendar::Date;
use vup_fleetsim::{generator, VehicleType};
use vup_ml::metrics;

const SHOWN_DAYS: usize = 45;

fn main() {
    let fleet = experiment_fleet();
    let unit = fleet
        .of_type(VehicleType::RefuseCompactor)
        .find(|v| {
            let h = generator::generate_history(&fleet, v.id);
            h.utilization_rate() > 0.4
        })
        .expect("busy compactor exists");
    println!(
        "Fig. 6: predicted vs actual for unit {} ({})\n",
        unit.id.0,
        unit.vtype.name()
    );

    let mut output = Vec::new();
    for scenario in Scenario::ALL {
        let cfg = PipelineConfig {
            scenario,
            retrain_every: 7,
            eval_tail: Some(240),
            ..PipelineConfig::default()
        };
        let view = VehicleView::build(&fleet, unit.id, scenario);
        let eval = evaluate_vehicle(&view, &cfg).expect("unit evaluable");
        let tail = &eval.points[eval.points.len().saturating_sub(SHOWN_DAYS)..];

        println!(
            "== Fig. 6{}: scenario {} (PE over evaluated period: {:.1}%) ==\n",
            if scenario == Scenario::NextDay {
                "a"
            } else {
                "b"
            },
            scenario.label(),
            eval.percentage_error
        );
        println!(
            "{:<12} {:>8} {:>8}   actual vs predicted",
            "date", "actual", "pred"
        );
        let series: Vec<SeriesPoint> = tail
            .iter()
            .map(|p| {
                let date = Date::from_day_index(p.day);
                println!(
                    "{:<12} {:>7.2}h {:>7.2}h   |{:<12}|{:<12}",
                    date.to_string(),
                    p.actual,
                    p.predicted,
                    bar(p.actual, 12.0, 12),
                    bar(p.predicted, 12.0, 12),
                );
                SeriesPoint {
                    day: p.day,
                    date: date.to_string(),
                    actual: p.actual,
                    predicted: p.predicted,
                }
            })
            .collect();
        let actual: Vec<f64> = tail.iter().map(|p| p.actual).collect();
        let pred: Vec<f64> = tail.iter().map(|p| p.predicted).collect();
        println!(
            "\nShown stretch: MAE {:.2} h over {} days\n",
            metrics::mae(&pred, &actual).expect("non-empty"),
            tail.len()
        );
        output.push((scenario.label().to_owned(), eval.percentage_error, series));
    }

    println!("Paper shape check: the next-working-day curve tracks the actual series much more");
    println!("closely; next-day errors concentrate on the randomly-present idle days.");

    let path = write_json("fig6_series", &output);
    println!("\nFull data written to {}", path.display());
}
