//! Top-level dataset builders.
//!
//! Two generation paths serve different fidelity/scale trade-offs:
//!
//! - **daily path** ([`generate_history`]): produces one [`DailyRecord`]
//!   per observed day — utilization hours plus already-aggregated CAN
//!   channels. This is what the fleet-wide experiments consume (2 239
//!   vehicles × ~1 369 days ≈ 3 M records is comfortably in memory);
//! - **10-minute path** ([`generate_day_raw_reports`]): synthesizes the
//!   raw 10-minute report stream of a single day, optionally corrupted by
//!   the [`crate::dropout`] model. `vup-dataprep` runs its cleaning /
//!   aggregation pipeline on this stream and must recover the daily
//!   records the fast path emits.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::calendar::Date;
use crate::canbus::{self, RawReport, TankState};
use crate::dropout::{self, DropoutConfig};
use crate::fleet::{Fleet, Vehicle, VehicleId};
use crate::usage::UnitUsageModel;

/// Daily aggregated CAN channels (all zero / `None`-like on idle days,
/// when the engine never starts and no reports are uploaded).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DailyCan {
    /// Total fuel burned over the day, litres.
    pub fuel_used_l: f64,
    /// Fuel level at the end of the day, percent.
    pub fuel_level_end_pct: f64,
    /// Mean engine speed while running, rpm.
    pub avg_rpm: f64,
    /// Mean oil pressure, kPa.
    pub avg_oil_pressure_kpa: f64,
    /// Mean coolant temperature, °C.
    pub avg_coolant_temp_c: f64,
    /// Mean ground speed, km/h.
    pub avg_speed_kmh: f64,
    /// Mean engine percent load.
    pub avg_load_pct: f64,
    /// Mean digging pressure, kPa (zero when the channel is not fitted).
    pub avg_digging_pressure_kpa: f64,
    /// Mean pump-drive temperature, °C.
    pub avg_pump_temp_c: f64,
    /// Mean hydraulic-oil tank temperature, °C.
    pub avg_oil_tank_temp_c: f64,
}

/// One observed day of one vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyRecord {
    /// Absolute day index (days since 1970-01-01).
    pub day: i64,
    /// Calendar date of the record.
    pub date: Date,
    /// Daily utilization hours (0 on idle days).
    pub hours: f64,
    /// Aggregated CAN channels.
    pub can: DailyCan,
}

/// The full observed history of one vehicle on the daily path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleHistory {
    /// Roster entry of the vehicle.
    pub vehicle: Vehicle,
    /// One record per day, contiguous from the fleet start date.
    pub records: Vec<DailyRecord>,
}

impl VehicleHistory {
    /// The utilization-hours series in day order.
    pub fn hours_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.hours).collect()
    }

    /// Absolute day index of the first record.
    pub fn start_day(&self) -> i64 {
        self.records.first().map(|r| r.day).unwrap_or(0)
    }

    /// Fraction of days with any usage.
    pub fn utilization_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.hours > 0.0).count() as f64 / self.records.len() as f64
    }
}

/// Generates a vehicle's full daily history (fast path).
///
/// Deterministic in `(fleet.config().seed, id)`; independent of the order
/// in which vehicles are generated.
pub fn generate_history(fleet: &Fleet, id: VehicleId) -> VehicleHistory {
    let vehicle = fleet
        .vehicle(id)
        .unwrap_or_else(|| panic!("vehicle {id:?} not in fleet"))
        .clone();
    let country = fleet.country_of(&vehicle);
    let cfg = fleet.config();
    let n_days = cfg.n_days();
    let model =
        UnitUsageModel::with_weather(cfg.seed, &vehicle, country, n_days, cfg.weather_effects);
    let hours = model.generate_hours(country, cfg.start, n_days);

    // CAN-channel synthesis with its own deterministic stream.
    let mut rng = StdRng::seed_from_u64(
        cfg.seed ^ (0xC0FFEE ^ u64::from(id.0)).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let noise = Normal::new(0.0, 1.0).expect("unit normal");
    let profile = vehicle.vtype.profile();
    let hemisphere = country.hemisphere;
    let mut tank = TankState::new(&profile);

    let mut records = Vec::with_capacity(n_days);
    for (i, &h) in hours.iter().enumerate() {
        let date = cfg.start.plus_days(i as i64);
        let can = if h > 0.0 {
            let ambient = canbus::ambient_temp_c(date, hemisphere);
            // Work *intensity* (how hard the machine runs) is a separate
            // latent from *duration* (how long): a short but heavy digging
            // day exists, and so does a long light-transport day. Keeping
            // the two only weakly coupled prevents the thermal/load
            // channels from being near-copies of the hours signal — which
            // would make the lagged feature matrix pathologically
            // collinear for linear models.
            let intensity = (0.55
                + 0.25 * (h / profile.median_active_hours).min(2.0) * 0.3
                + 0.35 * rng.random::<f64>())
            .clamp(0.1, 1.2);
            let load = (25.0 + 60.0 * intensity + 5.0 * noise.sample(&mut rng)).clamp(2.0, 100.0);
            let rpm = 950.0 + 900.0 * (load / 100.0) + 40.0 * noise.sample(&mut rng);
            let fuel_rate = profile.fuel_rate_lph * (0.4 + 0.8 * load / 100.0);
            let fuel_used = fuel_rate * h * (1.0 + 0.05 * noise.sample(&mut rng));
            tank.consume(fuel_used.max(0.0), &mut rng);
            DailyCan {
                fuel_used_l: fuel_used.max(0.0),
                fuel_level_end_pct: (tank.level_frac * 100.0).clamp(0.0, 100.0),
                avg_rpm: rpm.max(600.0),
                avg_oil_pressure_kpa: 280.0 + 90.0 * (rpm / 2000.0) + 6.0 * noise.sample(&mut rng),
                avg_coolant_temp_c: 76.0
                    + 12.0 * intensity
                    + 0.25 * ambient
                    + 1.5 * noise.sample(&mut rng),
                avg_speed_kmh: (3.0 + 9.0 * intensity + 1.0 * noise.sample(&mut rng)).max(0.0),
                avg_load_pct: load,
                avg_digging_pressure_kpa: if vehicle.vtype.has_digging_pressure() {
                    (4000.0 + 4500.0 * intensity + 250.0 * noise.sample(&mut rng)).max(0.0)
                } else {
                    0.0
                },
                avg_pump_temp_c: 40.0 + 28.0 * intensity + 0.3 * ambient + noise.sample(&mut rng),
                avg_oil_tank_temp_c: 36.0
                    + 22.0 * intensity
                    + 0.3 * ambient
                    + noise.sample(&mut rng),
            }
        } else {
            DailyCan::default()
        };
        records.push(DailyRecord {
            day: date.day_index(),
            date,
            hours: h,
            can,
        });
    }
    VehicleHistory { vehicle, records }
}

/// Generates daily histories for a slice of the fleet (by id order).
pub fn generate_histories(fleet: &Fleet, ids: &[VehicleId]) -> Vec<VehicleHistory> {
    ids.iter().map(|&id| generate_history(fleet, id)).collect()
}

/// Synthesizes the *raw 10-minute report stream* of one day of one vehicle
/// (full-fidelity path), then passes it through the dropout model.
///
/// The clean stream encodes the same utilization hours the daily path
/// reports for that day, so aggregation over these reports must recover
/// the [`DailyRecord`] within one report interval of accuracy.
pub fn generate_day_raw_reports(
    fleet: &Fleet,
    id: VehicleId,
    date: Date,
    dropout_cfg: &DropoutConfig,
) -> Vec<RawReport> {
    generate_day_raw_reports_scaled(fleet, id, date, dropout_cfg, 1.0)
}

/// [`generate_day_raw_reports`] with the day's utilization hours
/// multiplied by `hours_scale` (clamped into `[0, 24]`) before the
/// report stream is synthesized. `vup-ingest` uses this to inject a
/// usage-pattern shift mid-stream and exercise drift-triggered
/// retraining; a scale of `1.0` is bit-identical to the unscaled path
/// (the RNG stream does not depend on the scale).
pub fn generate_day_raw_reports_scaled(
    fleet: &Fleet,
    id: VehicleId,
    date: Date,
    dropout_cfg: &DropoutConfig,
    hours_scale: f64,
) -> Vec<RawReport> {
    let vehicle = fleet
        .vehicle(id)
        .unwrap_or_else(|| panic!("vehicle {id:?} not in fleet"));
    let country = fleet.country_of(vehicle);
    let cfg = fleet.config();
    let offset = date.day_index() - cfg.start.day_index();
    assert!(
        offset >= 0 && (offset as usize) < cfg.n_days(),
        "date {date} outside the fleet observation period"
    );
    let n_days = cfg.n_days();
    let model =
        UnitUsageModel::with_weather(cfg.seed, vehicle, country, n_days, cfg.weather_effects);
    let hours = model.generate_hours(country, cfg.start, offset as usize + 1);
    let h = (*hours.last().expect("offset in range") * hours_scale).clamp(0.0, 24.0);

    let profile = vehicle.vtype.profile();
    let mut rng = StdRng::seed_from_u64(
        cfg.seed
            ^ (u64::from(id.0) << 20)
            ^ (date.day_index() as u64).wrapping_mul(0x9E3779B97F4A7C15),
    );
    let mut tank = TankState::new(&profile);
    let clean = canbus::day_reports(
        &profile,
        vehicle.vtype.has_digging_pressure(),
        date,
        h,
        country.hemisphere,
        &mut tank,
        1.0,
        &mut rng,
    );
    dropout::apply(clean, dropout_cfg, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;

    fn small_fleet() -> Fleet {
        Fleet::generate(FleetConfig::small(30, 99))
    }

    #[test]
    fn history_is_deterministic_and_covers_period() {
        let fleet = small_fleet();
        let a = generate_history(&fleet, VehicleId(5));
        let b = generate_history(&fleet, VehicleId(5));
        assert_eq!(a, b);
        assert_eq!(a.records.len(), fleet.config().n_days());
        assert_eq!(a.start_day(), fleet.config().start.day_index());
        // Days are contiguous.
        for w in a.records.windows(2) {
            assert_eq!(w[1].day, w[0].day + 1);
        }
    }

    #[test]
    fn idle_days_have_zero_can_activity() {
        let fleet = small_fleet();
        let h = generate_history(&fleet, VehicleId(0));
        for r in &h.records {
            if r.hours == 0.0 {
                assert_eq!(r.can.fuel_used_l, 0.0);
                assert_eq!(r.can.avg_rpm, 0.0);
                assert_eq!(r.can.avg_load_pct, 0.0);
            } else {
                assert!(r.can.fuel_used_l > 0.0);
                assert!(r.can.avg_rpm >= 600.0);
            }
        }
    }

    #[test]
    fn fuel_use_correlates_with_hours() {
        let fleet = small_fleet();
        let h = generate_history(&fleet, VehicleId(2));
        let active: Vec<&DailyRecord> = h.records.iter().filter(|r| r.hours > 0.0).collect();
        assert!(active.len() > 30);
        // Pearson correlation between hours and fuel burn must be strong.
        let n = active.len() as f64;
        let mh = active.iter().map(|r| r.hours).sum::<f64>() / n;
        let mf = active.iter().map(|r| r.can.fuel_used_l).sum::<f64>() / n;
        let mut num = 0.0;
        let mut dh = 0.0;
        let mut df = 0.0;
        for r in &active {
            num += (r.hours - mh) * (r.can.fuel_used_l - mf);
            dh += (r.hours - mh) * (r.hours - mh);
            df += (r.can.fuel_used_l - mf) * (r.can.fuel_used_l - mf);
        }
        let corr = num / (dh.sqrt() * df.sqrt());
        assert!(corr > 0.9, "corr = {corr}");
    }

    #[test]
    fn utilization_rate_is_sensible() {
        let fleet = small_fleet();
        for id in 0..10 {
            let h = generate_history(&fleet, VehicleId(id));
            let rate = h.utilization_rate();
            assert!((0.02..0.9).contains(&rate), "rate {rate}");
        }
    }

    #[test]
    fn raw_reports_match_daily_hours() {
        let fleet = small_fleet();
        let id = VehicleId(7);
        let history = generate_history(&fleet, id);
        // Find a working day and check the report count encodes its hours.
        let day = history
            .records
            .iter()
            .find(|r| r.hours > 2.0)
            .expect("some working day");
        let reports = generate_day_raw_reports(&fleet, id, day.date, &DropoutConfig::none());
        let recovered = reports.len() as f64 / 6.0;
        assert!(
            (recovered - day.hours).abs() <= 0.4,
            "recovered {recovered} vs actual {}",
            day.hours
        );
    }

    #[test]
    fn raw_reports_for_idle_day_are_empty() {
        let fleet = small_fleet();
        let id = VehicleId(7);
        let history = generate_history(&fleet, id);
        let day = history
            .records
            .iter()
            .find(|r| r.hours == 0.0)
            .expect("some idle day");
        let reports = generate_day_raw_reports(&fleet, id, day.date, &DropoutConfig::none());
        assert!(reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the fleet observation period")]
    fn raw_reports_reject_out_of_range_dates() {
        let fleet = small_fleet();
        generate_day_raw_reports(
            &fleet,
            VehicleId(0),
            Date::new(2014, 12, 31).unwrap(),
            &DropoutConfig::none(),
        );
    }

    #[test]
    fn batch_generation_matches_individual() {
        let fleet = small_fleet();
        let ids = [VehicleId(1), VehicleId(3)];
        let batch = generate_histories(&fleet, &ids);
        assert_eq!(batch[0], generate_history(&fleet, VehicleId(1)));
        assert_eq!(batch[1], generate_history(&fleet, VehicleId(3)));
    }
}
