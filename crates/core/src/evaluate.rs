//! Hold-out evaluation of one vehicle (paper §4.1).
//!
//! Implements the six-step procedure: slide (or expand) the training
//! window over the period, retrain per slide, predict the next (working)
//! day, and average the Percentage Error over the evaluated days. The
//! `retrain_every` knob amortizes retraining over several slides — the
//! paper retrains every slide (`retrain_every = 1`), which is the
//! faithful-but-slow setting.

use vup_ml::instrument::MlTimers;
use vup_ml::metrics;

use crate::config::{PipelineConfig, Strategy};
use crate::predictor::FittedPredictor;
use crate::view::VehicleView;

/// One evaluated day.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionPoint {
    /// Slot index within the scenario series.
    pub slot: usize,
    /// Absolute day index of the predicted day.
    pub day: i64,
    /// Actual utilization hours.
    pub actual: f64,
    /// Predicted utilization hours.
    pub predicted: f64,
}

/// Evaluation result of one vehicle under one configuration.
#[derive(Debug, Clone)]
pub struct VehicleEvaluation {
    /// The vehicle id (copied from the view).
    pub vehicle_id: u32,
    /// Every evaluated day in slot order.
    pub points: Vec<PredictionPoint>,
    /// The paper's Percentage Error over all evaluated days.
    pub percentage_error: f64,
    /// Mean absolute error in hours.
    pub mae: f64,
    /// Number of model retrainings performed.
    pub retrain_count: usize,
}

/// First slot that can be evaluated under `config` (enough history for
/// one full training window plus lag history).
pub fn first_evaluable_slot(config: &PipelineConfig) -> usize {
    config.train_window
}

/// Evaluates one vehicle over its whole usable period.
///
/// Steps (paper §4.1): for each target slot from the end of the first
/// training window to the end of the series, (re)train on the preceding
/// window (fixed-size for [`Strategy::Sliding`], all history for
/// [`Strategy::Expanding`]), predict the target slot, and aggregate the
/// per-day errors into the vehicle's PE.
pub fn evaluate_vehicle(
    view: &VehicleView,
    config: &PipelineConfig,
) -> crate::Result<VehicleEvaluation> {
    evaluate_vehicle_observed(view, config, &MlTimers::disabled())
}

/// [`evaluate_vehicle`] with fit/predict timing recorded into `timers`.
///
/// The timers are a write-only side channel: results are bit-identical
/// to [`evaluate_vehicle`]'s, and with disabled timers no clock is read.
pub fn evaluate_vehicle_observed(
    view: &VehicleView,
    config: &PipelineConfig,
    timers: &MlTimers,
) -> crate::Result<VehicleEvaluation> {
    config.validate()?;
    let mut start = first_evaluable_slot(config);
    if view.len() <= start + 1 {
        return Err(vup_ml::MlError::NotEnoughSamples {
            required: start + 2,
            actual: view.len(),
        });
    }
    if let Some(tail) = config.eval_tail {
        start = start.max(view.len().saturating_sub(tail));
    }

    let mut points = Vec::with_capacity(view.len() - start);
    let mut fitted: Option<FittedPredictor> = None;
    let mut retrain_count = 0usize;
    // One arena for the whole evaluation: consecutive retrains slide the
    // window by `retrain_every`, so most design-matrix rows are recovered
    // by copy instead of re-extracted from the view.
    let mut arena = vup_ml::TrainArena::new();

    for target in start..view.len() {
        let needs_retrain =
            fitted.is_none() || (target - start).is_multiple_of(config.retrain_every);
        if needs_retrain {
            let (train_from, train_to) = match config.strategy {
                Strategy::Sliding => (target - config.train_window, target),
                Strategy::Expanding => (0, target),
            };
            fitted = Some(FittedPredictor::fit_arena_observed(
                view, config, train_from, train_to, timers, &mut arena,
            )?);
            retrain_count += 1;
        }
        let model = fitted.as_ref().expect("fitted above");
        let predicted = model.predict(view, target)?;
        points.push(PredictionPoint {
            slot: target,
            day: view.slot(target).day,
            actual: view.slot(target).hours,
            predicted,
        });
    }

    let actual: Vec<f64> = points.iter().map(|p| p.actual).collect();
    let predicted: Vec<f64> = points.iter().map(|p| p.predicted).collect();
    let percentage_error = metrics::percentage_error(&predicted, &actual)?;
    let mae = metrics::mae(&predicted, &actual)?;
    Ok(VehicleEvaluation {
        vehicle_id: view.vehicle_id.0,
        points,
        percentage_error,
        mae,
        retrain_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelSpec;
    use crate::scenario::Scenario;
    use vup_fleetsim::fleet::{Fleet, FleetConfig, VehicleId};
    use vup_ml::baseline::BaselineSpec;
    use vup_ml::RegressorSpec;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::small(5, 808))
    }

    fn fast_config(model: ModelSpec) -> PipelineConfig {
        PipelineConfig {
            model,
            train_window: 120,
            max_lag: 30,
            k: 10,
            retrain_every: 30,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn evaluation_covers_the_period_after_the_first_window() {
        let view = VehicleView::build(&fleet(), VehicleId(0), Scenario::NextWorkingDay);
        let cfg = fast_config(ModelSpec::Learned(RegressorSpec::Linear));
        let eval = evaluate_vehicle(&view, &cfg).unwrap();
        assert_eq!(eval.points.len(), view.len() - cfg.train_window);
        assert_eq!(eval.points[0].slot, cfg.train_window);
        assert!(eval.percentage_error.is_finite());
        assert!(eval.mae >= 0.0);
        // Retrained roughly every `retrain_every` slots.
        let expected = eval.points.len().div_ceil(cfg.retrain_every);
        assert_eq!(eval.retrain_count, expected);
    }

    #[test]
    fn learned_model_beats_last_value_baseline() {
        // On the working-day series, LV is a weak predictor; LR with
        // selected lags and calendar features must do better.
        let view = VehicleView::build(&fleet(), VehicleId(1), Scenario::NextWorkingDay);
        let lr = evaluate_vehicle(
            &view,
            &fast_config(ModelSpec::Learned(RegressorSpec::Linear)),
        )
        .unwrap();
        let lv = evaluate_vehicle(
            &view,
            &fast_config(ModelSpec::Baseline(BaselineSpec::LastValue)),
        )
        .unwrap();
        assert!(
            lr.percentage_error < lv.percentage_error,
            "LR {:.1}% should beat LV {:.1}%",
            lr.percentage_error,
            lv.percentage_error
        );
    }

    #[test]
    fn next_working_day_is_easier_than_next_day() {
        // The paper's headline contrast (Fig. 5): filtering idle days
        // roughly halves the error.
        let fleet = fleet();
        let cfg = fast_config(ModelSpec::Learned(RegressorSpec::Linear));
        let mut nd_cfg = cfg.clone();
        nd_cfg.scenario = Scenario::NextDay;

        let mut ratio_sum = 0.0;
        let mut n = 0;
        for id in 0..3 {
            let nwd_view = VehicleView::build(&fleet, VehicleId(id), Scenario::NextWorkingDay);
            let nd_view = VehicleView::build(&fleet, VehicleId(id), Scenario::NextDay);
            let nwd = evaluate_vehicle(&nwd_view, &cfg).unwrap();
            let nd = evaluate_vehicle(&nd_view, &nd_cfg).unwrap();
            ratio_sum += nd.percentage_error / nwd.percentage_error;
            n += 1;
        }
        let mean_ratio = ratio_sum / n as f64;
        assert!(
            mean_ratio > 1.3,
            "next-day error should clearly exceed next-working-day (ratio {mean_ratio:.2})"
        );
    }

    #[test]
    fn expanding_window_evaluates_like_sliding() {
        let view = VehicleView::build(&fleet(), VehicleId(2), Scenario::NextWorkingDay);
        let mut cfg = fast_config(ModelSpec::Learned(RegressorSpec::Linear));
        cfg.strategy = Strategy::Expanding;
        let eval = evaluate_vehicle(&view, &cfg).unwrap();
        assert_eq!(eval.points.len(), view.len() - cfg.train_window);
        assert!(eval.percentage_error.is_finite());
    }

    #[test]
    fn too_short_series_is_rejected() {
        // A config whose first evaluable slot exceeds the series length.
        let view = VehicleView::build(&fleet(), VehicleId(3), Scenario::NextWorkingDay);
        let mut cfg = fast_config(ModelSpec::Learned(RegressorSpec::Linear));
        cfg.train_window = view.len() + 10;
        assert!(matches!(
            evaluate_vehicle(&view, &cfg),
            Err(vup_ml::MlError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn predictions_respect_physical_bounds() {
        let view = VehicleView::build(&fleet(), VehicleId(4), Scenario::NextDay);
        let mut cfg = fast_config(ModelSpec::Learned(RegressorSpec::Linear));
        cfg.scenario = Scenario::NextDay;
        let eval = evaluate_vehicle(&view, &cfg).unwrap();
        for p in &eval.points {
            assert!((0.0..=24.0).contains(&p.predicted));
        }
    }
}
