//! vup-net — std-only network serving for the prediction service.
//!
//! A hand-rolled HTTP/1.1 daemon over [`std::net::TcpListener`] that
//! fronts [`vup_serve::PredictionService`] without adding a single
//! external dependency:
//!
//! - [`http`] — incremental, bounded, panic-free HTTP/1.1 parser and
//!   writer (the protocol security boundary);
//! - [`queue`] — bounded MPMC admission queue: full queue ⇒ shed with
//!   `503 + Retry-After` instead of unbounded buffering;
//! - [`server`] — acceptor + fixed worker pool with keep-alive,
//!   per-connection timeouts, and graceful drain on cancellation;
//! - [`app`] — the application [`server::Handler`]: `POST
//!   /v1/predict-batch`, `GET /healthz`, `GET /metrics`;
//! - [`signal`] — SIGTERM/SIGINT → [`vup_core::executor::CancelToken`]
//!   bridge via a libc `signal(2)` declaration (std already links libc);
//! - [`loadgen`] — seeded closed-loop load generator producing the
//!   `BENCH_serve.json` perf-trajectory record.
//!
//! Determinism boundary: request *outcomes* (forecasts, provenance,
//! breaker decisions) are deterministic for a given store state and
//! batch sequence — batches are serialized through the handler's batch
//! lock — while *timings and interleavings* (latencies, which client a
//! shed hits) are not. The load generator's request stream is a pure
//! function of its seed, so overload runs are reproducible in counts
//! even though per-request latencies vary.

#![warn(missing_docs)]

pub mod app;
pub mod http;
pub mod loadgen;
pub mod queue;
pub mod server;
pub mod signal;

pub use app::{AppHandler, Healthz, WireBatchRequest, WireOutcome, WireRequest, WireResponse};
pub use http::{HttpError, Limits, Request, RequestParser, Response};
pub use loadgen::{BenchReport, LoadPlan};
pub use queue::{Bounded, PushError};
pub use server::{Handler, Server, ServerConfig, ServerSummary};
