//! `ViewSource` adapter: serve predictions from aggregated histories.
//!
//! Plugs the streaming aggregator's [`SharedHistories`] into
//! `vup-serve`'s view seam, so [`vup_serve::PredictionService`] trains
//! and serves from the data actually ingested through the commit log
//! instead of regenerating histories from the simulator. Identical for
//! a loss-free log — and faithfully *different* when telemetry really
//! was lost, which is the point of the streaming path.

use vup_core::{Scenario, VehicleView};
use vup_fleetsim::fleet::{Fleet, VehicleId};
use vup_serve::ViewSource;

use crate::aggregate::SharedHistories;

/// Builds vehicle views from the aggregator's sealed daily histories.
pub struct AggregatedViews {
    histories: SharedHistories,
}

impl AggregatedViews {
    /// Wraps a handle obtained from
    /// [`crate::aggregate::FleetAggregator::histories`].
    pub fn new(histories: SharedHistories) -> AggregatedViews {
        AggregatedViews { histories }
    }
}

impl ViewSource for AggregatedViews {
    fn build_view(&self, fleet: &Fleet, id: VehicleId, scenario: Scenario) -> Option<VehicleView> {
        let vehicle = fleet.vehicle(id)?;
        let histories = self.histories.read().ok()?;
        let records = histories.get(&id.0)?;
        Some(VehicleView::from_records(fleet, vehicle, records, scenario))
    }
}
