//! Simulated telemetry streams for the commit log.
//!
//! Day-major, vehicle-ordered replay of the fleet simulator's raw
//! 10-minute reports into a [`CommitLog`] — the shape real ingestion
//! has: all of day *d* arrives before day *d+1*, so the aggregator's
//! watermark seals one day at a time. An optional [`UsageShift`]
//! multiplies one vehicle's utilization from a given day on (RNG
//! streams untouched), the canonical way to provoke a genuine drift in
//! the CUSUM monitor without changing anything else about the data.

use std::io;

use serde::{Deserialize, Serialize};
use vup_fleetsim::dropout::DropoutConfig;
use vup_fleetsim::fleet::Fleet;
use vup_fleetsim::generator::generate_day_raw_reports_scaled;

use crate::log::CommitLog;

/// A step change in one vehicle's utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageShift {
    /// The vehicle whose usage shifts.
    pub vehicle_id: u32,
    /// Day offset (from the observation start) the shift begins at.
    pub from_day_offset: usize,
    /// Hours multiplier from that day on (clamped to [0, 24] hours).
    pub factor: f64,
}

/// What to stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Day offset (from the observation start) to stream from.
    pub start_offset: usize,
    /// How many days to stream (clamped to the observation period).
    pub days: usize,
    /// Telemetry dropout profile ([`DropoutConfig::none`] for a
    /// loss-free stream).
    pub dropout: DropoutConfig,
    /// Optional usage shift to provoke drift.
    pub shift: Option<UsageShift>,
}

/// Outcome of one streaming run (the `vup ingest --stats` artifact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Raw reports appended by this run.
    pub records_appended: u64,
    /// Days streamed.
    pub days: usize,
    /// Vehicles streamed.
    pub vehicles: usize,
    /// The log's next offset after the run (== total records in the log).
    pub next_offset: u64,
    /// Live segments after the run.
    pub segments: usize,
}

impl IngestStats {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ingest stats serialize")
    }
}

/// Streams `cfg.days` days of the whole fleet's raw reports into the
/// log, day-major and vehicle-ordered. Returns the run's stats; stops
/// at the first append error (everything before it is durable).
pub fn ingest_stream(
    log: &mut CommitLog,
    fleet: &Fleet,
    cfg: &StreamConfig,
) -> io::Result<IngestStats> {
    let n_days = fleet.config().n_days();
    let from = cfg.start_offset.min(n_days);
    let to = (cfg.start_offset + cfg.days).min(n_days);
    let mut appended = 0u64;
    for day_offset in from..to {
        let date = fleet.config().start.plus_days(day_offset as i64);
        for vehicle in fleet.vehicles() {
            let scale = match &cfg.shift {
                Some(shift)
                    if shift.vehicle_id == vehicle.id.0 && day_offset >= shift.from_day_offset =>
                {
                    shift.factor
                }
                _ => 1.0,
            };
            let reports =
                generate_day_raw_reports_scaled(fleet, vehicle.id, date, &cfg.dropout, scale);
            for report in &reports {
                log.append(vehicle.id.0, report)?;
                appended += 1;
            }
        }
    }
    Ok(IngestStats {
        records_appended: appended,
        days: to.saturating_sub(from),
        vehicles: fleet.vehicles().len(),
        next_offset: log.next_offset(),
        segments: log.segment_count(),
    })
}
