//! The in-memory columnar table and its relational operators.

use std::collections::HashMap;

use crate::column::Column;
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::{PrepError, Result};

/// Aggregate function for [`Table::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Count of non-null values.
    Count,
    /// Sum of values (numeric columns).
    Sum,
    /// Mean of non-null values (numeric columns).
    Mean,
    /// Minimum non-null value (numeric columns).
    Min,
    /// Maximum non-null value (numeric columns).
    Max,
}

impl Aggregate {
    fn suffix(self) -> &'static str {
        match self {
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Mean => "mean",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        }
    }
}

/// An in-memory columnar table: a schema plus one [`Column`] per field.
///
/// # Example
///
/// ```
/// use vup_dataprep::{Schema, DataType, Table, Value};
///
/// let mut t = Table::new(Schema::of(&[("id", DataType::Int), ("hours", DataType::Float)]));
/// t.push_row(vec![Value::Int(1), Value::Float(7.5)]).unwrap();
/// t.push_row(vec![Value::Int(2), Value::Null]).unwrap();
/// assert_eq!(t.n_rows(), 2);
/// assert_eq!(t.get(1, "hours").unwrap(), Value::Null);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.dtype))
            .collect();
        Table {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Appends a row; values must match the schema arity and column types.
    /// On error the table is left unchanged.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(PrepError::ArityMismatch {
                expected: self.columns.len(),
                actual: values.len(),
            });
        }
        // Validate all values first so a failure cannot leave ragged columns.
        for (value, field) in values.iter().zip(self.schema.fields()) {
            let compatible = matches!(
                (field.dtype, value),
                (_, Value::Null)
                    | (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_) | Value::Int(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            );
            if !compatible {
                return Err(PrepError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    actual: value.type_name(),
                });
            }
        }
        for ((column, value), field) in self
            .columns
            .iter_mut()
            .zip(values)
            .zip(self.schema.fields())
        {
            column.push(value, &field.name).expect("pre-validated");
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Reads one cell by row index and column name.
    pub fn get(&self, row: usize, column: &str) -> Result<Value> {
        if row >= self.n_rows {
            return Err(PrepError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        let idx = self.schema.index_of(column)?;
        Ok(self.columns[idx].get(row))
    }

    /// Borrow of a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The full row as values, in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(PrepError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// Float view of a column (`None` per null; ints coerce). Errors on
    /// non-numeric columns.
    pub fn float_column(&self, name: &str) -> Result<Vec<Option<f64>>> {
        let col = self.column(name)?;
        match col.dtype() {
            DataType::Float | DataType::Int => {
                Ok((0..self.n_rows).map(|i| col.get_float(i)).collect())
            }
            other => Err(PrepError::UnsupportedType {
                op: "float_column",
                dtype: other.name(),
            }),
        }
    }

    /// New table with the rows whose index satisfies `pred(row_index)`.
    pub fn filter_by_index(&self, pred: impl Fn(usize) -> bool) -> Table {
        let indices: Vec<usize> = (0..self.n_rows).filter(|&i| pred(i)).collect();
        self.take(&indices)
    }

    /// New table with rows where `pred(value_of(column))` holds.
    pub fn filter(&self, column: &str, pred: impl Fn(&Value) -> bool) -> Result<Table> {
        let col = self.column(column)?;
        let indices: Vec<usize> = (0..self.n_rows).filter(|&i| pred(&col.get(i))).collect();
        Ok(self.take(&indices))
    }

    /// New table with only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| self.schema.index_of(n).map(|i| self.columns[i].clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            schema,
            columns,
            n_rows: self.n_rows,
        })
    }

    /// New table with rows reordered/subset by `indices`.
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
            n_rows: indices.len(),
        }
    }

    /// New table sorted ascending by the given column (nulls last; ties
    /// keep their original order).
    pub fn sort_by(&self, column: &str) -> Result<Table> {
        let col = self.column(column)?;
        let mut indices: Vec<usize> = (0..self.n_rows).collect();
        indices.sort_by(|&a, &b| {
            use std::cmp::Ordering;
            match (col.get(a), col.get(b)) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Null, _) => Ordering::Greater,
                (_, Value::Null) => Ordering::Less,
                (Value::Int(x), Value::Int(y)) => x.cmp(&y),
                (Value::Bool(x), Value::Bool(y)) => x.cmp(&y),
                (Value::Str(x), Value::Str(y)) => x.cmp(&y),
                (x, y) => {
                    let xf = x.as_float().expect("sortable");
                    let yf = y.as_float().expect("sortable");
                    xf.partial_cmp(&yf).unwrap_or(Ordering::Equal)
                }
            }
        });
        Ok(self.take(&indices))
    }

    /// Hash group-by: groups rows by the `key` column and computes each
    /// `(value_column, aggregate)` pair over the groups. The output has
    /// the key column plus one `<col>_<agg>` column per pair; group order
    /// follows first appearance of each key.
    pub fn group_by(&self, key: &str, aggs: &[(&str, Aggregate)]) -> Result<Table> {
        let key_col = self.column(key)?;
        let key_dtype = key_col.dtype();

        // Group rows by key value (serialized for hashing, order-stable).
        let mut order: Vec<Value> = Vec::new();
        let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
        for i in 0..self.n_rows {
            let v = key_col.get(i);
            let k = format!("{}:{v}", v.type_name());
            if !groups.contains_key(&k) {
                order.push(v.clone());
            }
            groups.entry(k).or_default().push(i);
        }

        // Build the output schema.
        let mut fields = vec![Field::new(key, key_dtype)];
        for &(col_name, agg) in aggs {
            let src = self.schema.field(col_name)?;
            let dtype = match agg {
                Aggregate::Count => DataType::Int,
                _ => {
                    if !matches!(src.dtype, DataType::Float | DataType::Int) {
                        return Err(PrepError::UnsupportedType {
                            op: "group_by aggregate",
                            dtype: src.dtype.name(),
                        });
                    }
                    DataType::Float
                }
            };
            fields.push(Field::new(format!("{col_name}_{}", agg.suffix()), dtype));
        }
        let mut out = Table::new(Schema::new(fields));

        for key_value in order {
            let k = format!("{}:{key_value}", key_value.type_name());
            let rows = &groups[&k];
            let mut record = vec![key_value];
            for &(col_name, agg) in aggs {
                let col = self.column(col_name)?;
                let vals: Vec<f64> = rows.iter().filter_map(|&i| col.get_float(i)).collect();
                let v = match agg {
                    Aggregate::Count => {
                        Value::Int(rows.iter().filter(|&&i| !col.get(i).is_null()).count() as i64)
                    }
                    Aggregate::Sum => Value::Float(vals.iter().sum()),
                    Aggregate::Mean => {
                        if vals.is_empty() {
                            Value::Null
                        } else {
                            Value::Float(vals.iter().sum::<f64>() / vals.len() as f64)
                        }
                    }
                    Aggregate::Min => vals
                        .iter()
                        .copied()
                        .reduce(f64::min)
                        .map(Value::Float)
                        .unwrap_or(Value::Null),
                    Aggregate::Max => vals
                        .iter()
                        .copied()
                        .reduce(f64::max)
                        .map(Value::Float)
                        .unwrap_or(Value::Null),
                };
                record.push(v);
            }
            out.push_row(record).expect("schema built to match");
        }
        Ok(out)
    }

    /// Inner hash join on equal values of `self[left_key] == other[right_key]`.
    ///
    /// Output columns are `self`'s columns followed by `other`'s (the right
    /// key column excluded); right columns whose names collide are prefixed
    /// with `right_`. Null keys never match.
    pub fn join(&self, other: &Table, left_key: &str, right_key: &str) -> Result<Table> {
        let lcol = self.column(left_key)?;
        let rcol = other.column(right_key)?;

        // Build the output schema.
        let mut fields = self.schema.fields().to_vec();
        let left_names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        let mut right_fields = Vec::new();
        for f in other.schema.fields() {
            if f.name == right_key {
                continue;
            }
            let name = if left_names.contains(&f.name.as_str()) {
                format!("right_{}", f.name)
            } else {
                f.name.clone()
            };
            right_fields.push((f.name.clone(), Field::new(name, f.dtype)));
        }
        fields.extend(right_fields.iter().map(|(_, f)| f.clone()));
        let mut out = Table::new(Schema::new(fields));

        // Hash the right side.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for j in 0..other.n_rows {
            let v = rcol.get(j);
            if v.is_null() {
                continue;
            }
            index
                .entry(format!("{}:{v}", v.type_name()))
                .or_default()
                .push(j);
        }

        for i in 0..self.n_rows {
            let v = lcol.get(i);
            if v.is_null() {
                continue;
            }
            let Some(matches) = index.get(&format!("{}:{v}", v.type_name())) else {
                continue;
            };
            for &j in matches {
                let mut record = self.row(i)?;
                for (src_name, _) in &right_fields {
                    record.push(other.get(j, src_name)?);
                }
                out.push_row(record).expect("schema built to match");
            }
        }
        Ok(out)
    }

    /// Appends all rows of `other` (schemas must be identical).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(PrepError::SchemaMismatch {
                detail: "append requires identical schemas".into(),
            });
        }
        for i in 0..other.n_rows {
            self.push_row(other.row(i)?)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage_table() -> Table {
        let mut t = Table::new(Schema::of(&[
            ("vid", DataType::Int),
            ("hours", DataType::Float),
            ("country", DataType::Str),
        ]));
        for (vid, hours, country) in [
            (1, Some(5.0), "IT"),
            (2, Some(2.0), "FR"),
            (1, Some(7.0), "IT"),
            (2, None, "FR"),
            (3, Some(4.0), "IT"),
        ] {
            t.push_row(vec![
                Value::Int(vid),
                hours.map(Value::Float).unwrap_or(Value::Null),
                Value::Str(country.into()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn push_validates_arity_and_types_atomically() {
        let mut t = usage_table();
        assert!(matches!(
            t.push_row(vec![Value::Int(1)]),
            Err(PrepError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.push_row(vec![
                Value::Str("x".into()),
                Value::Float(1.0),
                Value::Str("IT".into())
            ]),
            Err(PrepError::TypeMismatch { .. })
        ));
        // Failed pushes must not corrupt the table.
        assert_eq!(t.n_rows(), 5);
        assert_eq!(t.column("vid").unwrap().len(), 5);
    }

    #[test]
    fn cell_and_row_access() {
        let t = usage_table();
        assert_eq!(t.get(0, "hours").unwrap(), Value::Float(5.0));
        assert_eq!(t.get(3, "hours").unwrap(), Value::Null);
        assert!(t.get(9, "hours").is_err());
        assert!(t.get(0, "nope").is_err());
        let row = t.row(4).unwrap();
        assert_eq!(row[0], Value::Int(3));
    }

    #[test]
    fn filter_and_project() {
        let t = usage_table();
        let it = t.filter("country", |v| v.as_str() == Some("IT")).unwrap();
        assert_eq!(it.n_rows(), 3);
        let p = it.project(&["hours"]).unwrap();
        assert_eq!(p.n_cols(), 1);
        assert_eq!(p.get(1, "hours").unwrap(), Value::Float(7.0));
        assert!(t.project(&["ghost"]).is_err());
    }

    #[test]
    fn sorting_puts_nulls_last() {
        let t = usage_table();
        let s = t.sort_by("hours").unwrap();
        let hours: Vec<Value> = (0..s.n_rows())
            .map(|i| s.get(i, "hours").unwrap())
            .collect();
        assert_eq!(
            hours,
            vec![
                Value::Float(2.0),
                Value::Float(4.0),
                Value::Float(5.0),
                Value::Float(7.0),
                Value::Null
            ]
        );
    }

    #[test]
    fn group_by_means_and_counts() {
        let t = usage_table();
        let g = t
            .group_by(
                "vid",
                &[("hours", Aggregate::Mean), ("hours", Aggregate::Count)],
            )
            .unwrap();
        assert_eq!(g.n_rows(), 3);
        // Group order follows first appearance: 1, 2, 3.
        assert_eq!(g.get(0, "vid").unwrap(), Value::Int(1));
        assert_eq!(g.get(0, "hours_mean").unwrap(), Value::Float(6.0));
        assert_eq!(g.get(0, "hours_count").unwrap(), Value::Int(2));
        // vid 2 has one null: mean over the single non-null value.
        assert_eq!(g.get(1, "hours_mean").unwrap(), Value::Float(2.0));
        assert_eq!(g.get(1, "hours_count").unwrap(), Value::Int(1));
    }

    #[test]
    fn group_by_min_max_sum() {
        let t = usage_table();
        let g = t
            .group_by(
                "country",
                &[
                    ("hours", Aggregate::Min),
                    ("hours", Aggregate::Max),
                    ("hours", Aggregate::Sum),
                ],
            )
            .unwrap();
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.get(0, "country").unwrap(), Value::Str("IT".into()));
        assert_eq!(g.get(0, "hours_min").unwrap(), Value::Float(4.0));
        assert_eq!(g.get(0, "hours_max").unwrap(), Value::Float(7.0));
        assert_eq!(g.get(0, "hours_sum").unwrap(), Value::Float(16.0));
    }

    #[test]
    fn group_by_rejects_non_numeric_aggregates() {
        let t = usage_table();
        assert!(matches!(
            t.group_by("vid", &[("country", Aggregate::Mean)]),
            Err(PrepError::UnsupportedType { .. })
        ));
        // Count over strings is fine.
        assert!(t.group_by("vid", &[("country", Aggregate::Count)]).is_ok());
    }

    #[test]
    fn join_matches_keys_and_renames_collisions() {
        let t = usage_table();
        let mut meta = Table::new(Schema::of(&[
            ("country", DataType::Str),
            ("hours", DataType::Float), // collides with left's "hours"
            ("hemisphere", DataType::Str),
        ]));
        meta.push_row(vec![
            Value::Str("IT".into()),
            Value::Float(99.0),
            Value::Str("N".into()),
        ])
        .unwrap();
        let joined = t.join(&meta, "country", "country").unwrap();
        // Only IT rows match.
        assert_eq!(joined.n_rows(), 3);
        assert_eq!(joined.get(0, "hemisphere").unwrap(), Value::Str("N".into()));
        assert_eq!(joined.get(0, "right_hours").unwrap(), Value::Float(99.0));
        // Left columns intact.
        assert_eq!(joined.get(0, "hours").unwrap(), Value::Float(5.0));
    }

    #[test]
    fn join_skips_null_keys() {
        let mut left = Table::new(Schema::of(&[("k", DataType::Int)]));
        left.push_row(vec![Value::Null]).unwrap();
        left.push_row(vec![Value::Int(1)]).unwrap();
        let mut right = Table::new(Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]));
        right.push_row(vec![Value::Int(1), Value::Int(10)]).unwrap();
        right.push_row(vec![Value::Null, Value::Int(20)]).unwrap();
        let joined = left.join(&right, "k", "k").unwrap();
        assert_eq!(joined.n_rows(), 1);
        assert_eq!(joined.get(0, "v").unwrap(), Value::Int(10));
    }

    #[test]
    fn append_requires_identical_schema() {
        let mut a = usage_table();
        let b = usage_table();
        a.append(&b).unwrap();
        assert_eq!(a.n_rows(), 10);
        let c = Table::new(Schema::of(&[("x", DataType::Int)]));
        assert!(matches!(
            a.append(&c),
            Err(PrepError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn float_column_views() {
        let t = usage_table();
        let h = t.float_column("hours").unwrap();
        assert_eq!(h[0], Some(5.0));
        assert_eq!(h[3], None);
        let ids = t.float_column("vid").unwrap();
        assert_eq!(ids[4], Some(3.0));
        assert!(t.float_column("country").is_err());
    }

    #[test]
    fn doc_example_compiles() {
        let mut t = Table::new(Schema::of(&[
            ("id", DataType::Int),
            ("hours", DataType::Float),
        ]));
        t.push_row(vec![Value::Int(1), Value::Float(7.5)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.n_rows(), 2);
    }
}
