//! Drift-triggered retrain scheduling over the sealed-slot stream.
//!
//! Every sealed slot first settles the score of the forecast that
//! covered it — the realized residual is fed to the [`FleetMonitor`] —
//! and is then judged against four triggers, in priority order:
//!
//! 1. **Initial** — the vehicle has no model yet and its series just
//!    reached the warmup length (one training window).
//! 2. **Drift** — the vehicle's CUSUM statistic crossed `cusum_h`. The
//!    stale model is *invalidated* (memory and disk) before the
//!    retrain so the service must fit fresh, and the CUSUM restarts
//!    after the retrain lands so one shift fires once, not forever.
//! 3. **Degraded** — the recent/baseline MAE ratio crossed
//!    `degrade_ratio`. Edge-triggered: a vehicle that stays degraded
//!    does not re-fire until it recovers and degrades again.
//! 4. **Stale** — `retrain_every` slots elapsed since the last fit;
//!    the paper's fixed retrain cadence, now a fallback the drift
//!    triggers usually beat.
//!
//! Decisions are deterministic: they depend only on the sealed-slot
//! stream and the (deterministic) model fits, never on wall-clock time
//! or thread interleaving.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use vup_fleetsim::fleet::VehicleId;
use vup_obs::{FleetMonitor, MonitorConfig, Registry};
use vup_serve::{BatchRequest, PredictionService, ServeOutcome};

use crate::aggregate::SealedSlot;

/// Why a vehicle was enqueued for retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetrainReason {
    /// First fit: the series just reached the warmup length.
    Initial,
    /// The CUSUM drift statistic crossed its threshold.
    Drift,
    /// The recent/baseline error ratio crossed the degrade threshold.
    Degraded,
    /// The fixed retrain cadence elapsed with no earlier trigger.
    Stale,
}

impl RetrainReason {
    /// Stable lowercase label (metrics, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            RetrainReason::Initial => "initial",
            RetrainReason::Drift => "drift",
            RetrainReason::Degraded => "degraded",
            RetrainReason::Stale => "stale",
        }
    }
}

/// One retrain decision, in the order it was made. The `seq` numbers
/// the global decision stream; replay determinism pins the entire
/// stream, order included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainDecision {
    /// Position in the global decision stream (0-based).
    pub seq: u64,
    /// The vehicle to retrain.
    pub vehicle_id: u32,
    /// Slot index that triggered the decision.
    pub slot: usize,
    /// Why.
    pub reason: RetrainReason,
}

/// Scheduler tunables.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Slots a vehicle's series must reach before the first fit
    /// (normally the pipeline's training window).
    pub warmup_slots: usize,
    /// Staleness fallback: retrain after this many slots without one.
    pub retrain_every: usize,
    /// Forecast horizon requested at each retrain; the forecast also
    /// supplies the expected hours that future residuals settle
    /// against, so it should cover at least `retrain_every` slots.
    pub horizon: usize,
}

impl SchedulerConfig {
    /// Derives the scheduler from a pipeline config: warmup = one
    /// training window, staleness = the pipeline's retrain cadence,
    /// horizon long enough to score every slot until the next fit.
    pub fn from_pipeline(cfg: &vup_core::PipelineConfig) -> SchedulerConfig {
        SchedulerConfig {
            warmup_slots: cfg.train_window,
            retrain_every: cfg.retrain_every,
            horizon: cfg.retrain_every.max(1),
        }
    }
}

/// The forecast a vehicle is currently being scored against.
struct ActiveModel {
    /// Slot count of the view the model was trained on.
    trained_at: usize,
    /// Predicted hours for slots `trained_at..trained_at+len`.
    forecast: Vec<f64>,
}

/// Subscribes to sealed slots, feeds residuals to the fleet monitor,
/// and turns monitor firings into an ordered retrain queue served by
/// [`PredictionService::serve_batch`].
pub struct RetrainScheduler {
    monitor: FleetMonitor,
    config: SchedulerConfig,
    models: BTreeMap<u32, ActiveModel>,
    /// Vehicles whose degrade trigger already fired and has not reset.
    degrade_latched: BTreeSet<u32>,
    /// Queued decisions in decision order; one per vehicle at most.
    pending: Vec<RetrainDecision>,
    pending_vehicles: BTreeSet<u32>,
    /// Every decision ever made, in order.
    decisions: Vec<RetrainDecision>,
    registry: Registry,
    drains: u64,
}

impl RetrainScheduler {
    /// A scheduler with its own monitor, publishing metrics to
    /// `registry` (pass [`Registry::disabled`] to opt out).
    pub fn new(
        monitor_config: MonitorConfig,
        config: SchedulerConfig,
        registry: &Registry,
    ) -> RetrainScheduler {
        registry.describe(
            "vup_retrain_decisions_total",
            "Retrain decisions by trigger reason.",
        );
        registry.describe(
            "vup_retrain_drains_total",
            "Retrain queue drains (batched serve calls).",
        );
        RetrainScheduler {
            monitor: FleetMonitor::observed(registry, monitor_config),
            config,
            models: BTreeMap::new(),
            degrade_latched: BTreeSet::new(),
            pending: Vec::new(),
            pending_vehicles: BTreeSet::new(),
            decisions: Vec::new(),
            registry: registry.clone(),
            drains: 0,
        }
    }

    /// The monitor the scheduler feeds (health inspection, baselines).
    pub fn monitor(&self) -> &FleetMonitor {
        &self.monitor
    }

    /// Handles one sealed slot: settles the residual of the forecast
    /// that covered it, evaluates the triggers, and returns the
    /// decision if one fired (also queued internally).
    pub fn on_sealed(&mut self, sealed: &SealedSlot) -> Option<RetrainDecision> {
        let v = sealed.vehicle_id;
        let s = sealed.slot;

        if let Some(model) = self.models.get(&v) {
            if s >= model.trained_at {
                let ahead = s - model.trained_at;
                if ahead < model.forecast.len() {
                    self.monitor
                        .observe_residual(v, model.forecast[ahead] - sealed.hours);
                }
            }
        }

        let reason = match self.models.get(&v) {
            None => (s + 1 >= self.config.warmup_slots).then_some(RetrainReason::Initial),
            Some(model) => {
                let health = self.monitor.health_of(v);
                let cusum_fired = health
                    .as_ref()
                    .is_some_and(|h| h.cusum > self.monitor.config().cusum_h);
                let degraded_now = health.as_ref().is_some_and(|h| h.degraded);
                let degrade_edge = degraded_now && !self.degrade_latched.contains(&v);
                if degraded_now {
                    self.degrade_latched.insert(v);
                } else {
                    self.degrade_latched.remove(&v);
                }
                if cusum_fired {
                    Some(RetrainReason::Drift)
                } else if degrade_edge {
                    Some(RetrainReason::Degraded)
                } else if s + 1 - model.trained_at >= self.config.retrain_every {
                    Some(RetrainReason::Stale)
                } else {
                    None
                }
            }
        }?;

        if !self.pending_vehicles.insert(v) {
            // Already queued; keep the first decision for the vehicle.
            return None;
        }
        let decision = RetrainDecision {
            seq: self.decisions.len() as u64,
            vehicle_id: v,
            slot: s,
            reason,
        };
        self.registry
            .counter_with(
                "vup_retrain_decisions_total",
                &[("reason", reason.as_str())],
            )
            .inc();
        self.decisions.push(decision.clone());
        self.pending.push(decision.clone());
        Some(decision)
    }

    /// Whether any decision is queued.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Serves the retrain queue through `service` and clears it.
    ///
    /// Drift and degrade retrains first *invalidate* the vehicle's
    /// cached and snapshotted models — a cache hit would defeat the
    /// point of reacting to drift. Successful retrains install the new
    /// forecast for residual settlement; a drift vehicle's CUSUM is
    /// restarted once its fresh model lands.
    pub fn drain(&mut self, service: &PredictionService) -> Vec<ServeOutcome> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let queued = std::mem::take(&mut self.pending);
        self.pending_vehicles.clear();
        for decision in &queued {
            if matches!(
                decision.reason,
                RetrainReason::Drift | RetrainReason::Degraded
            ) {
                service.store().invalidate(VehicleId(decision.vehicle_id));
            }
        }
        let requests: Vec<BatchRequest> = queued
            .iter()
            .map(|d| BatchRequest {
                vehicle_id: VehicleId(d.vehicle_id),
                horizon: self.config.horizon,
            })
            .collect();
        let outcomes = service.serve_batch(&requests, None);
        for outcome in &outcomes {
            if let Some(forecast) = outcome.forecast() {
                self.models.insert(
                    forecast.vehicle_id,
                    ActiveModel {
                        trained_at: forecast.trained_at,
                        forecast: forecast.hours.clone(),
                    },
                );
            }
        }
        for decision in &queued {
            if decision.reason == RetrainReason::Drift
                && self.models.contains_key(&decision.vehicle_id)
            {
                self.monitor.restart_cusum(decision.vehicle_id);
            }
        }
        self.drains += 1;
        self.registry.counter("vup_retrain_drains_total").inc();
        outcomes
    }

    /// Every decision made so far, in decision order.
    pub fn decisions(&self) -> &[RetrainDecision] {
        &self.decisions
    }

    /// Vehicles currently holding a fitted model.
    pub fn modeled_vehicles(&self) -> Vec<u32> {
        self.models.keys().copied().collect()
    }

    /// Queue drains performed.
    pub fn drains(&self) -> u64 {
        self.drains
    }
}
