//! Multinomial (softmax) logistic regression.
//!
//! Implements the paper's second future-work item — "the use of
//! classification models to predict discrete usage levels" — as a
//! from-scratch softmax classifier trained by batch gradient descent on
//! the cross-entropy loss with optional L2 regularization. Inputs are
//! expected standardized (as everywhere in this workspace); the paper's
//! usage levels are defined in `vup_core::levels`.

use vup_linalg::Matrix;

use crate::{MlError, Result};

/// Hyperparameters for [`SoftmaxRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxParams {
    /// Number of target classes (≥ 2).
    pub n_classes: usize,
    /// L2 penalty weight on the (non-intercept) weights.
    pub l2: f64,
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Maximum full-batch iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the maximum weight update.
    pub tol: f64,
}

impl SoftmaxParams {
    /// Sensible defaults for `n_classes` classes.
    pub fn for_classes(n_classes: usize) -> SoftmaxParams {
        SoftmaxParams {
            n_classes,
            l2: 1e-3,
            learning_rate: 0.5,
            max_iter: 500,
            tol: 1e-5,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_classes < 2 {
            return Err(MlError::InvalidParameter {
                name: "n_classes",
                reason: "need at least two classes".into(),
            });
        }
        if self.learning_rate.is_nan() || self.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: "must be positive".into(),
            });
        }
        if self.l2 < 0.0 || self.l2.is_nan() {
            return Err(MlError::InvalidParameter {
                name: "l2",
                reason: "must be non-negative".into(),
            });
        }
        if self.max_iter == 0 {
            return Err(MlError::InvalidParameter {
                name: "max_iter",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Softmax classifier: per-class linear scores with shared features.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    params: SoftmaxParams,
    fitted: Option<FittedSoftmax>,
}

#[derive(Debug, Clone)]
struct FittedSoftmax {
    /// `n_classes × n_features` weights.
    weights: Matrix,
    /// Per-class intercepts.
    intercepts: Vec<f64>,
    iterations: usize,
}

/// Numerically stable softmax in place.
fn softmax(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

impl SoftmaxRegression {
    /// Creates an unfitted classifier.
    pub fn new(params: SoftmaxParams) -> SoftmaxRegression {
        SoftmaxRegression {
            params,
            fitted: None,
        }
    }

    /// Gradient-descent iterations performed by the last fit.
    pub fn iterations(&self) -> Option<usize> {
        self.fitted.as_ref().map(|f| f.iterations)
    }

    /// Fits on features `x` and class labels `y ∈ 0..n_classes`.
    pub fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<()> {
        self.params.validate()?;
        let n = x.rows();
        let p = x.cols();
        let c = self.params.n_classes;
        if n != y.len() {
            return Err(MlError::SampleMismatch {
                x_rows: n,
                y_len: y.len(),
            });
        }
        if n < c {
            return Err(MlError::NotEnoughSamples {
                required: c,
                actual: n,
            });
        }
        if let Some(&bad) = y.iter().find(|&&label| label >= c) {
            return Err(MlError::InvalidParameter {
                name: "y",
                reason: format!("label {bad} out of range for {c} classes"),
            });
        }

        let mut weights = Matrix::zeros(c, p);
        let mut intercepts = vec![0.0; c];
        let inv_n = 1.0 / n as f64;
        let lr = self.params.learning_rate;
        let mut iterations = self.params.max_iter;

        let mut probs = vec![0.0; c];
        let mut grad_w = Matrix::zeros(c, p);
        let mut grad_b = vec![0.0; c];
        for iter in 0..self.params.max_iter {
            grad_w.as_mut_slice().fill(0.0);
            grad_b.fill(0.0);
            for (i, row) in x.iter_rows().enumerate() {
                for (k, prob) in probs.iter_mut().enumerate() {
                    *prob = intercepts[k] + vup_linalg::vector::dot(weights.row(k), row);
                }
                softmax(&mut probs);
                for k in 0..c {
                    let err = probs[k] - (y[i] == k) as u8 as f64;
                    grad_b[k] += err;
                    let g = grad_w.row_mut(k);
                    for (gj, &xj) in g.iter_mut().zip(row) {
                        *gj += err * xj;
                    }
                }
            }
            // L2 on weights (not intercepts) and the descent step.
            let mut max_step = 0.0_f64;
            for k in 0..c {
                let b_step = lr * grad_b[k] * inv_n;
                intercepts[k] -= b_step;
                max_step = max_step.max(b_step.abs());
                let w_row = weights.row_mut(k);
                let g_row = grad_w.row(k);
                for (w, &g) in w_row.iter_mut().zip(g_row) {
                    let step = lr * (g * inv_n + self.params.l2 * *w);
                    *w -= step;
                    max_step = max_step.max(step.abs());
                }
            }
            if max_step <= self.params.tol {
                iterations = iter + 1;
                break;
            }
        }

        self.fitted = Some(FittedSoftmax {
            weights,
            intercepts,
            iterations,
        });
        Ok(())
    }

    /// Class probabilities for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> Result<Vec<f64>> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != f.weights.cols() {
            return Err(MlError::FeatureMismatch {
                expected: f.weights.cols(),
                actual: row.len(),
            });
        }
        let mut probs: Vec<f64> = (0..self.params.n_classes)
            .map(|k| f.intercepts[k] + vup_linalg::vector::dot(f.weights.row(k), row))
            .collect();
        softmax(&mut probs);
        Ok(probs)
    }

    /// Most probable class for one feature row.
    pub fn predict(&self, row: &[f64]) -> Result<usize> {
        let probs = self.predict_proba(row)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(k, _)| k)
            .expect("non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), n: usize, spread: f64) -> Vec<Vec<f64>> {
        // Deterministic pseudo-random cloud around the center.
        (0..n)
            .map(|i| {
                let a = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                let b = ((i * 40503 + 7) % 1000) as f64 / 1000.0 - 0.5;
                vec![center.0 + a * spread, center.1 + b * spread]
            })
            .collect()
    }

    fn fit_blobs(centers: &[(f64, f64)]) -> (SoftmaxRegression, Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (k, &c) in centers.iter().enumerate() {
            for r in blob(c, 40, 1.0) {
                rows.push(r);
                labels.push(k);
            }
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs).unwrap();
        let mut clf = SoftmaxRegression::new(SoftmaxParams::for_classes(centers.len()));
        clf.fit(&x, &labels).unwrap();
        (clf, rows, labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (clf, rows, labels) = fit_blobs(&[(-2.0, 0.0), (2.0, 0.0)]);
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| clf.predict(r).unwrap() == l)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.95);
    }

    #[test]
    fn separates_three_blobs() {
        let (clf, rows, labels) = fit_blobs(&[(-3.0, 0.0), (3.0, 0.0), (0.0, 3.0)]);
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| clf.predict(r).unwrap() == l)
            .count();
        assert!(correct as f64 / rows.len() as f64 > 0.9);
    }

    #[test]
    fn probabilities_sum_to_one_and_are_positive() {
        let (clf, rows, _) = fit_blobs(&[(-1.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        for r in rows.iter().take(10) {
            let p = clf.predict_proba(r).unwrap();
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_scores() {
        let mut s = vec![1000.0, 1001.0, 999.0];
        softmax(&mut s);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s[1] > s[0] && s[0] > s[2]);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn validation_errors() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]).unwrap();
        let mut clf = SoftmaxRegression::new(SoftmaxParams::for_classes(1));
        assert!(clf.fit(&x, &[0, 0, 0]).is_err()); // 1 class

        let mut clf = SoftmaxRegression::new(SoftmaxParams::for_classes(2));
        assert!(clf.fit(&x, &[0, 1]).is_err()); // length mismatch
        assert!(clf.fit(&x, &[0, 1, 2]).is_err()); // label out of range
        assert!(matches!(clf.predict(&[0.0]), Err(MlError::NotFitted)));

        clf.fit(&x, &[0, 1, 1]).unwrap();
        assert!(matches!(
            clf.predict(&[0.0, 1.0]),
            Err(MlError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn imbalanced_data_prefers_majority_in_ambiguous_regions() {
        // 90 samples of class 0, 10 of class 1 at the same location:
        // probability of class 0 must dominate there.
        let mut rows = vec![vec![0.0]; 100];
        let mut labels = vec![0usize; 90];
        labels.extend(vec![1usize; 10]);
        rows.truncate(labels.len());
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs).unwrap();
        let mut clf = SoftmaxRegression::new(SoftmaxParams::for_classes(2));
        clf.fit(&x, &labels).unwrap();
        let p = clf.predict_proba(&[0.0]).unwrap();
        assert!(p[0] > 0.8, "majority prob {p:?}");
    }
}
