//! Figure 4 — effect of the number of selected lags K and the training
//! window width w on the fleet-average Percentage Error.
//!
//! One curve per window width w ∈ {60, 100, 140} (sliding strategy) plus
//! an expanding-window curve, swept over
//! K ∈ {2, 5, 10, 15, 20, 25, 30, 40}. K = 40 equals `max_lag`, i.e.
//! feature selection disabled — the reference against which the paper's
//! "up to 10 % improvement" is measured.
//!
//! The paper does not name the regression algorithm behind Fig. 4; Lasso
//! is used here because it is the cheapest of the well-regularized
//! learners (LR degenerates at large K by design — that is the point of
//! the figure's right-hand side).
//!
//! Run with: `cargo run --release -p vup-bench --bin fig4_param_sweep`

use vup_bench::{evaluable_ids, print_header, small_fleet, write_json};
use vup_core::config::CanChannels;
use vup_core::evaluate::evaluate_vehicle;
use vup_core::report::SweepPoint;
use vup_core::{FeatureConfig, ModelSpec, PipelineConfig, Scenario, Strategy, VehicleView};
use vup_ml::RegressorSpec;

const KS: [usize; 8] = [2, 5, 10, 15, 20, 25, 30, 40];
const WINDOWS: [usize; 3] = [60, 100, 140];
const N_VEHICLES: usize = 30;
/// Most recent slots evaluated per vehicle (fleet-scale sweeps would take
/// hours with the paper's full-period evaluation; see EXPERIMENTS.md).
const EVAL_TAIL: usize = 360;

fn base_config() -> PipelineConfig {
    PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::lasso_paper()),
        scenario: Scenario::NextDay,
        retrain_every: 7,
        eval_tail: Some(EVAL_TAIL),
        // Fig. 4 measures the value of the *lagged-day* features alone,
        // exactly as the paper's §3 reformulation lists them: H and F at
        // the selected days. The target-day calendar enrichment would
        // leak the weekly structure into every K and flatten the curve
        // (the `ablations` binary quantifies that effect separately).
        features: FeatureConfig {
            lag_hours: true,
            can_channels: CanChannels::None,
            target_calendar: false,
            target_weather: false,
        },
        ..PipelineConfig::default()
    }
}

fn main() {
    let fleet = small_fleet(400);
    let probe = base_config();
    let ids = evaluable_ids(&fleet, &probe, probe.scenario, N_VEHICLES);
    println!(
        "Fig. 4 parameter sweep — {} vehicles, scenario {}, Lasso, last {} days evaluated\n",
        ids.len(),
        probe.scenario.label(),
        EVAL_TAIL
    );

    // Pre-build the views once.
    let views: Vec<VehicleView> = ids
        .iter()
        .map(|&id| VehicleView::build(&fleet, id, probe.scenario))
        .collect();

    let mut points: Vec<SweepPoint> = Vec::new();
    let mut run_cell = |k: usize, w: usize, strategy: Strategy| -> Option<f64> {
        let cfg = PipelineConfig {
            k,
            train_window: w,
            strategy,
            ..base_config()
        };
        let mut pes = Vec::new();
        for view in &views {
            if let Ok(eval) = evaluate_vehicle(view, &cfg) {
                pes.push(eval.percentage_error);
            }
        }
        if pes.is_empty() {
            return None;
        }
        let mean = pes.iter().sum::<f64>() / pes.len() as f64;
        points.push(SweepPoint {
            k,
            train_window: if strategy == Strategy::Expanding {
                0
            } else {
                w
            },
            strategy: strategy.label().to_owned(),
            mean_pe: mean,
        });
        Some(mean)
    };

    let mut header = vec![("K".to_owned(), 4usize)];
    header.extend(WINDOWS.iter().map(|w| (format!("w={w}"), 9)));
    header.push(("expanding".to_owned(), 10));
    let header_refs: Vec<(&str, usize)> = header.iter().map(|(s, w)| (s.as_str(), *w)).collect();
    print_header(&header_refs);

    for k in KS {
        let mut cells = vec![format!("{k:>4}")];
        for w in WINDOWS {
            let pe = run_cell(k, w, Strategy::Sliding);
            cells.push(match pe {
                Some(v) => format!("{v:>8.1}%"),
                None => format!("{:>9}", "-"),
            });
        }
        let pe = run_cell(k, 140, Strategy::Expanding);
        cells.push(match pe {
            Some(v) => format!("{v:>9.1}%"),
            None => format!("{:>10}", "-"),
        });
        println!("{}", cells.join(" "));
    }

    // Summarize the selection effect at the paper's operating point.
    let at = |k: usize, w: usize, strat: &str| {
        points
            .iter()
            .find(|p| {
                p.k == k && p.strategy == strat && (strat == "expanding" || p.train_window == w)
            })
            .map(|p| p.mean_pe)
    };
    if let (Some(sel), Some(all)) = (at(20, 140, "sliding"), at(40, 140, "sliding")) {
        println!(
            "\nFeature-selection effect at w=140: K=20 -> {sel:.1}% vs K=max(40) -> {all:.1}% \
             ({:+.1} pp; paper: 'up to 10% improvement')",
            sel - all
        );
    }
    println!(
        "Paper shape checks: optimum K in [10, 30]; small K (<10) noisy; larger w more robust;"
    );
    println!("the expanding window performs best at extra compute cost.");

    let path = write_json("fig4_param_sweep", &points);
    println!("\nFull data written to {}", path.display());
}
