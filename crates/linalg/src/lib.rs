//! Dense linear-algebra substrate for the vehicle-usage-prediction workspace.
//!
//! The regression algorithms in `vup-ml` (ordinary least squares, Lasso,
//! support-vector regression, gradient boosting) need a small, predictable
//! set of dense kernels: matrix/vector arithmetic, a Cholesky factorization
//! for symmetric positive-definite systems, and a Householder QR for
//! least-squares problems. This crate provides exactly that, with no
//! external numeric dependencies.
//!
//! Design notes, following the workspace coding guides:
//! - [`Matrix`] is row-major contiguous `Vec<f64>` storage; hot loops are
//!   written over slices so the optimizer can vectorize them.
//! - Fallible operations return [`LinalgError`] instead of panicking;
//!   element access through `Index` panics on out-of-bounds like slices do.
//! - All decompositions are deterministic: no randomized pivoting.
//!
//! # Example
//!
//! ```
//! use vup_linalg::{Matrix, lstsq};
//!
//! // Fit y = 2x + 1 exactly through three points.
//! let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
//! let y = vec![1.0, 3.0, 5.0];
//! let beta = lstsq(&x, &y).unwrap();
//! assert!((beta[0] - 1.0).abs() < 1e-10);
//! assert!((beta[1] - 2.0).abs() < 1e-10);
//! ```

#![warn(missing_docs)]

mod cholesky;
mod error;
mod matrix;
mod qr;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use qr::{lstsq, QrDecomposition};

/// Convenience result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
