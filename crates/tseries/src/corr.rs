//! Cross-series correlation.
//!
//! Backs the paper's Fig. 1d observation that same-model units show
//! "uncorrelated" usage: the characterization binary computes pairwise
//! Pearson correlations between unit series and reports how close to zero
//! they sit.

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` when the series differ in length, are shorter than 2,
/// or either has zero variance.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// All pairwise Pearson correlations among a set of equal-length series
/// (upper triangle, row-major order). Pairs with undefined correlation
/// are skipped.
pub fn pairwise(series: &[Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..series.len() {
        for j in (i + 1)..series.len() {
            if let Some(r) = pearson(&series[i], &series[j]) {
                out.push(r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_and_anti_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_patterns_are_weakly_correlated() {
        let a: Vec<f64> = (0..100).map(|i| ((i * 7919) % 101) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i * 6131 + 37) % 97) as f64).collect();
        let r = pearson(&a, &b).unwrap();
        assert!(r.abs() < 0.3, "r = {r}");
    }

    #[test]
    fn degenerate_inputs_give_none() {
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[3.0, 3.0], &[1.0, 2.0]).is_none()); // zero variance
    }

    #[test]
    fn pairwise_counts_upper_triangle() {
        let series = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0],
        ];
        let rs = pairwise(&series);
        assert_eq!(rs.len(), 3);
        // Constant series are skipped, shrinking the count.
        let with_constant = vec![vec![1.0, 1.0, 1.0], vec![1.0, 2.0, 3.0]];
        assert!(pairwise(&with_constant).is_empty());
    }

    proptest! {
        #[test]
        fn prop_correlation_is_bounded_and_symmetric(
            a in proptest::collection::vec(-50.0_f64..50.0, 3..40),
            b in proptest::collection::vec(-50.0_f64..50.0, 3..40),
        ) {
            let n = a.len().min(b.len());
            if let Some(r) = pearson(&a[..n], &b[..n]) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
                let r2 = pearson(&b[..n], &a[..n]).unwrap();
                prop_assert!((r - r2).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_self_correlation_is_one(
            a in proptest::collection::vec(-50.0_f64..50.0, 3..40),
        ) {
            if let Some(r) = pearson(&a, &a) {
                prop_assert!((r - 1.0).abs() < 1e-9);
            }
        }
    }
}
