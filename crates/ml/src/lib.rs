//! From-scratch regression algorithms for vehicle-usage prediction.
//!
//! The paper trains four scikit-learn regressors per vehicle — Linear
//! Regression, Lasso, ε-Support-Vector Regression and Gradient Boosting —
//! plus two naive baselines (last value, moving average). The Rust ML
//! ecosystem is thin, so this crate reimplements all of them on top of
//! `vup-linalg`:
//!
//! - [`linear::LinearRegression`] — ordinary least squares via Householder
//!   QR, with an automatic ridge fallback for rank-deficient designs;
//! - [`lasso::Lasso`] — cyclic coordinate descent with soft thresholding,
//!   minimizing `1/(2n)·‖y − Xβ‖² + α·‖β‖₁` (scikit-learn's objective);
//! - [`svr::Svr`] — ε-SVR solved with SMO (maximal-violating-pair working
//!   set selection, LibSVM-style), RBF and linear kernels;
//! - [`gbm::GradientBoosting`] — Friedman's TreeBoost over depth-limited
//!   regression trees, with least-squares and LAD (the paper's `loss=lad`)
//!   losses;
//! - [`forest::RandomForest`] — the Random-Forest comparator the paper's
//!   related work uses for on-road fleets (bootstrap + per-tree feature
//!   subspaces);
//! - [`baseline`] — the LV and MA series forecasters;
//! - [`logistic`] — multinomial softmax classification (the paper's §5
//!   future-work item on discrete usage levels);
//! - [`scaler`], [`metrics`], [`grid`], [`dataset`] — supporting pieces
//!   (standardization, the paper's Percentage Error metric, grid search,
//!   dataset handling);
//! - [`instrument`] — fit/predict timing histograms ([`instrument::MlTimers`])
//!   recorded into a `vup-obs` registry, no-op when observability is off.
//!
//! Every estimator implements the [`Regressor`] trait and can be built
//! uniformly from a [`RegressorSpec`], which is how `vup-core` instantiates
//! per-vehicle models.

#![warn(missing_docs)]

pub mod arena;
pub mod baseline;
pub mod dataset;
mod error;
pub mod forest;
pub mod gbm;
pub mod grid;
pub mod instrument;
pub mod kernel;
pub mod lasso;
pub mod linear;
pub mod logistic;
pub mod metrics;
mod regressor;
pub mod scaler;
pub mod svr;
pub mod tree;

pub use arena::{ArenaStats, TrainArena};
pub use dataset::Dataset;
pub use error::MlError;
pub use regressor::{Regressor, RegressorSpec, SavedModel};

/// Convenience result alias for fallible ML operations.
pub type Result<T> = std::result::Result<T, MlError>;
