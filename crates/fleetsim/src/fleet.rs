//! Fleet roster generation: the type → model → unit hierarchy.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::calendar::{Date, SIM_END, SIM_START};
use crate::holidays::{self, Country};
use crate::types::VehicleType;

/// Unique vehicle identifier within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VehicleId(pub u32);

/// One vehicle unit of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    /// Unique identifier.
    pub id: VehicleId,
    /// Construction-vehicle type.
    pub vtype: VehicleType,
    /// Model index within the type (0-based; e.g. one of the 44
    /// refuse-compactor models).
    pub model: usize,
    /// Country the unit operates in (index into the fleet's country list).
    pub country: u16,
}

/// Configuration of the simulated fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of vehicle units (paper: 2 239).
    pub n_vehicles: usize,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// First observed day.
    pub start: Date,
    /// Last observed day (inclusive).
    pub end: Date,
    /// Whether daily weather suppresses site activity (paper §5 future
    /// work; off by default so the baseline experiments match the paper's
    /// weather-free setting).
    pub weather_effects: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_vehicles: 2239,
            seed: 2019,
            start: SIM_START,
            end: SIM_END,
            weather_effects: false,
        }
    }
}

impl FleetConfig {
    /// A small fleet for tests and examples (deterministic).
    pub fn small(n_vehicles: usize, seed: u64) -> FleetConfig {
        FleetConfig {
            n_vehicles,
            seed,
            ..FleetConfig::default()
        }
    }

    /// Number of observed days.
    pub fn n_days(&self) -> usize {
        (self.end.day_index() - self.start.day_index() + 1).max(0) as usize
    }
}

/// A generated fleet: vehicle roster plus country calendars.
#[derive(Debug, Clone)]
pub struct Fleet {
    config: FleetConfig,
    vehicles: Vec<Vehicle>,
    countries: Vec<Country>,
}

impl Fleet {
    /// Deterministically generates the roster for a configuration.
    ///
    /// Type counts follow the per-type fleet shares (largest-remainder
    /// rounding so they sum exactly to `n_vehicles`); model assignment
    /// within a type is popularity-skewed (a few models dominate, as in
    /// the real fleet); countries are likewise skewed toward a handful of
    /// major markets.
    pub fn generate(config: FleetConfig) -> Fleet {
        assert!(config.n_vehicles > 0, "fleet must contain vehicles");
        assert!(
            config.end.day_index() >= config.start.day_index(),
            "fleet period is empty"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let countries = holidays::generate_countries(config.seed);
        let counts = apportion_types(config.n_vehicles);
        let n = config.n_vehicles;

        // Country popularity weights: Zipf-like over the country list.
        let country_weights: Vec<f64> = (0..countries.len())
            .map(|i| 1.0 / (i as f64 + 1.5))
            .collect();

        let mut vehicles = Vec::with_capacity(n);
        let mut next_id = 0u32;
        for (vtype, count) in counts {
            let model_count = vtype.profile().model_count;
            // Zipf-like model popularity within the type.
            let model_weights: Vec<f64> =
                (0..model_count).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            for _ in 0..count {
                let model = weighted_index(&mut rng, &model_weights);
                let country = weighted_index(&mut rng, &country_weights) as u16;
                vehicles.push(Vehicle {
                    id: VehicleId(next_id),
                    vtype,
                    model,
                    country,
                });
                next_id += 1;
            }
        }
        Fleet {
            config,
            vehicles,
            countries,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// All vehicles, ordered by id.
    pub fn vehicles(&self) -> &[Vehicle] {
        &self.vehicles
    }

    /// Vehicle lookup by id.
    pub fn vehicle(&self, id: VehicleId) -> Option<&Vehicle> {
        self.vehicles.get(id.0 as usize)
    }

    /// Country calendars, indexed by [`Vehicle::country`].
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// The country calendar of a vehicle.
    pub fn country_of(&self, vehicle: &Vehicle) -> &Country {
        &self.countries[vehicle.country as usize]
    }

    /// Vehicles of one type.
    pub fn of_type(&self, vtype: VehicleType) -> impl Iterator<Item = &Vehicle> {
        self.vehicles.iter().filter(move |v| v.vtype == vtype)
    }

    /// Vehicles of one type and model.
    pub fn of_model(&self, vtype: VehicleType, model: usize) -> impl Iterator<Item = &Vehicle> {
        self.vehicles
            .iter()
            .filter(move |v| v.vtype == vtype && v.model == model)
    }
}

/// Largest-remainder apportionment of `n` units over the per-type fleet
/// shares, in type-index order; the counts sum exactly to `n`. Shared by
/// [`Fleet::generate`] and the streaming roster
/// ([`crate::streaming::RosterStream`]) so both agree on every type's
/// id range.
pub(crate) fn apportion_types(n: usize) -> Vec<(VehicleType, usize)> {
    let mut counts: Vec<(VehicleType, usize, f64)> = VehicleType::ALL
        .iter()
        .map(|&t| {
            let exact = t.profile().fleet_share * n as f64;
            (t, exact.floor() as usize, exact - exact.floor())
        })
        .collect();
    let assigned: usize = counts.iter().map(|c| c.1).sum();
    let mut remainder = n - assigned;
    counts.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite fractions"));
    for c in counts.iter_mut() {
        if remainder == 0 {
            break;
        }
        c.1 += 1;
        remainder -= 1;
    }
    counts.sort_by_key(|c| c.0.index());
    counts.into_iter().map(|(t, count, _)| (t, count)).collect()
}

/// Samples an index proportionally to `weights` (need not be normalized).
fn weighted_index(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Fleet::generate(FleetConfig::small(200, 7));
        let b = Fleet::generate(FleetConfig::small(200, 7));
        assert_eq!(a.vehicles(), b.vehicles());
        let c = Fleet::generate(FleetConfig::small(200, 8));
        assert_ne!(a.vehicles(), c.vehicles());
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let cfg = FleetConfig::default();
        assert_eq!(cfg.n_vehicles, 2239);
        assert_eq!(cfg.n_days(), 365 + 366 + 365 + 273);
    }

    #[test]
    fn counts_are_exact_and_ids_sequential() {
        let fleet = Fleet::generate(FleetConfig::small(500, 3));
        assert_eq!(fleet.vehicles().len(), 500);
        for (i, v) in fleet.vehicles().iter().enumerate() {
            assert_eq!(v.id, VehicleId(i as u32));
        }
    }

    #[test]
    fn every_type_is_represented_at_paper_scale() {
        let fleet = Fleet::generate(FleetConfig::default());
        for t in VehicleType::ALL {
            let count = fleet.of_type(t).count();
            assert!(count > 0, "type {t:?} missing");
            // Within a factor ~2 of its configured share.
            let expected = t.profile().fleet_share * 2239.0;
            assert!(
                (count as f64) > expected * 0.5 && (count as f64) < expected * 2.0,
                "type {t:?}: {count} vs expected {expected}"
            );
        }
    }

    #[test]
    fn models_stay_in_range_and_popular_models_have_many_units() {
        let fleet = Fleet::generate(FleetConfig::default());
        for v in fleet.vehicles() {
            assert!(v.model < v.vtype.profile().model_count);
            assert!((v.country as usize) < fleet.countries().len());
        }
        // The most popular refuse-compactor model should have multiple units.
        let m0 = fleet.of_model(VehicleType::RefuseCompactor, 0).count();
        assert!(m0 >= 10, "model 0 units = {m0}");
    }

    #[test]
    fn lookups_work() {
        let fleet = Fleet::generate(FleetConfig::small(50, 5));
        let v = fleet.vehicle(VehicleId(10)).unwrap();
        assert_eq!(v.id, VehicleId(10));
        assert!(fleet.vehicle(VehicleId(50)).is_none());
        let c = fleet.country_of(v);
        assert_eq!(c.id, v.country);
    }

    #[test]
    fn weighted_index_respects_degenerate_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            assert_eq!(weighted_index(&mut rng, &[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    #[should_panic(expected = "fleet must contain vehicles")]
    fn empty_fleet_rejected() {
        Fleet::generate(FleetConfig::small(0, 1));
    }
}
