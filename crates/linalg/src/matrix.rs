use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major, heap-allocated matrix of `f64` values.
///
/// Storage is a single contiguous `Vec<f64>` of length `rows * cols`;
/// element `(i, j)` lives at offset `i * cols + j`. Row access therefore
/// yields contiguous slices, which is what the regression hot loops in
/// `vup-ml` iterate over.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major buffer.
    ///
    /// Returns [`LinalgError::BadDimensions`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadDimensions {
                shape: (rows, cols),
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// Returns [`LinalgError::Empty`] for an empty row list and
    /// [`LinalgError::BadDimensions`] when row lengths differ.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::Empty);
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(LinalgError::BadDimensions {
                    shape: (nrows, ncols),
                    len: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a contiguous slice. Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`. Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector. Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Checked element access; returns `None` when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Iterator over rows as contiguous slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols != rhs.rows`.
    /// Uses the cache-friendly i-k-j loop order over contiguous rows.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| crate::vector::dot(row, v))
            .collect())
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `v.len() != self.rows`.
    pub fn matvec_t(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.iter_rows().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Computes the Gram matrix `selfᵀ * self` (symmetric, `cols x cols`),
    /// exploiting symmetry to halve the work.
    // Index-based loops keep the k/i coupling between factors explicit.
    #[allow(clippy::needless_range_loop)]
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for row in self.iter_rows() {
            for j in 0..n {
                let rj = row[j];
                if rj == 0.0 {
                    continue;
                }
                for k in j..n {
                    out.data[j * n + k] += rj * row[k];
                }
            }
        }
        for j in 0..n {
            for k in (j + 1)..n {
                out.data[k * n + j] = out.data[j * n + k];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// Adds `s` to each diagonal element in place (ridge shift).
    /// Panics if the matrix is not square.
    pub fn shift_diagonal(&mut self, s: f64) {
        assert_eq!(
            self.rows, self.cols,
            "shift_diagonal requires square matrix"
        );
        for i in 0..self.rows {
            self.data[i * self.cols + i] += s;
        }
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Extracts the sub-matrix made of the given column indices, in order.
    ///
    /// Returns [`LinalgError::BadDimensions`] if any index is out of range.
    pub fn select_columns(&self, indices: &[usize]) -> Result<Matrix> {
        for &j in indices {
            if j >= self.cols {
                return Err(LinalgError::BadDimensions {
                    shape: self.shape(),
                    len: j,
                });
            }
        }
        let mut data = Vec::with_capacity(self.rows * indices.len());
        for row in self.iter_rows() {
            data.extend(indices.iter().map(|&j| row[j]));
        }
        Matrix::from_vec(self.rows, indices.len(), data)
    }

    /// Stacks another matrix with the same number of columns below `self`.
    pub fn vstack(&self, below: &Matrix) -> Result<Matrix> {
        if self.cols != below.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: below.shape(),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + below.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&below.data);
        Matrix::from_vec(self.rows + below.rows, self.cols, data)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_ROWS: usize = 8;
        for (i, row) in self.iter_rows().enumerate().take(MAX_ROWS) {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > MAX_ROWS {
            writeln!(f, "  ... ({} more rows)", self.rows - MAX_ROWS)?;
        }
        write!(f, "]")
    }
}

// Manual serde impls (not derived): the fields are private to protect the
// `data.len() == rows * cols` invariant, and deserialization must re-check
// it rather than trust the wire format.
impl serde::Serialize for Matrix {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("rows".to_string(), self.rows.to_content()),
            ("cols".to_string(), self.cols.to_content()),
            ("data".to_string(), self.data.to_content()),
        ])
    }
}

impl serde::Deserialize for Matrix {
    fn from_content(content: &serde::Content) -> std::result::Result<Self, serde::DeError> {
        let rows = usize::from_content(content.field("rows"))?;
        let cols = usize::from_content(content.field("cols"))?;
        let data = Vec::<f64>::from_content(content.field("data"))?;
        Matrix::from_vec(rows, cols, data).map_err(serde::DeError::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_identity_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);

        let f = Matrix::filled(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, LinalgError::BadDimensions { .. }));
    }

    #[test]
    fn from_rows_validates_raggedness() {
        let ok = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(ok[(1, 0)], 3.0);
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        assert_eq!(m.get(0, 2), Some(3.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 3), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(approx(c[(0, 0)], 19.0));
        assert!(approx(c[(0, 1)], 22.0));
        assert!(approx(c[(1, 0)], 43.0));
        assert!(approx(c[(1, 1)], 50.0));
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transposed() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let g = m.gram();
        let explicit = m.transpose().matmul(&m).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g[(i, j)], explicit[(i, j)]));
            }
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn diagonal_shift() {
        let mut m = Matrix::identity(2);
        m.shift_diagonal(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 1.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert!(approx(m.frobenius_norm(), 5.0));
        assert!(approx(m.max_abs(), 4.0));
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn column_selection() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let s = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
        assert!(m.select_columns(&[3]).is_err());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let s = a.vstack(&b).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_panics_out_of_bounds() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(1, 0)];
    }

    #[test]
    fn serde_round_trip_preserves_shape_and_data() {
        let m = Matrix::from_rows(&[&[1.0, 2.5], &[-3.0, 0.0]]).unwrap();
        let content = m.to_content();
        let back = Matrix::from_content(&content).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn serde_rejects_inconsistent_dimensions() {
        let mut content = Matrix::zeros(2, 2).to_content();
        if let serde::Content::Map(entries) = &mut content {
            for (k, v) in entries.iter_mut() {
                if k == "rows" {
                    *v = serde::Content::I64(3);
                }
            }
        }
        assert!(Matrix::from_content(&content).is_err());
    }
}
