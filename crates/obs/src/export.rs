//! Snapshot types and the two exporter formats.
//!
//! A [`Snapshot`] is a point-in-time copy of a registry, decoupled from
//! the live atomics. It renders to the Prometheus text exposition format
//! ([`Snapshot::to_prometheus_text`]) — counters and gauges as single
//! samples, histograms as cumulative `_bucket{le=…}` series plus `_sum`
//! and `_count` — or to a self-describing JSON document
//! ([`Snapshot::to_json`]). [`parse_prometheus_text`] round-trips the
//! text format back into flat samples so end-to-end tests can assert on
//! exported values without a real Prometheus server.

use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite upper bucket bounds.
    pub bounds: Vec<u64>,
    /// Non-cumulative per-bucket counts; the last entry is `+Inf`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Frozen value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One named, labelled metric inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: MetricValue,
}

/// A point-in-time copy of a registry's metrics, ordered by
/// (name, labels).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Every metric series, in deterministic order.
    pub samples: Vec<Sample>,
    /// `# HELP` texts registered via [`crate::Registry::describe`],
    /// sorted by metric name.
    pub help: Vec<(String, String)>,
}

impl Snapshot {
    /// Sum of the counter values whose name is `name`, across all label
    /// sets. 0 when no such counter exists.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Renders the Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for sample in &self.samples {
            if last_name != Some(sample.name.as_str()) {
                let kind = match &sample.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                if let Some((_, help)) = self.help.iter().find(|(n, _)| n == &sample.name) {
                    let _ = writeln!(out, "# HELP {} {}", sample.name, escape_help(help));
                }
                let _ = writeln!(out, "# TYPE {} {kind}", sample.name);
                last_name = Some(sample.name.as_str());
            }
            match &sample.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", sample.name, render_labels(&sample.labels));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", sample.name, render_labels(&sample.labels));
                }
                MetricValue::Histogram(hist) => {
                    let mut cumulative = 0u64;
                    for (bound, count) in hist.bounds.iter().zip(&hist.counts) {
                        cumulative += count;
                        let labels = with_le(&sample.labels, &bound.to_string());
                        let _ = writeln!(out, "{}_bucket{labels} {cumulative}", sample.name);
                    }
                    cumulative += hist.counts.last().copied().unwrap_or(0);
                    let labels = with_le(&sample.labels, "+Inf");
                    let _ = writeln!(out, "{}_bucket{labels} {cumulative}", sample.name);
                    let plain = render_labels(&sample.labels);
                    let _ = writeln!(out, "{}_sum{plain} {}", sample.name, hist.sum);
                    let _ = writeln!(out, "{}_count{plain} {cumulative}", sample.name);
                }
            }
        }
        out
    }

    /// Renders a self-describing JSON document with `counters`, `gauges`
    /// and `histograms` arrays.
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for sample in &self.samples {
            let head = format!(
                "{{\"name\":{},\"labels\":{}",
                json_string(&sample.name),
                json_labels(&sample.labels)
            );
            match &sample.value {
                MetricValue::Counter(v) => counters.push(format!("{head},\"value\":{v}}}")),
                MetricValue::Gauge(v) => {
                    let rendered = if v.is_finite() {
                        v.to_string()
                    } else {
                        // JSON has no Inf/NaN literals; encode as strings.
                        json_string(&v.to_string())
                    };
                    gauges.push(format!("{head},\"value\":{rendered}}}"));
                }
                MetricValue::Histogram(hist) => {
                    let buckets: Vec<String> = hist
                        .bounds
                        .iter()
                        .zip(&hist.counts)
                        .map(|(bound, count)| format!("{{\"le\":{bound},\"count\":{count}}}"))
                        .collect();
                    histograms.push(format!(
                        "{head},\"buckets\":[{}],\"inf_count\":{},\"sum\":{},\"count\":{}}}",
                        buckets.join(","),
                        hist.counts.last().copied().unwrap_or(0),
                        hist.sum,
                        hist.count()
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}\n",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn with_le(labels: &[(String, String)], le: &str) -> String {
    let mut all = labels.to_vec();
    all.push(("le".to_string(), le.to_string()));
    render_labels(&all)
}

fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text per the exposition format (backslash and
/// newline only; quotes are legal in help text).
fn escape_help(value: &str) -> String {
    value.replace('\\', "\\\\").replace('\n', "\\n")
}

pub(crate) fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// One value line parsed back out of the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// Series name as written (histogram series keep their `_bucket` /
    /// `_sum` / `_count` suffixes).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition output into flat samples.
///
/// `#` comment lines and blank lines are skipped; any other line must be
/// `name[{labels}] value`. Used by end-to-end tests to check that what
/// the CLI exports is well-formed and internally consistent.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: '{line}'", lineno + 1);
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected 'name value'"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| err("unparseable value"))?,
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                let mut labels = Vec::new();
                for pair in split_label_pairs(body) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err("label without '='"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((
                        k.to_string(),
                        v.replace("\\\"", "\"")
                            .replace("\\n", "\n")
                            .replace("\\\\", "\\"),
                    ));
                }
                (name.to_string(), labels)
            }
        };
        if name.is_empty() {
            return Err(err("empty metric name"));
        }
        samples.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Splits `k1="v1",k2="v2"` on commas that are outside quoted values.
fn split_label_pairs(body: &str) -> Vec<String> {
    let mut pairs = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_quotes && !escaped => {
                escaped = true;
                current.push(c);
            }
            '"' if !escaped => {
                in_quotes = !in_quotes;
                current.push(c);
                escaped = false;
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut current));
                escaped = false;
            }
            c => {
                current.push(c);
                escaped = false;
            }
        }
    }
    if !current.is_empty() {
        pairs.push(current);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Buckets;
    use crate::registry::Registry;

    fn populated() -> Registry {
        let registry = Registry::new();
        registry
            .counter_with("lookups_total", &[("result", "hit")])
            .add(3);
        registry
            .counter_with("lookups_total", &[("result", "miss")])
            .add(1);
        registry.gauge("models").set(4.0);
        let hist = registry.histogram("span_nanos", Buckets::from_bounds(vec![10, 100]));
        for v in [5, 50, 500] {
            hist.observe(v);
        }
        registry
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let text = populated().snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE lookups_total counter"));
        assert!(text.contains("lookups_total{result=\"hit\"} 3"));
        assert!(text.contains("# TYPE models gauge"));
        assert!(text.contains("models 4"));
        assert!(text.contains("# TYPE span_nanos histogram"));
        // Cumulative buckets: ≤10 → 1, ≤100 → 2, +Inf → 3.
        assert!(text.contains("span_nanos_bucket{le=\"10\"} 1"));
        assert!(text.contains("span_nanos_bucket{le=\"100\"} 2"));
        assert!(text.contains("span_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("span_nanos_sum 555"));
        assert!(text.contains("span_nanos_count 3"));
    }

    #[test]
    fn prometheus_text_round_trips_through_the_parser() {
        let snapshot = populated().snapshot();
        let samples = parse_prometheus_text(&snapshot.to_prometheus_text()).unwrap();
        // 2 counters + 1 gauge + (3 buckets + sum + count) = 8 lines.
        assert_eq!(samples.len(), 8);
        let hit = samples
            .iter()
            .find(|s| s.name == "lookups_total" && s.labels == [("result".into(), "hit".into())])
            .unwrap();
        assert_eq!(hit.value, 3.0);
        let inf = samples
            .iter()
            .find(|s| s.name == "span_nanos_bucket" && s.labels.iter().any(|(_, v)| v == "+Inf"))
            .unwrap();
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn prometheus_text_emits_help_before_type() {
        let registry = populated();
        registry.describe("lookups_total", "Store lookups, by result.");
        registry.describe("models", "Models currently cached.");
        let text = registry.snapshot().to_prometheus_text();
        let help_at = text.find("# HELP lookups_total Store lookups, by result.");
        let type_at = text.find("# TYPE lookups_total counter");
        assert!(help_at.is_some() && type_at.is_some());
        assert!(help_at < type_at, "HELP precedes TYPE for the same metric");
        assert!(text.contains("# HELP models Models currently cached."));
        // A metric with no description still gets its TYPE line.
        assert!(text.contains("# TYPE span_nanos histogram"));
        assert!(!text.contains("# HELP span_nanos"));
        // Backslashes and newlines in help text are escaped.
        registry.describe("models", "line one\nwith \\ backslash");
        assert!(registry
            .snapshot()
            .to_prometheus_text()
            .contains("# HELP models line one\\nwith \\\\ backslash"));
    }

    #[test]
    fn label_values_with_quotes_and_backslashes_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("paths_total", &[("path", "C:\\fleet\\\"daily\" run\nend")])
            .add(2);
        let text = registry.snapshot().to_prometheus_text();
        // Per the exposition format: \ → \\, " → \", newline → \n.
        assert!(
            text.contains("paths_total{path=\"C:\\\\fleet\\\\\\\"daily\\\" run\\nend\"} 2"),
            "escaped line missing from:\n{text}"
        );
        // And the strict parser round-trips the original value.
        let samples = parse_prometheus_text(&text).unwrap();
        let sample = samples.iter().find(|s| s.name == "paths_total").unwrap();
        assert_eq!(sample.labels[0].1, "C:\\fleet\\\"daily\" run\nend");
    }

    #[test]
    fn counter_total_sums_across_label_sets() {
        let snapshot = populated().snapshot();
        assert_eq!(snapshot.counter_total("lookups_total"), 4);
        assert_eq!(snapshot.counter_total("absent_total"), 0);
    }

    #[test]
    fn json_dump_is_structured_and_complete() {
        let json = populated().snapshot().to_json();
        assert!(json.starts_with("{\"counters\":["));
        assert!(json.contains("\"name\":\"lookups_total\""));
        assert!(json.contains("\"labels\":{\"result\":\"hit\"}"));
        assert!(json.contains("\"gauges\":[{\"name\":\"models\",\"labels\":{},\"value\":4}"));
        assert!(json.contains("\"buckets\":[{\"le\":10,\"count\":1},{\"le\":100,\"count\":1}]"));
        assert!(json.contains("\"inf_count\":1,\"sum\":555,\"count\":3"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus_text("just_a_name").is_err());
        assert!(parse_prometheus_text("name{unclosed 3").is_err());
        assert!(parse_prometheus_text("name{a=b} 3").is_err());
        assert!(parse_prometheus_text("name abc").is_err());
    }

    #[test]
    fn parser_handles_escaped_label_values() {
        let samples = parse_prometheus_text("m{msg=\"a \\\"quoted\\\", comma\"} 1\n").unwrap();
        assert_eq!(samples[0].labels[0].1, "a \"quoted\", comma");
    }

    #[test]
    fn empty_snapshot_renders_empty_outputs() {
        let snapshot = Registry::disabled().snapshot();
        assert!(snapshot.to_prometheus_text().is_empty());
        assert_eq!(
            snapshot.to_json(),
            "{\"counters\":[],\"gauges\":[],\"histograms\":[]}\n"
        );
        assert!(parse_prometheus_text("").unwrap().is_empty());
    }
}
