//! Seeded closed-loop load generator for `vup serve`.
//!
//! N client threads each run a closed loop — build a batch, POST it,
//! wait for the answer, repeat — against a running daemon. The *request
//! stream* is a pure function of `(seed, client, iteration)` via
//! splitmix64, so two runs against equivalent servers issue identical
//! batches; wall-clock results (RPS, latencies) are of course
//! machine-dependent. Results land in a [`BenchReport`] serialized to
//! `BENCH_serve.json` — the repo's perf-trajectory format for the
//! serving path.
//!
//! The harness doubles as the overload driver for CI: point it at a
//! server with a tiny admission queue and it records how many requests
//! were deliberately shed (`503 + Retry-After`) versus served.

use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::app::{WireBatchRequest, WireRequest};
use crate::http::read_response;

/// What to drive at the server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadPlan {
    /// Target address, `host:port`.
    pub addr: String,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests per client (ignored when `duration_ms` is set).
    pub requests_per_client: usize,
    /// Run for this long instead of a fixed request count.
    pub duration_ms: Option<u64>,
    /// Vehicles per predict-batch request.
    pub batch_size: usize,
    /// Vehicle ids are drawn from `0..vehicle_pool`.
    pub vehicle_pool: u32,
    /// Horizon of every request.
    pub horizon: usize,
    /// Stream seed: same seed, same request sequence.
    pub seed: u64,
}

impl Default for LoadPlan {
    fn default() -> LoadPlan {
        LoadPlan {
            addr: "127.0.0.1:0".to_string(),
            clients: 4,
            requests_per_client: 50,
            duration_ms: None,
            batch_size: 4,
            vehicle_pool: 50,
            horizon: 3,
            seed: 7,
        }
    }
}

/// Latency digest in microseconds (exact, from the merged sample set).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyUs {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Slowest observed request.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: u64,
}

/// One bucket of the latency histogram (`le` in microseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyBucket {
    /// Upper bound of the bucket, µs (`u64::MAX` = +Inf).
    pub le_us: u64,
    /// Cumulative count of requests at or under the bound.
    pub count: u64,
}

/// The serving benchmark record committed as `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// The plan that was run (seed included, for reproduction).
    pub plan: LoadPlan,
    /// Wall-clock run time, milliseconds.
    pub wall_ms: u64,
    /// Requests issued.
    pub total: u64,
    /// `200` responses.
    pub ok: u64,
    /// `503` shed responses (deliberate backpressure).
    pub shed: u64,
    /// Other HTTP statuses.
    pub http_errors: u64,
    /// Transport failures (connect/read/write).
    pub io_errors: u64,
    /// `ok / wall` — sustained successful request rate.
    pub sustained_rps: f64,
    /// Latency digest over successful requests.
    pub latency_us: LatencyUs,
    /// Cumulative latency histogram over successful requests.
    pub histogram: Vec<LatencyBucket>,
    /// Samples in the server's final `/metrics` export (strict-parsed;
    /// the run fails if the exporter emits unparseable text).
    pub metrics_samples: usize,
}

impl BenchReport {
    /// Pretty JSON for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serializes")
    }

    /// Parses a committed report.
    pub fn from_json(text: &str) -> Result<BenchReport, serde_json::Error> {
        serde_json::from_str(text)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The batch client `client` issues on iteration `iteration` — a pure
/// function of the plan.
pub fn planned_batch(plan: &LoadPlan, client: u64, iteration: u64) -> WireRequest {
    let requests = (0..plan.batch_size as u64)
        .map(|slot| {
            let roll =
                splitmix64(plan.seed ^ client.rotate_left(17) ^ iteration.rotate_left(33) ^ slot);
            WireBatchRequest {
                vehicle_id: (roll % u64::from(plan.vehicle_pool.max(1))) as u32,
                horizon: plan.horizon,
            }
        })
        .collect();
    WireRequest {
        requests,
        as_of: None,
    }
}

struct ClientTally {
    ok: u64,
    shed: u64,
    http_errors: u64,
    io_errors: u64,
    latencies_ns: Vec<u64>,
}

/// One POST over an existing connection; returns the status and
/// whether the connection survives for the next iteration.
fn post_batch(stream: &mut TcpStream, addr: &str, body: &str) -> io::Result<(u16, bool)> {
    let head = format!(
        "POST /v1/predict-batch HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    let response = read_response(stream)?;
    Ok((response.status, response.keep_alive()))
}

fn client_loop(plan: &LoadPlan, client: u64, deadline: Option<Instant>) -> ClientTally {
    let mut tally = ClientTally {
        ok: 0,
        shed: 0,
        http_errors: 0,
        io_errors: 0,
        latencies_ns: Vec::new(),
    };
    let connect = || -> io::Result<TcpStream> {
        let stream = TcpStream::connect(&plan.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    };
    let mut stream: Option<TcpStream> = None;
    let mut iteration: u64 = 0;
    loop {
        match deadline {
            Some(d) => {
                if Instant::now() >= d {
                    break;
                }
            }
            None => {
                if iteration >= plan.requests_per_client as u64 {
                    break;
                }
            }
        }
        let body = serde_json::to_string(&planned_batch(plan, client, iteration))
            .expect("wire request serializes");
        iteration += 1;
        // (Re)connect lazily; a shed or closed connection reconnects on
        // the next iteration — closed-loop clients retry forever.
        let conn = match stream.take() {
            Some(conn) => conn,
            None => match connect() {
                Ok(conn) => conn,
                Err(_) => {
                    tally.io_errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let mut conn = conn;
        let start = Instant::now();
        match post_batch(&mut conn, &plan.addr, &body) {
            Ok((status, keep)) => {
                let nanos = start.elapsed().as_nanos() as u64;
                match status {
                    200 => {
                        tally.ok += 1;
                        tally.latencies_ns.push(nanos);
                    }
                    503 => tally.shed += 1,
                    _ => tally.http_errors += 1,
                }
                if keep {
                    stream = Some(conn);
                }
            }
            Err(_) => {
                tally.io_errors += 1;
            }
        }
    }
    tally
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Fetches and strict-parses the server's `/metrics`; returns the
/// sample count.
fn scrape_metrics(addr: &str) -> io::Result<usize> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let response = read_response(&mut stream)?;
    if response.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("GET /metrics answered {}", response.status),
        ));
    }
    let samples = vup_obs::parse_prometheus_text(&response.body_text())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("metrics parse: {e}")))?;
    Ok(samples.len())
}

/// Runs the plan to completion and digests the results.
///
/// Errors only on harness-level failures (e.g. the final `/metrics`
/// scrape failing its strict parse); per-request failures are counted
/// in the report instead.
pub fn run(plan: &LoadPlan) -> io::Result<BenchReport> {
    let started = Instant::now();
    let deadline = plan
        .duration_ms
        .map(|ms| started + Duration::from_millis(ms));
    let issued = AtomicU64::new(0);
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.clients.max(1) as u64)
            .map(|client| {
                let issued = &issued;
                scope.spawn(move || {
                    let tally = client_loop(plan, client, deadline);
                    issued.fetch_add(
                        tally.ok + tally.shed + tally.http_errors + tally.io_errors,
                        Ordering::Relaxed,
                    );
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let sum: u128 = latencies.iter().map(|&n| u128::from(n)).sum();
    let to_us = |ns: u64| ns / 1_000;
    let latency_us = LatencyUs {
        p50: to_us(percentile(&latencies, 0.50)),
        p90: to_us(percentile(&latencies, 0.90)),
        p99: to_us(percentile(&latencies, 0.99)),
        max: to_us(latencies.last().copied().unwrap_or(0)),
        mean: to_us(if latencies.is_empty() {
            0
        } else {
            (sum / latencies.len() as u128) as u64
        }),
    };
    // Exponential µs bounds: 100µs … ~104s, then +Inf.
    let mut histogram = Vec::new();
    let mut bound_us: u64 = 100;
    for _ in 0..10 {
        let count = latencies.partition_point(|&ns| to_us(ns) <= bound_us) as u64;
        histogram.push(LatencyBucket {
            le_us: bound_us,
            count,
        });
        bound_us = bound_us.saturating_mul(4);
    }
    histogram.push(LatencyBucket {
        le_us: u64::MAX,
        count: latencies.len() as u64,
    });

    let ok: u64 = tallies.iter().map(|t| t.ok).sum();
    let shed: u64 = tallies.iter().map(|t| t.shed).sum();
    let http_errors: u64 = tallies.iter().map(|t| t.http_errors).sum();
    let io_errors: u64 = tallies.iter().map(|t| t.io_errors).sum();
    let metrics_samples = scrape_metrics(&plan.addr)?;
    let wall_secs = wall.as_secs_f64().max(1e-9);
    Ok(BenchReport {
        plan: plan.clone(),
        wall_ms: wall.as_millis() as u64,
        total: ok + shed + http_errors + io_errors,
        ok,
        shed,
        http_errors,
        io_errors,
        sustained_rps: ok as f64 / wall_secs,
        latency_us,
        histogram,
        metrics_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_batches_are_seed_deterministic_and_in_range() {
        let plan = LoadPlan {
            vehicle_pool: 13,
            batch_size: 5,
            ..LoadPlan::default()
        };
        let a = planned_batch(&plan, 2, 9);
        let b = planned_batch(&plan, 2, 9);
        let ids = |w: &WireRequest| w.requests.iter().map(|r| r.vehicle_id).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b), "same (seed, client, iteration)");
        assert!(a.requests.iter().all(|r| r.vehicle_id < 13));
        let c = planned_batch(&plan, 3, 9);
        assert_ne!(ids(&a), ids(&c), "clients draw distinct streams");
        let other = LoadPlan {
            seed: 8,
            ..plan.clone()
        };
        assert_ne!(
            ids(&a),
            ids(&planned_batch(&other, 2, 9)),
            "seed changes the stream"
        );
    }

    #[test]
    fn percentiles_on_small_sets() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[10], 0.99), 10);
        let sorted: Vec<u64> = (1..=100).collect();
        // Nearest-rank on the 0-based index: 0.5 * 99 rounds to 50.
        assert_eq!(percentile(&sorted, 0.50), 51);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
    }

    #[test]
    fn bench_report_round_trips_through_json() {
        let report = BenchReport {
            plan: LoadPlan::default(),
            wall_ms: 5000,
            total: 100,
            ok: 90,
            shed: 8,
            http_errors: 1,
            io_errors: 1,
            sustained_rps: 18.0,
            latency_us: LatencyUs {
                p50: 900,
                p90: 2000,
                p99: 5000,
                max: 9000,
                mean: 1200,
            },
            histogram: vec![LatencyBucket {
                le_us: 100,
                count: 0,
            }],
            metrics_samples: 42,
        };
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.ok, 90);
        assert_eq!(parsed.plan.seed, report.plan.seed);
        assert_eq!(parsed.latency_us.p99, 5000);
    }
}
