//! `vup` — command-line front end for the vehicle-usage-prediction
//! library.
//!
//! Gives a downstream user the three everyday operations without writing
//! Rust:
//!
//! ```text
//! vup simulate --vehicles 50 --seed 7 --id 3 --days 60   # dump daily CSV
//! vup predict  --vehicles 50 --seed 7 --id 3             # next-working-day forecast
//! vup evaluate --vehicles 50 --seed 7 --n 10             # fleet PE (paper pipeline)
//! vup serve-batch --vehicles 50 --ids 0,3,5 --horizon 3  # cached batch serving
//! ```
//!
//! Run with `cargo run --release --bin vup -- <subcommand> [flags]`.

use std::collections::HashMap;
use std::process::ExitCode;

use vehicle_usage_prediction::core::evaluate::evaluate_vehicle;
use vehicle_usage_prediction::core::fleet_eval::evaluate_fleet;
use vehicle_usage_prediction::core::levels::{compare_level_predictors, UsageLevel};
use vehicle_usage_prediction::dataprep::{describe, pipeline};
use vehicle_usage_prediction::prelude::*;

const USAGE: &str = "\
vup — per-vehicle utilization-hour forecasting (EDBT/ICDT-WS 2019 reproduction)

USAGE:
    vup <subcommand> [--flag value ...]

SUBCOMMANDS:
    simulate   Dump a vehicle's prepared daily records as CSV to stdout
               flags: --vehicles N --seed S --id I --days D (default 60)
    predict    Print the next-working-day forecast for one vehicle
               flags: --vehicles N --seed S --id I
    evaluate   Evaluate the paper pipeline over a fleet subsample
               flags: --vehicles N --seed S --n COUNT (default 10)
                      --scenario next-day|next-working-day
    levels     Classify next-day usage levels for one vehicle (paper §5)
               flags: --vehicles N --seed S --id I
    serve-batch
               Serve batches of multi-day forecasts through the caching
               prediction service (retrains on miss, serves on hit)
               flags: --vehicles N --seed S --ids 0,1,2 (or --n COUNT)
                      --horizon H (default 3) --repeat R (default 2)
                      --threads T (default 0 = one per core)
                      --model svr|linear|lasso|gbm|lv|ma
                      --metrics PATH|- : dump a metrics snapshot after the
                      last batch ('-' = stdout; a .json suffix selects the
                      JSON exporter, anything else Prometheus text)
    help       Show this message

Common defaults: --vehicles 50 --seed 7 --id 0
";

/// Minimal `--key value` flag parser (no external dependency).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{key}'"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} is missing its value"));
        };
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(flags)
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("flag --{name}: cannot parse '{raw}'")),
    }
}

fn build_fleet(flags: &HashMap<String, String>) -> Result<Fleet, String> {
    let n: usize = flag(flags, "vehicles", 50)?;
    let seed: u64 = flag(flags, "seed", 7)?;
    if n == 0 {
        return Err("--vehicles must be positive".into());
    }
    Ok(Fleet::generate(FleetConfig::small(n, seed)))
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let fleet = build_fleet(flags)?;
    let id = VehicleId(flag(flags, "id", 0_u32)?);
    let days: usize = flag(flags, "days", 60)?;
    let vehicle = fleet.vehicle(id).ok_or_else(|| {
        format!(
            "vehicle {} not in a fleet of {}",
            id.0,
            fleet.vehicles().len()
        )
    })?;
    let history = vehicle_usage_prediction::fleetsim::generator::generate_history(&fleet, id);
    let take = days.min(history.records.len());
    let table = pipeline::daily_records_to_table(&fleet, id, &history.records[..take])
        .map_err(|e| e.to_string())?;
    eprintln!(
        "# vehicle {} ({}), first {take} days; column profile:",
        id.0,
        vehicle.vtype.name()
    );
    eprintln!(
        "{}",
        describe::describe_text(&table).map_err(|e| e.to_string())?
    );
    print!(
        "{}",
        vehicle_usage_prediction::dataprep::csv::to_csv(&table)
    );
    Ok(())
}

fn cmd_predict(flags: &HashMap<String, String>) -> Result<(), String> {
    let fleet = build_fleet(flags)?;
    let id = VehicleId(flag(flags, "id", 0_u32)?);
    fleet.vehicle(id).ok_or_else(|| {
        format!(
            "vehicle {} not in a fleet of {}",
            id.0,
            fleet.vehicles().len()
        )
    })?;
    let config = PipelineConfig::default();
    let view = VehicleView::build(&fleet, id, Scenario::NextWorkingDay);
    if view.len() < config.train_window + 1 {
        return Err(format!(
            "vehicle {} has only {} working days; need more than {}",
            id.0,
            view.len(),
            config.train_window
        ));
    }
    let model = FittedPredictor::fit(&view, &config, view.len() - config.train_window, view.len())
        .map_err(|e| e.to_string())?;
    let hours = model
        .predict(&view, view.len() - 1)
        .map_err(|e| e.to_string())?;
    let last = view.slot(view.len() - 1);
    println!(
        "vehicle {}: last observed working day {} ({:.2} h)",
        id.0, last.date, last.hours
    );
    println!(
        "next-working-day forecast: {hours:.2} h ({} with {} ACF-selected lags)",
        model.label(),
        model.selected_lags().len()
    );
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let fleet = build_fleet(flags)?;
    let n: usize = flag(flags, "n", 10)?;
    let scenario = match flags.get("scenario").map(String::as_str) {
        None | Some("next-working-day") => Scenario::NextWorkingDay,
        Some("next-day") => Scenario::NextDay,
        Some(other) => return Err(format!("unknown scenario '{other}'")),
    };
    let config = PipelineConfig {
        scenario,
        eval_tail: Some(360),
        ..PipelineConfig::default()
    };
    let ids: Vec<VehicleId> = (0..fleet.vehicles().len().min(n) as u32)
        .map(VehicleId)
        .collect();
    eprintln!(
        "evaluating {} vehicles, scenario {}, SVR (K={}, w={})...",
        ids.len(),
        scenario.label(),
        config.k,
        config.train_window
    );
    let eval = evaluate_fleet(&fleet, &ids, &config, 0);
    for m in &eval.members {
        match &m.outcome {
            Ok(e) => println!(
                "vehicle {:>4}: PE {:>6.1}%  (MAE {:.2} h over {} days)",
                m.vehicle_id,
                e.percentage_error,
                e.mae,
                e.points.len()
            ),
            Err(err) => println!("vehicle {:>4}: skipped ({err})", m.vehicle_id),
        }
    }
    println!(
        "\nfleet mean PE: {:.1}% over {} vehicles ({} skipped)",
        eval.mean_percentage_error, eval.evaluated, eval.skipped
    );
    // Cross-check one vehicle sequentially (sanity against the parallel path).
    if let Some(first) = ids.first() {
        let view = VehicleView::build(&fleet, *first, scenario);
        if let Ok(e) = evaluate_vehicle(&view, &config) {
            debug_assert_eq!(
                Some(e.percentage_error),
                eval.members[0]
                    .outcome
                    .as_ref()
                    .ok()
                    .map(|m| m.percentage_error)
            );
        }
    }
    Ok(())
}

fn cmd_levels(flags: &HashMap<String, String>) -> Result<(), String> {
    let fleet = build_fleet(flags)?;
    let id = VehicleId(flag(flags, "id", 0_u32)?);
    fleet.vehicle(id).ok_or_else(|| {
        format!(
            "vehicle {} not in a fleet of {}",
            id.0,
            fleet.vehicles().len()
        )
    })?;
    let config = PipelineConfig {
        scenario: Scenario::NextDay,
        ..PipelineConfig::default()
    };
    let view = VehicleView::build(&fleet, id, Scenario::NextDay);
    let holdout = 150usize.min(view.len() / 4);
    let train_to = view.len() - holdout;
    if train_to < config.train_window {
        return Err(format!(
            "vehicle {} has too little history for level classification",
            id.0
        ));
    }
    let cmp = compare_level_predictors(&view, &config, train_to - config.train_window, train_to)
        .map_err(|e| e.to_string())?;
    println!(
        "vehicle {}: usage-level classification over the last {holdout} days",
        id.0
    );
    println!(
        "  softmax classifier     : accuracy {:>5.1}%  macro-F1 {:.2}",
        100.0 * cmp.classifier.accuracy,
        cmp.classifier.macro_f1
    );
    println!(
        "  discretized regression : accuracy {:>5.1}%",
        100.0 * cmp.discretized_regression.accuracy
    );
    println!(
        "  majority baseline      : accuracy {:>5.1}%",
        100.0 * cmp.majority.accuracy
    );
    println!("\nconfusion matrix (rows = actual, cols = predicted):");
    print!("{:>8}", "");
    for l in UsageLevel::ALL {
        print!("{:>8}", l.label());
    }
    println!();
    for (l, row) in UsageLevel::ALL.iter().zip(&cmp.classifier.confusion) {
        print!("{:>8}", l.label());
        for count in row {
            print!("{count:>8}");
        }
        println!();
    }
    Ok(())
}

fn cmd_serve_batch(flags: &HashMap<String, String>) -> Result<(), String> {
    use vehicle_usage_prediction::ml::gbm::GbmParams;
    use vehicle_usage_prediction::ml::lasso::LassoParams;

    let fleet = build_fleet(flags)?;
    let n: usize = flag(flags, "n", 5)?;
    let horizon: usize = flag(flags, "horizon", 3)?;
    let threads: usize = flag(flags, "threads", 0)?;
    let repeat: usize = flag(flags, "repeat", 2)?;
    let mut config = PipelineConfig::default();
    match flags.get("model").map(String::as_str) {
        None | Some("svr") => {} // the paper's best model is the default
        Some("linear") => config.model = ModelSpec::Learned(RegressorSpec::Linear),
        Some("lasso") => {
            config.model = ModelSpec::Learned(RegressorSpec::Lasso(LassoParams::default()));
        }
        Some("gbm") => {
            config.model = ModelSpec::Learned(RegressorSpec::Gbm(GbmParams::default()));
        }
        Some("lv") => config.model = ModelSpec::Baseline(BaselineSpec::LastValue),
        Some("ma") => config.model = ModelSpec::Baseline(BaselineSpec::MovingAverage(30)),
        Some(other) => return Err(format!("unknown model '{other}'")),
    }
    let ids: Vec<VehicleId> = match flags.get("ids") {
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map(VehicleId)
                    .map_err(|_| format!("flag --ids: cannot parse '{s}'"))
            })
            .collect::<Result<_, _>>()?,
        None => (0..fleet.vehicles().len().min(n) as u32)
            .map(VehicleId)
            .collect(),
    };
    if ids.is_empty() {
        return Err("no vehicles requested".into());
    }

    // Observability is free when off: without --metrics the registry is
    // disabled and every instrumented path in the service is a no-op.
    let metrics_dest = flags.get("metrics").cloned();
    let registry = if metrics_dest.is_some() {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let service = PredictionService::new_observed(&fleet, config, threads, &registry)
        .map_err(|e| e.to_string())?;
    let requests: Vec<BatchRequest> = ids
        .iter()
        .map(|&vehicle_id| BatchRequest {
            vehicle_id,
            horizon,
        })
        .collect();
    let fmt_hours = |hours: &[f64]| {
        hours
            .iter()
            .map(|h| format!("{h:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    for batch in 1..=repeat {
        println!("batch {batch}:");
        for outcome in service.serve_batch(&requests, None) {
            match outcome {
                ServeOutcome::RetrainedThenServed(f) => println!(
                    "  vehicle {:>4}: retrained @ slot {}, forecast: {} h",
                    f.vehicle_id,
                    f.trained_at,
                    fmt_hours(&f.hours)
                ),
                ServeOutcome::Served(f) => println!(
                    "  vehicle {:>4}: cache hit (trained @ slot {}), forecast: {} h",
                    f.vehicle_id,
                    f.trained_at,
                    fmt_hours(&f.hours)
                ),
                ServeOutcome::Skipped { vehicle_id, reason } => {
                    println!("  vehicle {vehicle_id:>4}: skipped ({reason})");
                }
            }
        }
    }
    println!(
        "\nmodel cache holds {} fitted model(s) after {repeat} batch(es)",
        service.store().len()
    );
    if let Some(dest) = metrics_dest {
        let snapshot = registry.snapshot();
        let rendered = if dest.ends_with(".json") {
            snapshot.to_json()
        } else {
            snapshot.to_prometheus_text()
        };
        if dest == "-" {
            print!("{rendered}");
        } else {
            std::fs::write(&dest, rendered)
                .map_err(|e| format!("cannot write metrics to '{dest}': {e}"))?;
            eprintln!("metrics snapshot written to {dest}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        "simulate" | "predict" | "evaluate" | "levels" | "serve-batch" => match parse_flags(rest) {
            Err(e) => Err(e),
            Ok(flags) => match cmd.as_str() {
                "simulate" => cmd_simulate(&flags),
                "predict" => cmd_predict(&flags),
                "levels" => cmd_levels(&flags),
                "serve-batch" => cmd_serve_batch(&flags),
                _ => cmd_evaluate(&flags),
            },
        },
        other => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `vup help` for usage");
            ExitCode::FAILURE
        }
    }
}
