//! Per-unit usage processes: the latent model behind daily utilization.
//!
//! Each unit's daily utilization hours are generated as
//!
//! ```text
//! H_t = activity_t · level_t · base · dow_t · season_t · regime_t · noise_t
//! ```
//!
//! where `activity_t ∈ {0, 1}` is a Bernoulli working-day indicator whose
//! probability depends on weekday, holidays, season and regime; `level_t`
//! is a slowly drifting AR(1) intensity (non-stationarity within regimes);
//! `dow_t` is a per-unit weekday profile (the source of the weekly ACF
//! peaks of Fig. 2); `season_t` is a hemisphere-aware annual modulation;
//! and `regime_t` switches between job-site regimes every few months (the
//! level shifts visible in Fig. 1d). The decomposition makes part of the
//! variance *learnable* from lagged values and calendar features — which
//! is exactly what the paper's per-vehicle regressors exploit — while the
//! multiplicative noise bounds achievable accuracy.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::calendar::{Date, Season};
use crate::fleet::Vehicle;
use crate::holidays::{Country, Hemisphere};
use crate::types::TypeProfile;
use crate::weather;

/// Multiplier applied to the working probability on holidays ("skeleton
/// crew" operation).
const HOLIDAY_ACTIVITY_FACTOR: f64 = 0.05;

/// AR(1) coefficient of the slowly drifting intensity level.
const LEVEL_PHI: f64 = 0.97;
/// Innovation scale of the intensity level (log scale).
const LEVEL_SIGMA: f64 = 0.04;
/// Day-to-day multiplicative noise (log scale) — the irreducible error.
const NOISE_SIGMA: f64 = 0.10;

/// Deterministic per-unit parameters derived from the fleet seed.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitParams {
    /// Weekday activity multipliers, Monday-first. Weekend slots are
    /// interpreted through the country's weekend convention at generation
    /// time.
    pub dow_activity: [f64; 7],
    /// Weekday hour multipliers (e.g. short Fridays), Monday-first.
    pub dow_hours: [f64; 7],
    /// Unit-level intensity multiplier (combines model and unit effects).
    pub intensity: f64,
    /// Amplitude of the seasonal modulation in `[0, 0.45]`.
    pub seasonal_amplitude: f64,
    /// Job-site regimes as `(start_offset_days, activity_mult, hours_mult)`
    /// sorted by start offset; the first starts at 0.
    pub regimes: Vec<(usize, f64, f64)>,
}

/// A unit's usage process.
#[derive(Debug, Clone)]
pub struct UnitUsageModel {
    params: UnitParams,
    profile: TypeProfile,
    hemisphere: Hemisphere,
    rng_seed: u64,
    has_digging: bool,
    /// `Some(fleet_seed)` when weather effects are enabled for this fleet.
    weather_seed: Option<u64>,
}

/// Derives the deterministic per-unit RNG seed.
fn unit_seed(fleet_seed: u64, vehicle_id: u32, stream: u64) -> u64 {
    // SplitMix64-style mixing keeps distinct units decorrelated.
    let mut z = fleet_seed
        ^ (vehicle_id as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ stream.wrapping_mul(0x94d0_49bb_1331_11eb);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl UnitUsageModel {
    /// Builds the usage model of one vehicle deterministically from the
    /// fleet seed, its roster entry, its country, and the horizon length
    /// (needed to lay out regimes).
    pub fn new(fleet_seed: u64, vehicle: &Vehicle, country: &Country, n_days: usize) -> Self {
        Self::with_weather(fleet_seed, vehicle, country, n_days, false)
    }

    /// Like [`UnitUsageModel::new`], optionally enabling the weather
    /// suppression of the paper's §5 future-work extension.
    pub fn with_weather(
        fleet_seed: u64,
        vehicle: &Vehicle,
        country: &Country,
        n_days: usize,
        weather_effects: bool,
    ) -> Self {
        let profile = vehicle.vtype.profile();
        let mut rng = StdRng::seed_from_u64(unit_seed(fleet_seed, vehicle.id.0, 1));

        // Model-level effect: shared by all units of (type, model).
        let mut model_rng = StdRng::seed_from_u64(unit_seed(
            fleet_seed,
            u32::MAX - vehicle.model as u32,
            1000 + vehicle.vtype.index() as u64,
        ));
        let model_mult = lognormal(&mut model_rng, 0.0, 0.35);

        let unit_mult = lognormal(&mut rng, 0.0, 0.30);

        // Weekday profile. Inside an *active* job-site regime a unit works
        // its scheduled weekdays reliably (construction crews run fixed
        // schedules); the low overall usage rates of the paper (refuse
        // compactors used ~36 % of days) come from parked regimes between
        // jobs, not from coin-flip weekdays.
        let mut dow_activity = [0.0_f64; 7];
        let mut dow_hours = [1.0_f64; 7];
        for d in 0..5 {
            dow_activity[d] = match rng.random::<f64>() {
                u if u < 0.05 => 0.05, // this weekday is never scheduled
                u if u < 0.12 => 0.72,
                _ => 0.94 + 0.05 * rng.random::<f64>(),
            };
            // Hour multipliers differ per weekday (short Fridays, long
            // Mondays, …) — deterministic structure calendar features can
            // learn but the LV baseline cannot.
            dow_hours[d] = if rng.random::<f64>() < 0.2 {
                0.45 + 0.15 * rng.random::<f64>() // recurring half-day
            } else {
                0.8 + 0.45 * rng.random::<f64>()
            };
        }
        for d in 5..7 {
            dow_activity[d] = match rng.random::<f64>() {
                u if u < 0.55 => 0.02, // never works weekends
                u if u < 0.90 => 0.12,
                _ => 0.5, // weekend-heavy operation (e.g. municipal)
            };
            dow_hours[d] = 0.5 + 0.4 * rng.random::<f64>();
        }

        let seasonal_amplitude = 0.1 + 0.35 * rng.random::<f64>();

        // Job-site regimes: contiguous segments, either *active*
        // (scheduled weekdays are worked) or *parked* between jobs
        // (near-zero activity). The type's workday probability sets the
        // long-run active fraction.
        let active_frac = (profile.workday_prob / 0.62).clamp(0.2, 0.95);
        let mut regimes = Vec::new();
        let mut offset = 0usize;
        while offset < n_days {
            let parked = rng.random::<f64>() >= active_frac;
            let (activity_mult, hours_mult, duration) = if parked {
                (
                    0.01 + 0.05 * rng.random::<f64>(),
                    0.8,
                    rng.random_range(30..150),
                )
            } else {
                (
                    0.88 + 0.17 * rng.random::<f64>(),
                    0.6 + 0.8 * rng.random::<f64>(),
                    rng.random_range(45..240),
                )
            };
            regimes.push((offset, activity_mult, hours_mult));
            offset += duration;
        }

        UnitUsageModel {
            params: UnitParams {
                dow_activity,
                dow_hours,
                intensity: model_mult * unit_mult,
                seasonal_amplitude,
                regimes,
            },
            profile,
            hemisphere: country.hemisphere,
            rng_seed: unit_seed(fleet_seed, vehicle.id.0, 2),
            has_digging: vehicle.vtype.has_digging_pressure(),
            weather_seed: weather_effects.then_some(fleet_seed),
        }
    }

    /// Borrow of the derived deterministic parameters.
    pub fn params(&self) -> &UnitParams {
        &self.params
    }

    /// Whether the unit reports the digging-pressure channel.
    pub fn has_digging(&self) -> bool {
        self.has_digging
    }

    /// Seasonal activity/hours multiplier for a date (1 ± amplitude,
    /// peaking mid-summer of the unit's hemisphere).
    pub fn seasonal_factor(&self, date: Date) -> f64 {
        let doy = date.day_of_year() as f64;
        // Day-of-year of the local mid-summer peak.
        let peak = match self.hemisphere {
            Hemisphere::North => 196.0, // mid July
            Hemisphere::South => 15.0,  // mid January
        };
        let phase = 2.0 * std::f64::consts::PI * (doy - peak) / 365.25;
        1.0 + self.params.seasonal_amplitude * phase.cos()
    }

    /// Season of `date` as experienced locally (hemisphere-adjusted).
    pub fn local_season(&self, date: Date) -> Season {
        match self.hemisphere {
            Hemisphere::North => date.season_north(),
            Hemisphere::South => date.season_north().opposite(),
        }
    }

    /// Regime multipliers `(activity, hours)` active on day `offset`.
    pub fn regime_at(&self, offset: usize) -> (f64, f64) {
        let mut current = (1.0, 1.0);
        for &(start, a, h) in &self.params.regimes {
            if start <= offset {
                current = (a, h);
            } else {
                break;
            }
        }
        current
    }

    /// Generates the full daily utilization series over
    /// `[start, start + n_days)`, using the country's calendar for
    /// holidays. Deterministic for a given model instance.
    pub fn generate_hours(&self, country: &Country, start: Date, n_days: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.rng_seed);
        let level_noise = Normal::new(0.0, LEVEL_SIGMA).expect("valid sigma");
        let day_noise = Normal::new(0.0, NOISE_SIGMA).expect("valid sigma");

        let mut log_level = 0.0_f64; // AR(1) on log scale
        let mut out = Vec::with_capacity(n_days);
        for i in 0..n_days {
            let date = start.plus_days(i as i64);
            log_level = LEVEL_PHI * log_level + level_noise.sample(&mut rng);
            let level = log_level.exp();

            let (regime_act, regime_hours) = self.regime_at(i);
            let season = self.seasonal_factor(date);
            let wd = date.weekday().index();

            // The type's long-run workday probability enters through the
            // parked/active regime mix (see `new`), not here: inside an
            // active regime scheduled weekdays are worked reliably.
            // Seasonality modulates activity mildly (its full amplitude
            // applies to the worked hours below).
            let season_act = 1.0 + 0.4 * (season - 1.0);
            let mut p = self.params.dow_activity[wd] * season_act * regime_act;
            if country.is_holiday(date) {
                p *= HOLIDAY_ACTIVITY_FACTOR;
            }
            // Weather extension (paper §5): rained-out or frozen sites
            // mostly stand down; drizzle trims the worked hours below.
            let mut weather_hours_factor = 1.0;
            if let Some(ws) = self.weather_seed {
                let w = weather::weather_for(ws, country, date);
                if !w.workable {
                    p *= 0.1;
                } else if w.precip_mm > 1.0 {
                    weather_hours_factor = 0.85;
                }
            }
            let p = p.clamp(0.0, 0.98);

            if rng.random::<f64>() >= p {
                out.push(0.0);
                continue;
            }

            let mut hours = self.profile.median_active_hours
                * self.params.intensity
                * self.params.dow_hours[wd]
                * season
                * regime_hours
                * level
                * weather_hours_factor
                * day_noise.sample(&mut rng).exp();
            // Occasional multi-shift day produces the 24 h tail of Fig. 1a.
            if rng.random::<f64>() < self.profile.tail_prob {
                hours *= 1.8 + 1.4 * rng.random::<f64>();
            }
            out.push(hours.clamp(0.05, 24.0));
        }
        out
    }
}

/// Log-normal sample with median `exp(mu)` and shape `sigma`.
fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let n = Normal::new(mu, sigma).expect("valid sigma");
    n.sample(rng).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::SIM_START;
    use crate::fleet::{Fleet, FleetConfig, VehicleId};
    use crate::types::VehicleType;

    fn model_for(fleet: &Fleet, id: u32, n_days: usize) -> (UnitUsageModel, Country) {
        let v = fleet.vehicle(VehicleId(id)).unwrap();
        let c = fleet.country_of(v).clone();
        (UnitUsageModel::new(fleet.config().seed, v, &c, n_days), c)
    }

    #[test]
    fn series_is_deterministic() {
        let fleet = Fleet::generate(FleetConfig::small(10, 77));
        let (m1, c1) = model_for(&fleet, 3, 400);
        let (m2, c2) = model_for(&fleet, 3, 400);
        assert_eq!(
            m1.generate_hours(&c1, SIM_START, 400),
            m2.generate_hours(&c2, SIM_START, 400)
        );
    }

    #[test]
    fn different_units_have_different_series() {
        let fleet = Fleet::generate(FleetConfig::small(10, 77));
        let (m1, c1) = model_for(&fleet, 1, 200);
        let (m2, c2) = model_for(&fleet, 2, 200);
        assert_ne!(
            m1.generate_hours(&c1, SIM_START, 200),
            m2.generate_hours(&c2, SIM_START, 200)
        );
    }

    #[test]
    fn hours_stay_in_physical_range() {
        let fleet = Fleet::generate(FleetConfig::small(40, 5));
        for id in 0..40 {
            let (m, c) = model_for(&fleet, id, 500);
            for h in m.generate_hours(&c, SIM_START, 500) {
                assert!((0.0..=24.0).contains(&h), "hours {h} out of range");
            }
        }
    }

    #[test]
    fn weekly_structure_is_present() {
        // Averaged over many units, weekday activity should exceed weekend
        // activity (Sat/Sun via the dominant SatSun convention).
        let fleet = Fleet::generate(FleetConfig::small(60, 11));
        let mut weekday_active = 0usize;
        let mut weekday_total = 0usize;
        let mut weekend_active = 0usize;
        let mut weekend_total = 0usize;
        for id in 0..60 {
            let (m, c) = model_for(&fleet, id, 364);
            let hours = m.generate_hours(&c, SIM_START, 364);
            for (i, &h) in hours.iter().enumerate() {
                let wd = SIM_START.plus_days(i as i64).weekday().index();
                if wd < 5 {
                    weekday_total += 1;
                    weekday_active += (h > 0.0) as usize;
                } else {
                    weekend_total += 1;
                    weekend_active += (h > 0.0) as usize;
                }
            }
        }
        let weekday_rate = weekday_active as f64 / weekday_total as f64;
        let weekend_rate = weekend_active as f64 / weekend_total as f64;
        assert!(
            weekday_rate > 2.0 * weekend_rate,
            "weekday {weekday_rate:.3} vs weekend {weekend_rate:.3}"
        );
    }

    #[test]
    fn seasonal_factor_peaks_locally() {
        let fleet = Fleet::generate(FleetConfig::small(30, 13));
        let (m, _) = model_for(&fleet, 0, 100);
        let july = Date::new(2016, 7, 15).unwrap();
        let january = Date::new(2016, 1, 15).unwrap();
        match m.local_season(july) {
            Season::Summer => {
                // Northern unit: July factor above January factor.
                assert!(m.seasonal_factor(july) > m.seasonal_factor(january));
            }
            _ => {
                assert!(m.seasonal_factor(july) < m.seasonal_factor(january));
            }
        }
    }

    #[test]
    fn regimes_cover_horizon_and_lookup_is_piecewise() {
        let fleet = Fleet::generate(FleetConfig::small(5, 21));
        let (m, _) = model_for(&fleet, 0, 1000);
        let regimes = &m.params().regimes;
        assert_eq!(regimes[0].0, 0, "first regime starts at day 0");
        for w in regimes.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Lookup matches the segment containing the offset.
        let (a, h) = m.regime_at(regimes[0].0);
        assert_eq!((a, h), (regimes[0].1, regimes[0].2));
        if regimes.len() > 1 {
            let (a, h) = m.regime_at(regimes[1].0 + 1);
            assert_eq!((a, h), (regimes[1].1, regimes[1].2));
        }
    }

    #[test]
    fn holiday_suppression_reduces_december_usage() {
        // Among northern units with christmas shutdown, Dec 24 – Jan 2
        // activity should be far below the annual mean.
        let fleet = Fleet::generate(FleetConfig::small(80, 31));
        let mut shutdown_active = 0usize;
        let mut shutdown_days = 0usize;
        let mut normal_active = 0usize;
        let mut normal_days = 0usize;
        for id in 0..80 {
            let v = fleet.vehicle(VehicleId(id)).unwrap();
            let c = fleet.country_of(v);
            if !c.christmas_shutdown {
                continue;
            }
            let m = UnitUsageModel::new(fleet.config().seed, v, c, 730);
            let hours = m.generate_hours(c, SIM_START, 730);
            for (i, &h) in hours.iter().enumerate() {
                let date = SIM_START.plus_days(i as i64);
                let in_shutdown =
                    (date.month == 12 && date.day >= 24) || (date.month == 1 && date.day <= 2);
                if in_shutdown {
                    shutdown_days += 1;
                    shutdown_active += (h > 0.0) as usize;
                } else {
                    normal_days += 1;
                    normal_active += (h > 0.0) as usize;
                }
            }
        }
        assert!(shutdown_days > 0 && normal_days > 0);
        let shutdown_rate = shutdown_active as f64 / shutdown_days as f64;
        let normal_rate = normal_active as f64 / normal_days as f64;
        assert!(
            shutdown_rate < 0.25 * normal_rate,
            "shutdown {shutdown_rate:.3} vs normal {normal_rate:.3}"
        );
    }

    #[test]
    fn weather_effects_suppress_non_workable_days() {
        use crate::weather;
        let fleet = Fleet::generate(FleetConfig::small(10, 99));
        let v = fleet.vehicle(VehicleId(0)).unwrap();
        let c = fleet.country_of(v);
        let plain = UnitUsageModel::new(fleet.config().seed, v, c, 730);
        let stormy = UnitUsageModel::with_weather(fleet.config().seed, v, c, 730, true);
        let h_plain = plain.generate_hours(c, SIM_START, 730);
        let h_stormy = stormy.generate_hours(c, SIM_START, 730);
        // On non-workable days the weather-aware series must be mostly idle.
        let mut bad_days = 0usize;
        let mut bad_active = 0usize;
        for i in 0..730 {
            let date = SIM_START.plus_days(i as i64);
            let w = weather::weather_for(fleet.config().seed, c, date);
            if !w.workable {
                bad_days += 1;
                bad_active += (h_stormy[i as usize] > 0.0) as usize;
            }
        }
        assert!(bad_days > 5, "no shutdown-grade weather in 2 years?");
        assert!(
            (bad_active as f64) < 0.35 * bad_days as f64,
            "{bad_active}/{bad_days} non-workable days still active"
        );
        // Weather-aware generation must not exceed the plain activity level.
        let active = |xs: &[f64]| xs.iter().filter(|&&h| h > 0.0).count();
        assert!(active(&h_stormy) <= active(&h_plain));
    }

    #[test]
    fn type_profiles_shape_the_series() {
        // Compare median active hours between graders and coring machines
        // across a moderate fleet.
        let fleet = Fleet::generate(FleetConfig::small(2239, 3));
        let mut grader_hours = Vec::new();
        let mut coring_hours = Vec::new();
        for v in fleet.vehicles().iter() {
            let relevant = match v.vtype {
                VehicleType::Grader => &mut grader_hours,
                VehicleType::CoringMachine => &mut coring_hours,
                _ => continue,
            };
            let c = fleet.country_of(v);
            let m = UnitUsageModel::new(fleet.config().seed, v, c, 365);
            relevant.extend(
                m.generate_hours(c, SIM_START, 365)
                    .into_iter()
                    .filter(|&h| h > 0.0),
            );
            if grader_hours.len() > 3000 && coring_hours.len() > 3000 {
                break;
            }
        }
        let med = |xs: &mut Vec<f64>| {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        let grader_med = med(&mut grader_hours);
        let coring_med = med(&mut coring_hours);
        assert!(grader_med > 4.0, "grader median {grader_med}");
        assert!(coring_med < 1.5, "coring median {coring_med}");
        assert!(grader_med > 3.0 * coring_med);
    }
}
