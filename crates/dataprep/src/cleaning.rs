//! Step (i) — cleaning of raw 10-minute CAN reports.
//!
//! Handles exactly the field defects the connectivity model injects:
//! duplicated uploads, physically impossible glitch values, and missing
//! channel values. Glitches are nulled by per-channel validity ranges and
//! missing values are imputed by within-day linear interpolation (falling
//! back to the nearest observed value at the edges).

use vup_fleetsim::canbus::RawReport;

/// Per-channel physical validity ranges `(min, max)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidityRules {
    /// Fuel level, percent.
    pub fuel_level_pct: (f64, f64),
    /// Engine speed, rpm.
    pub engine_rpm: (f64, f64),
    /// Oil pressure, kPa.
    pub oil_pressure_kpa: (f64, f64),
    /// Coolant temperature, °C.
    pub coolant_temp_c: (f64, f64),
    /// Fuel rate, litres/hour.
    pub fuel_rate_lph: (f64, f64),
    /// Ground speed, km/h.
    pub speed_kmh: (f64, f64),
    /// Engine load, percent.
    pub load_pct: (f64, f64),
    /// Digging pressure, kPa.
    pub digging_pressure_kpa: (f64, f64),
    /// Pump-drive temperature, °C.
    pub pump_drive_temp_c: (f64, f64),
    /// Oil-tank temperature, °C.
    pub oil_tank_temp_c: (f64, f64),
}

impl Default for ValidityRules {
    fn default() -> Self {
        ValidityRules {
            fuel_level_pct: (0.0, 100.0),
            engine_rpm: (0.0, 4000.0),
            oil_pressure_kpa: (0.0, 1200.0),
            coolant_temp_c: (-40.0, 130.0),
            fuel_rate_lph: (0.0, 200.0),
            speed_kmh: (0.0, 80.0),
            load_pct: (0.0, 100.0),
            digging_pressure_kpa: (0.0, 50_000.0),
            pump_drive_temp_c: (-40.0, 150.0),
            oil_tank_temp_c: (-40.0, 150.0),
        }
    }
}

/// What the cleaning pass changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleaningStats {
    /// Duplicated reports removed.
    pub duplicates_removed: usize,
    /// Out-of-range values nulled.
    pub glitches_nulled: usize,
    /// Missing values filled by interpolation.
    pub values_imputed: usize,
}

/// Cleans one day's report stream in three passes: dedup (same minute),
/// range-rule nulling, and within-day interpolation of missing channel
/// values. Reports are also sorted by minute (uploads can arrive
/// out of order).
pub fn clean_day(
    mut reports: Vec<RawReport>,
    rules: &ValidityRules,
) -> (Vec<RawReport>, CleaningStats) {
    let mut stats = CleaningStats::default();
    if reports.is_empty() {
        return (reports, stats);
    }

    // Sort by minute and remove exact-minute duplicates (keep the first).
    reports.sort_by_key(|r| r.minute);
    let before = reports.len();
    reports.dedup_by_key(|r| r.minute);
    stats.duplicates_removed = before - reports.len();

    // Null out-of-range values.
    macro_rules! apply_rule {
        ($field:ident) => {
            for r in reports.iter_mut() {
                if let Some(v) = r.$field {
                    let (lo, hi) = rules.$field;
                    if !(lo..=hi).contains(&v) || !v.is_finite() {
                        r.$field = None;
                        stats.glitches_nulled += 1;
                    }
                }
            }
        };
    }
    apply_rule!(fuel_level_pct);
    apply_rule!(engine_rpm);
    apply_rule!(oil_pressure_kpa);
    apply_rule!(coolant_temp_c);
    apply_rule!(fuel_rate_lph);
    apply_rule!(speed_kmh);
    apply_rule!(load_pct);
    apply_rule!(digging_pressure_kpa);
    apply_rule!(pump_drive_temp_c);
    apply_rule!(oil_tank_temp_c);

    // Interpolate missing values within the day, channel by channel.
    macro_rules! impute {
        ($field:ident) => {{
            let series: Vec<Option<f64>> = reports.iter().map(|r| r.$field).collect();
            // Only impute channels the vehicle actually reports (skip
            // all-None channels like digging pressure on a compactor).
            if series.iter().any(Option::is_some) {
                let filled = interpolate(&series);
                for (r, v) in reports.iter_mut().zip(filled) {
                    if r.$field.is_none() && v.is_some() {
                        r.$field = v;
                        stats.values_imputed += 1;
                    }
                }
            }
        }};
    }
    impute!(fuel_level_pct);
    impute!(engine_rpm);
    impute!(oil_pressure_kpa);
    impute!(coolant_temp_c);
    impute!(fuel_rate_lph);
    impute!(speed_kmh);
    impute!(load_pct);
    impute!(digging_pressure_kpa);
    impute!(pump_drive_temp_c);
    impute!(oil_tank_temp_c);

    (reports, stats)
}

/// Linear interpolation over `None` gaps; edge gaps take the nearest
/// observed value. All-`None` input comes back unchanged.
pub fn interpolate(series: &[Option<f64>]) -> Vec<Option<f64>> {
    let n = series.len();
    let mut out = series.to_vec();
    let observed: Vec<usize> = (0..n).filter(|&i| series[i].is_some()).collect();
    if observed.is_empty() {
        return out;
    }
    // Leading edge.
    let first = observed[0];
    for slot in out.iter_mut().take(first) {
        *slot = series[first];
    }
    // Trailing edge.
    let last = *observed.last().expect("non-empty");
    for slot in out.iter_mut().skip(last + 1) {
        *slot = series[last];
    }
    // Interior gaps.
    for w in observed.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b - a <= 1 {
            continue;
        }
        let va = series[a].expect("observed");
        let vb = series[b].expect("observed");
        for (offset, slot) in out[(a + 1)..b].iter_mut().enumerate() {
            let t = (offset + 1) as f64 / (b - a) as f64;
            *slot = Some(va + (vb - va) * t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(minute: u16, rpm: Option<f64>) -> RawReport {
        RawReport {
            day: 17_000,
            minute,
            engine_on: true,
            fuel_level_pct: Some(50.0),
            engine_rpm: rpm,
            oil_pressure_kpa: Some(300.0),
            coolant_temp_c: Some(85.0),
            fuel_rate_lph: Some(10.0),
            speed_kmh: Some(5.0),
            load_pct: Some(45.0),
            digging_pressure_kpa: None,
            pump_drive_temp_c: Some(55.0),
            oil_tank_temp_c: Some(48.0),
        }
    }

    #[test]
    fn interpolation_basics() {
        assert_eq!(
            interpolate(&[Some(1.0), None, Some(3.0)]),
            vec![Some(1.0), Some(2.0), Some(3.0)]
        );
        assert_eq!(
            interpolate(&[None, Some(4.0), None]),
            vec![Some(4.0), Some(4.0), Some(4.0)]
        );
        assert_eq!(interpolate(&[None, None]), vec![None, None]);
        assert_eq!(
            interpolate(&[Some(0.0), None, None, Some(3.0)]),
            vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0)]
        );
    }

    #[test]
    fn duplicates_are_removed_and_order_restored() {
        let reports = vec![
            report(30, Some(1200.0)),
            report(10, Some(1000.0)),
            report(10, Some(1000.0)),
        ];
        let (clean, stats) = clean_day(reports, &ValidityRules::default());
        assert_eq!(clean.len(), 2);
        assert_eq!(stats.duplicates_removed, 1);
        assert!(clean[0].minute < clean[1].minute);
    }

    #[test]
    fn glitches_are_nulled_then_imputed() {
        let reports = vec![
            report(10, Some(1000.0)),
            report(20, Some(65_535.0)), // stuck CAN word, out of range
            report(30, Some(1400.0)),
        ];
        let (clean, stats) = clean_day(reports, &ValidityRules::default());
        assert_eq!(stats.glitches_nulled, 1);
        assert_eq!(stats.values_imputed, 1);
        // Interpolated between the neighbours.
        assert_eq!(clean[1].engine_rpm, Some(1200.0));
    }

    #[test]
    fn missing_channel_everywhere_stays_missing() {
        let reports = vec![report(10, Some(900.0)), report(20, Some(950.0))];
        // digging_pressure is None on both reports (not fitted).
        let (clean, stats) = clean_day(reports, &ValidityRules::default());
        assert!(clean.iter().all(|r| r.digging_pressure_kpa.is_none()));
        assert_eq!(stats.values_imputed, 0);
    }

    #[test]
    fn non_finite_values_are_glitches() {
        let mut r = report(10, Some(f64::NAN));
        r.coolant_temp_c = Some(f64::INFINITY);
        let (clean, stats) =
            clean_day(vec![r, report(20, Some(1000.0))], &ValidityRules::default());
        assert!(stats.glitches_nulled >= 2);
        assert!(clean[0].engine_rpm.unwrap().is_finite());
    }

    #[test]
    fn empty_stream_passes_through() {
        let (clean, stats) = clean_day(Vec::new(), &ValidityRules::default());
        assert!(clean.is_empty());
        assert_eq!(stats, CleaningStats::default());
    }

    #[test]
    fn clean_stream_is_untouched() {
        let reports: Vec<RawReport> = (1..=6)
            .map(|i| report(i * 10, Some(1000.0 + i as f64)))
            .collect();
        let (clean, stats) = clean_day(reports.clone(), &ValidityRules::default());
        assert_eq!(clean, reports);
        assert_eq!(stats, CleaningStats::default());
    }
}
