//! Scenario-filtered per-vehicle views of the prepared daily data.
//!
//! A [`VehicleView`] is the bridge between the prepared daily records and
//! the windowing machinery: a sequence of *slots*, each referencing one
//! day of the scenario's series (all days for next-day; working days only
//! for next-working-day), carrying the utilization hours, the aggregated
//! CAN channels and the encoded calendar context of that day.

use vup_dataprep::enrich::{day_context, encode_context, CONTEXT_FEATURE_COUNT};
use vup_dataprep::pipeline::can_channel_values;
use vup_fleetsim::calendar::Date;
use vup_fleetsim::fleet::{Fleet, VehicleId};
use vup_fleetsim::generator::{self, DailyRecord, VehicleHistory};
use vup_fleetsim::weather::{encode_weather, weather_for};

use crate::scenario::Scenario;

/// One slot of a scenario series.
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Absolute day index of the underlying day.
    pub day: i64,
    /// Calendar date of the underlying day.
    pub date: Date,
    /// Daily utilization hours (the target variable).
    pub hours: f64,
    /// Aggregated CAN channels of the day, in
    /// [`vup_dataprep::pipeline::CAN_CHANNEL_NAMES`] order.
    pub can: [f64; 10],
    /// Encoded calendar context of the day
    /// ([`vup_dataprep::enrich::encode_context`]).
    pub calendar: [f64; CONTEXT_FEATURE_COUNT],
    /// Encoded weather of the day
    /// ([`vup_fleetsim::weather::encode_weather`]); predictive only when
    /// the fleet was generated with `weather_effects = true`.
    pub weather: [f64; 3],
}

/// A vehicle's scenario-filtered series of slots.
#[derive(Debug, Clone)]
pub struct VehicleView {
    /// The vehicle this view belongs to.
    pub vehicle_id: VehicleId,
    /// The scenario that filtered the series.
    pub scenario: Scenario,
    slots: Vec<Slot>,
}

impl VehicleView {
    /// Builds the view for one vehicle from freshly generated daily data
    /// (fast path).
    pub fn build(fleet: &Fleet, id: VehicleId, scenario: Scenario) -> VehicleView {
        let history = generator::generate_history(fleet, id);
        Self::from_history(fleet, &history, scenario)
    }

    /// Builds the view from an existing history (avoids regenerating when
    /// several scenarios or configs share one vehicle).
    pub fn from_history(
        fleet: &Fleet,
        history: &VehicleHistory,
        scenario: Scenario,
    ) -> VehicleView {
        Self::from_records(fleet, &history.vehicle, &history.records, scenario)
    }

    /// Builds the view straight from a slice of daily records — the
    /// entry point for streaming deployments (`vup-ingest`), where
    /// records come from incremental aggregation of a telemetry log
    /// rather than a regenerated [`VehicleHistory`]. The records must
    /// be in day order.
    pub fn from_records(
        fleet: &Fleet,
        vehicle: &vup_fleetsim::fleet::Vehicle,
        records: &[DailyRecord],
        scenario: Scenario,
    ) -> VehicleView {
        let country = fleet.country_of(vehicle);
        let slots = records
            .iter()
            .filter(|r| scenario.includes(r.hours))
            .map(|r: &DailyRecord| {
                let ctx = day_context(r.date, country);
                let encoded = encode_context(&ctx);
                let mut calendar = [0.0; CONTEXT_FEATURE_COUNT];
                calendar.copy_from_slice(&encoded);
                let weather = encode_weather(&weather_for(fleet.config().seed, country, r.date));
                Slot {
                    day: r.day,
                    date: r.date,
                    hours: r.hours,
                    can: can_channel_values(r),
                    calendar,
                    weather,
                }
            })
            .collect();
        VehicleView {
            vehicle_id: vehicle.id,
            scenario,
            slots,
        }
    }

    /// Number of slots in the scenario series.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the view holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Borrow of slot `i`.
    pub fn slot(&self, i: usize) -> &Slot {
        &self.slots[i]
    }

    /// All slots in series order.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// The utilization-hours series over the slots.
    pub fn hours(&self) -> Vec<f64> {
        self.slots.iter().map(|s| s.hours).collect()
    }

    /// Hours over a slot range (used for per-window ACF computation).
    pub fn hours_range(&self, from: usize, to: usize) -> Vec<f64> {
        self.slots[from..to].iter().map(|s| s.hours).collect()
    }

    /// A copy of this view keeping only the first `n` slots (all of them
    /// when `n >= len`). `vup-serve` uses this to replay the series "as
    /// of" an earlier day when exercising cache invalidation.
    pub fn truncated(&self, n: usize) -> VehicleView {
        VehicleView {
            vehicle_id: self.vehicle_id,
            scenario: self.scenario,
            slots: self.slots[..n.min(self.slots.len())].to_vec(),
        }
    }

    /// A copy of the last `keep` slots with spare capacity for `extra`
    /// appended slots — the forecast path only needs the model's lag
    /// history, not the whole series, so this avoids cloning hundreds of
    /// slots per request. Relative indexing from the end is preserved.
    pub(crate) fn forecast_tail(&self, keep: usize, extra: usize) -> VehicleView {
        let keep = keep.min(self.slots.len());
        let mut slots = Vec::with_capacity(keep + extra);
        slots.extend_from_slice(&self.slots[self.slots.len() - keep..]);
        VehicleView {
            vehicle_id: self.vehicle_id,
            scenario: self.scenario,
            slots,
        }
    }

    /// Appends a synthetic slot ([`crate::forecast`] extends the series
    /// with future days whose hours are filled in as they are predicted).
    pub(crate) fn push_slot(&mut self, slot: Slot) {
        self.slots.push(slot);
    }

    /// Overwrites the hours of slot `i` (see [`Self::push_slot`]).
    pub(crate) fn set_hours(&mut self, i: usize, hours: f64) {
        self.slots[i].hours = hours;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WORKING_DAY_THRESHOLD;
    use vup_fleetsim::fleet::FleetConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::small(10, 321))
    }

    #[test]
    fn next_day_view_keeps_every_day() {
        let fleet = fleet();
        let view = VehicleView::build(&fleet, VehicleId(1), Scenario::NextDay);
        assert_eq!(view.len(), fleet.config().n_days());
        // Days are contiguous in this scenario.
        for w in view.slots().windows(2) {
            assert_eq!(w[1].day, w[0].day + 1);
        }
    }

    #[test]
    fn next_working_day_view_filters_short_days() {
        let fleet = fleet();
        let all = VehicleView::build(&fleet, VehicleId(1), Scenario::NextDay);
        let working = VehicleView::build(&fleet, VehicleId(1), Scenario::NextWorkingDay);
        assert!(working.len() < all.len());
        assert!(!working.is_empty());
        for s in working.slots() {
            assert!(s.hours >= WORKING_DAY_THRESHOLD);
        }
        // Slot days strictly increase even with gaps.
        for w in working.slots().windows(2) {
            assert!(w[1].day > w[0].day);
        }
    }

    #[test]
    fn from_history_matches_build() {
        let fleet = fleet();
        let history = generator::generate_history(&fleet, VehicleId(3));
        let a = VehicleView::build(&fleet, VehicleId(3), Scenario::NextWorkingDay);
        let b = VehicleView::from_history(&fleet, &history, Scenario::NextWorkingDay);
        assert_eq!(a.slots(), b.slots());
        assert_eq!(a.vehicle_id, b.vehicle_id);
    }

    #[test]
    fn slots_carry_aligned_payloads() {
        let fleet = fleet();
        let view = VehicleView::build(&fleet, VehicleId(2), Scenario::NextDay);
        let history = generator::generate_history(&fleet, VehicleId(2));
        for (slot, rec) in view.slots().iter().zip(&history.records) {
            assert_eq!(slot.hours, rec.hours);
            assert_eq!(slot.date, rec.date);
            assert_eq!(slot.can[0], rec.can.fuel_used_l);
        }
    }

    #[test]
    fn hours_range_extracts_window() {
        let fleet = fleet();
        let view = VehicleView::build(&fleet, VehicleId(0), Scenario::NextDay);
        let full = view.hours();
        assert_eq!(view.hours_range(10, 20), &full[10..20]);
    }
}
