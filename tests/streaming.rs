//! Replay-determinism and drift-retrain acceptance tests for the
//! streaming ingest stack (`vup-ingest`).
//!
//! The contract: replaying any prefix of the same commit log produces a
//! bit-identical [`ReplayReport`] — same aggregates, same
//! retrain-decision stream (order included), same serve journal, same
//! model bytes — at any thread count, with observability live or
//! disabled; and a CUSUM drift firing retrains the affected vehicle
//! long before its fixed `retrain_every` staleness deadline.

use std::path::PathBuf;

use vehicle_usage_prediction::ingest::log::QUARANTINE_DIR;
use vehicle_usage_prediction::ingest::scheduler::SchedulerConfig;
use vehicle_usage_prediction::ingest::LogRecord;
use vehicle_usage_prediction::prelude::*;
use vup_fleetsim::dropout::DropoutConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vup-streaming-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small pipeline: next-day scenario (every sealed day is a slot), a
/// 30-slot window, and a staleness cadence so long it can never fire
/// within the streamed period — any retrain after warmup must come
/// from the drift/degrade monitors.
fn pipeline() -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::NextDay,
        train_window: 30,
        max_lag: 10,
        k: 5,
        model: ModelSpec::Baseline(BaselineSpec::LastValue),
        retrain_every: 200,
        ..PipelineConfig::default()
    }
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        window: 8,
        baseline_window: 6,
        cusum_k: 0.25,
        cusum_h: 5.0,
        // High on purpose: this test wants the CUSUM to fire first.
        degrade_ratio: 10.0,
        ..MonitorConfig::default()
    }
}

fn replay_config(threads: usize) -> ReplayConfig {
    ReplayConfig::new(pipeline(), monitor_config(), threads)
}

// With `FleetConfig::small(3, 2024)` vehicle 0 works 44 of the 70
// streamed days; vehicle 1 never leaves the yard and so never appears
// in the log at all (a real fleet property the aggregator must
// tolerate).
const SHIFTED_VEHICLE: u32 = 0;
const SHIFT_DAY: usize = 45;
const STREAM_DAYS: usize = 70;

/// Streams 70 days of a 3-vehicle fleet into a fresh log, with the
/// shifted vehicle doubling its utilization from day 45 on, and
/// returns the records.
fn build_log(tag: &str, fleet: &Fleet) -> (PathBuf, Vec<LogRecord>) {
    let dir = temp_dir(tag);
    let (mut log, recovery) = CommitLog::open(
        Box::new(DiskBackend),
        &dir,
        LogOptions::default(),
        &Registry::disabled(),
        &Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(recovery.next_offset, 0);
    let stats = ingest_stream(
        &mut log,
        fleet,
        &StreamConfig {
            start_offset: 0,
            days: STREAM_DAYS,
            dropout: DropoutConfig::none(),
            shift: Some(UsageShift {
                vehicle_id: SHIFTED_VEHICLE,
                from_day_offset: SHIFT_DAY,
                factor: 2.0,
            }),
        },
    )
    .unwrap();
    assert!(stats.records_appended > 500, "stream too thin: {stats:?}");
    let records = log.records().unwrap();
    assert_eq!(records.len() as u64, stats.records_appended);
    (dir, records)
}

#[test]
fn replay_is_bit_identical_across_runs_threads_and_observability() {
    let fleet = Fleet::generate(FleetConfig::small(3, 2024));
    let (_dir, records) = build_log("determinism", &fleet);

    // Reference: single-threaded, observability disabled.
    let reference = replay(
        &records,
        &fleet,
        &replay_config(1),
        &Registry::disabled(),
        &Tracer::disabled(),
    )
    .unwrap();
    assert!(reference.records_replayed > 0);
    assert!(!reference.decisions.is_empty(), "no retrains at all");
    assert!(!reference.models.is_empty());

    // Same inputs, run again: bit-identical, including JSON round-trip.
    let again = replay(
        &records,
        &fleet,
        &replay_config(1),
        &Registry::disabled(),
        &Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(reference, again);
    assert_eq!(
        ReplayReport::from_json(&reference.to_json()).unwrap(),
        again
    );

    // Any thread count, observability live or disabled: identical
    // decisions, journal, and model bytes.
    for threads in [2usize, 4] {
        for observed in [false, true] {
            let (registry, tracer) = if observed {
                (Registry::new(), Tracer::new())
            } else {
                (Registry::disabled(), Tracer::disabled())
            };
            let run = replay(
                &records,
                &fleet,
                &replay_config(threads),
                &registry,
                &tracer,
            )
            .unwrap();
            assert_eq!(
                reference, run,
                "replay diverged at threads={threads} observed={observed}"
            );
        }
    }
}

#[test]
fn any_prefix_replays_deterministically() {
    let fleet = Fleet::generate(FleetConfig::small(3, 2024));
    let (_dir, records) = build_log("prefix", &fleet);

    for frac in [4usize, 2] {
        let prefix = &records[..records.len() / frac];
        let a = replay(
            prefix,
            &fleet,
            &replay_config(2),
            &Registry::disabled(),
            &Tracer::disabled(),
        )
        .unwrap();
        let b = replay(
            prefix,
            &fleet,
            &replay_config(4),
            &Registry::disabled(),
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(a, b, "prefix of 1/{frac} diverged across thread counts");
        assert_eq!(a.records_replayed, prefix.len() as u64);
    }
}

#[test]
fn cusum_drift_retrains_the_shifted_vehicle_before_its_staleness_deadline() {
    let fleet = Fleet::generate(FleetConfig::small(3, 2024));
    let (_dir, records) = build_log("drift", &fleet);

    let report = replay(
        &records,
        &fleet,
        &replay_config(2),
        &Registry::disabled(),
        &Tracer::disabled(),
    )
    .unwrap();

    // The shifted vehicle drifts; nobody ever goes stale (the cadence
    // is 200 slots and we streamed 70 days).
    let drift: Vec<_> = report
        .decisions
        .iter()
        .filter(|d| d.reason == RetrainReason::Drift)
        .collect();
    assert!(
        drift.iter().any(|d| d.vehicle_id == SHIFTED_VEHICLE),
        "no drift decision for the shifted vehicle: {:?}",
        report.decisions
    );
    assert_eq!(report.decisions_with(RetrainReason::Stale), 0);

    let initial: Vec<_> = report
        .decisions
        .iter()
        .filter(|d| d.reason == RetrainReason::Initial)
        .collect();
    assert!(!initial.is_empty(), "warmup produced no initial fits");

    // Drift fired shortly after the shift and far inside the staleness
    // deadline: the whole point of monitor-triggered retraining.
    let d = drift
        .iter()
        .find(|d| d.vehicle_id == SHIFTED_VEHICLE)
        .unwrap();
    let trained_at = initial
        .iter()
        .find(|i| i.vehicle_id == SHIFTED_VEHICLE)
        .map(|i| i.slot + 1)
        .unwrap_or(pipeline().train_window);
    assert!(
        d.slot + 1 - trained_at < pipeline().retrain_every,
        "drift at slot {} did not beat the staleness deadline",
        d.slot
    );
    assert!(
        d.slot >= SHIFT_DAY && d.slot <= SHIFT_DAY + 10,
        "drift at slot {} should fire within days of the day-{SHIFT_DAY} shift",
        d.slot
    );

    // The drift retrain actually landed: the shifted vehicle's final
    // model was trained after the shift.
    let model = report
        .models
        .iter()
        .find(|m| m.vehicle_id == SHIFTED_VEHICLE)
        .expect("shifted vehicle has a model");
    assert!(
        model.trained_at > SHIFT_DAY,
        "final model (trained_at {}) predates the shift",
        model.trained_at
    );
}

#[test]
fn replay_after_torn_tail_recovers_and_stays_deterministic() {
    let fleet = Fleet::generate(FleetConfig::small(3, 2024));
    let (dir, _) = build_log("torn", &fleet);

    // kill -9 mid-append: cut the highest segment short.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "vlog"))
        .collect();
    segs.sort();
    let tail = segs.last().unwrap();
    let bytes = std::fs::read(tail).unwrap();
    std::fs::write(tail, &bytes[..bytes.len() - 11]).unwrap();

    let reopen = |dir: &std::path::Path| {
        CommitLog::open(
            Box::new(DiskBackend),
            dir,
            LogOptions::default(),
            &Registry::disabled(),
            &Tracer::disabled(),
        )
        .unwrap()
    };
    let (log, recovery) = reopen(&dir);
    assert!(recovery.frames_recovered > 0);
    assert_eq!(
        recovery.quarantined.len(),
        1,
        "exactly one quarantined tail"
    );
    assert_eq!(
        recovery.bytes_seen,
        recovery.bytes_recovered + recovery.bytes_quarantined
    );
    assert!(dir.join(QUARANTINE_DIR).exists());

    let records = log.records().unwrap();
    assert_eq!(records.len() as u64, recovery.frames_recovered);

    // Two replays of the recovered log agree bit for bit.
    let a = replay(
        &records,
        &fleet,
        &replay_config(1),
        &Registry::disabled(),
        &Tracer::disabled(),
    )
    .unwrap();
    let b = replay(
        &records,
        &fleet,
        &replay_config(4),
        &Registry::disabled(),
        &Tracer::disabled(),
    )
    .unwrap();
    assert_eq!(a, b);
    assert!(!a.decisions.is_empty());
}

#[test]
fn scheduler_config_derives_from_the_pipeline() {
    let cfg = SchedulerConfig::from_pipeline(&pipeline());
    assert_eq!(cfg.warmup_slots, 30);
    assert_eq!(cfg.retrain_every, 200);
    assert!(cfg.horizon >= 1);
}
