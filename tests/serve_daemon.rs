//! End-to-end tests for the `vup serve` daemon: the network path must
//! produce journals bit-identical to the CLI `serve-batch` path
//! (`DESIGN.md` §4's determinism boundary), the auxiliary endpoints
//! must answer well-formed payloads, and SIGTERM must drain cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use vehicle_usage_prediction::net::http::read_response;
use vehicle_usage_prediction::net::{Healthz, WireResponse};
use vehicle_usage_prediction::obs::parse_prometheus_text;
use vehicle_usage_prediction::serve::{ServeJournal, ServePath};

fn vup() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vup"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vup-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A running daemon that is SIGKILLed on drop so a failing test never
/// leaks a listener.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    stderr: BufReader<std::process::ChildStderr>,
}

impl Daemon {
    /// Boots `vup serve` with the given extra flags and scrapes the
    /// bound address from the stable `listening on` stderr line.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = vup()
            .arg("serve")
            .args(["--vehicles", "6", "--seed", "7", "--model", "linear"])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn vup serve");
        let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = stderr.read_line(&mut line).expect("read daemon stderr");
            assert!(n > 0, "daemon exited before announcing its address");
            if let Some(rest) = line.split("listening on ").nth(1) {
                let token = rest.split_whitespace().next().expect("address token");
                break token.parse().expect("parse bound address");
            }
        };
        Daemon {
            child,
            addr,
            stderr,
        }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .set_write_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
    }

    fn request(&self, method: &str, target: &str, body: Option<&str>) -> (u16, String) {
        let mut stream = self.connect();
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes()).expect("write head");
        if let Some(body) = body {
            stream.write_all(body.as_bytes()).expect("write body");
        }
        let response = read_response(&mut stream).expect("read response");
        (response.status, response.body_text())
    }

    /// SIGTERM, then wait for a clean exit and return all of stderr.
    fn terminate(mut self) -> String {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let exit = self.child.wait().expect("wait for daemon");
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stderr, &mut rest).expect("drain stderr");
        assert!(exit.success(), "daemon exited {exit:?}; stderr:\n{rest}");
        // Forget the child so Drop does not re-kill a reaped pid.
        std::mem::forget(self);
        rest
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

const BATCH_BODY: &str = r#"{"requests":[{"vehicle_id":0,"horizon":2},{"vehicle_id":1,"horizon":2},{"vehicle_id":2,"horizon":2}],"as_of":null}"#;

/// The CLI run the daemon must agree with: same fleet, same store, same
/// batch. Returns the journal it wrote.
fn cli_reference_journal(store: &std::path::Path, journal: &std::path::Path) -> ServeJournal {
    let output = vup()
        .args(["serve-batch", "--vehicles", "6", "--seed", "7"])
        .args(["--model", "linear", "--ids", "0,1,2", "--horizon", "2"])
        .args(["--repeat", "1"])
        .args(["--store-dir", &store.display().to_string()])
        .args(["--journal", &journal.display().to_string()])
        .output()
        .expect("run serve-batch");
    assert!(
        output.status.success(),
        "serve-batch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(journal).expect("read journal");
    ServeJournal::from_json(&text).expect("parse journal")
}

#[test]
fn daemon_journal_is_bit_identical_to_the_cli_path_across_thread_counts() {
    let store = temp_dir("equiv");
    let journal_path = store.join("reference.journal.json");

    // Warm the store (first run retrains 0,1,2 and persists them), then
    // capture the reference journal of a warm CLI run.
    cli_reference_journal(&store, &journal_path);
    let reference = cli_reference_journal(&store, &journal_path);
    assert!(
        reference
            .records
            .iter()
            .all(|r| r.path == ServePath::CacheHit),
        "warm reference run should serve from the store: {:?}",
        reference.records.iter().map(|r| r.path).collect::<Vec<_>>()
    );

    let mut hours_by_threads: Vec<Vec<u64>> = Vec::new();
    for threads in ["1", "2", "4"] {
        let daemon = Daemon::spawn(&[
            "--threads",
            threads,
            "--workers",
            "2",
            "--store-dir",
            &store.display().to_string(),
        ]);
        let (status, body) = daemon.request("POST", "/v1/predict-batch", Some(BATCH_BODY));
        assert_eq!(status, 200, "daemon POST failed: {body}");
        let wire: WireResponse = serde_json::from_str(&body).expect("parse wire response");

        // Outcome + provenance records must match the CLI journal
        // exactly (Provenance's PartialEq already ignores wall-clock
        // stage timings; store generation differs per process and is
        // compared separately).
        assert_eq!(
            wire.journal.records, reference.records,
            "daemon journal diverged from the CLI path at --threads {threads}"
        );
        hours_by_threads.push(
            wire.outcomes
                .iter()
                .flat_map(|o| o.hours.iter().map(|h| h.to_bits()))
                .collect(),
        );
        daemon.terminate();
    }
    // Forecast numbers are bit-identical across executor widths.
    assert!(!hours_by_threads[0].is_empty());
    assert!(
        hours_by_threads.windows(2).all(|w| w[0] == w[1]),
        "forecasts must not depend on the thread count"
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn healthz_metrics_and_sigterm_drain() {
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "8"]);

    // One real batch so the meters move.
    let (status, _) = daemon.request("POST", "/v1/predict-batch", Some(BATCH_BODY));
    assert_eq!(status, 200);

    let (status, body) = daemon.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    let health: Healthz = serde_json::from_str(&body).expect("parse healthz");
    assert_eq!(health.status, "ok");
    assert_eq!(health.queue_capacity, 8);
    assert!(health.requests >= 1);
    assert_eq!(health.models_cached, 3, "batch trained vehicles 0,1,2");

    let (status, text) = daemon.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    let samples = parse_prometheus_text(&text).expect("metrics must strict-parse");
    assert!(!samples.is_empty());
    assert!(text.contains("vup_net_requests_total"), "{text}");
    assert!(text.contains("vup_serve_batches_total"), "{text}");

    // Unknown routes and protocol errors answer structured JSON.
    let (status, body) = daemon.request("GET", "/nope", None);
    assert_eq!(status, 404);
    assert!(body.contains("error"));
    let (status, _) = daemon.request("PUT", "/healthz", Some(""));
    assert_eq!(status, 405);
    let (status, _) = daemon.request("PUT", "/healthz", None);
    assert_eq!(status, 411, "bodyless PUT is rejected at the parser");

    let stderr = daemon.terminate();
    assert!(
        stderr.contains("drained:"),
        "SIGTERM must report a drain summary, got:\n{stderr}"
    );
}

/// Satellite of the profiling layer: the full metrics pipeline, end to
/// end. Scrape a live daemon's `/metrics`, strict-parse the export, and
/// assert every registered metric family carries `# HELP` and `# TYPE`
/// lines and parseable samples — so a metric added anywhere in the
/// stack without its describe() shows up here, not in a dashboard.
#[test]
fn metrics_pipeline_exports_help_and_type_for_every_family() {
    let daemon = Daemon::spawn(&["--workers", "2", "--queue", "8"]);

    // Drive real traffic through predict, healthz, and an error route so
    // request/outcome counters all have samples.
    let (status, _) = daemon.request("POST", "/v1/predict-batch", Some(BATCH_BODY));
    assert_eq!(status, 200);
    let (status, _) = daemon.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    let (status, _) = daemon.request("GET", "/nope", None);
    assert_eq!(status, 404);

    let (status, text) = daemon.request("GET", "/metrics", None);
    assert_eq!(status, 200);

    // Every sample must strict-parse...
    let samples = parse_prometheus_text(&text).expect("metrics must strict-parse");
    assert!(!samples.is_empty());
    for sample in &samples {
        assert!(sample.value.is_finite() || sample.value.is_infinite());
        assert!(
            sample.name.starts_with("vup_"),
            "foreign family: {}",
            sample.name
        );
    }

    // ...and every family must be described. Histogram series roll up to
    // their base family name for HELP/TYPE lookup.
    let mut help = std::collections::HashSet::new();
    let mut types = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            help.insert(rest.split(' ').next().unwrap().to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            types.insert(rest.split(' ').next().unwrap().to_string());
        }
    }
    let base = |name: &str| {
        name.strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name)
            .to_string()
    };
    for sample in &samples {
        let family = base(&sample.name);
        assert!(
            help.contains(&family) || help.contains(&sample.name),
            "family '{family}' exported without # HELP"
        );
        assert!(
            types.contains(&family) || types.contains(&sample.name),
            "family '{family}' exported without # TYPE"
        );
    }

    // The trace-health metrics ride along even though the daemon's
    // tracer is disabled: dashboards keep the series, pinned at zero.
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from /metrics"))
            .value
    };
    assert_eq!(value("vup_trace_dropped_total"), 0.0);
    assert_eq!(value("vup_trace_ring_high_watermark"), 0.0);
    assert_eq!(value("vup_trace_ring_capacity"), 0.0);

    daemon.terminate();
}
