//! The five-step data-preparation pipeline on raw 10-minute CAN reports.
//!
//! Demonstrates the full-fidelity path of the reproduction: synthesize a
//! month of raw CAN report streams for one vehicle *with connectivity
//! defects injected* (outages, missing fields, glitch values, duplicate
//! uploads), run cleaning → daily aggregation → enrichment →
//! transformation, then normalize the continuous columns and export the
//! relational table as CSV.
//!
//! Run with: `cargo run --release --example data_preparation`

use vehicle_usage_prediction::dataprep::normalize::{Method, TableNormalizer};
use vehicle_usage_prediction::dataprep::{csv, pipeline};
use vehicle_usage_prediction::fleetsim::dropout::DropoutConfig;
use vehicle_usage_prediction::prelude::*;

fn main() {
    let fleet = Fleet::generate(FleetConfig::small(10, 1234));
    let id = VehicleId(2);
    let vehicle = fleet.vehicle(id).expect("exists");
    println!(
        "Preparing 28 days of raw CAN data for vehicle {} ({})\n",
        id.0,
        vehicle.vtype.name()
    );

    // Aggressive defect rates so the cleaning pass has visible work.
    let dropout = DropoutConfig {
        outage_prob: 0.2,
        field_missing_prob: 0.05,
        corrupt_prob: 0.02,
        duplicate_prob: 0.02,
    };
    // Start mid-season so the window contains working days (January is
    // dominated by the Christmas shutdown in most simulated countries).
    let start = vup_fleetsim::calendar::Date::new(2016, 6, 1).expect("valid date");
    let prepared =
        pipeline::prepare_vehicle_days(&fleet, id, start, 28, &dropout).expect("pipeline runs");

    println!("Cleaning statistics over 28 days:");
    println!(
        "  duplicate reports removed : {}",
        prepared.cleaning.duplicates_removed
    );
    println!(
        "  glitch values nulled      : {}",
        prepared.cleaning.glitches_nulled
    );
    println!(
        "  missing values imputed    : {}",
        prepared.cleaning.values_imputed
    );

    let table = &prepared.table;
    println!(
        "\nRelational table: {} rows x {} columns",
        table.n_rows(),
        table.n_cols()
    );

    // Show a working-day record.
    if let Some(day) = prepared.records.iter().find(|r| r.hours > 1.0) {
        println!(
            "\nSample working day {}: {:.1} h, {:.0} L fuel, load {:.0} %, coolant {:.0} °C",
            day.date,
            day.hours,
            day.can.fuel_used_l,
            day.can.avg_load_pct,
            day.can.avg_coolant_temp_c
        );
    }

    // Normalize the continuous channels (paper step ii) and export.
    let normalizer = TableNormalizer::fit(
        table,
        &["hours", "fuel_used_l", "avg_rpm", "avg_load_pct"],
        Method::MinMax,
    )
    .expect("columns exist");
    let normalized = normalizer.apply(table).expect("same schema");

    let out = csv::to_csv(&normalized);
    let path = std::env::temp_dir().join("prepared_vehicle_days.csv");
    std::fs::write(&path, &out).expect("writable temp dir");
    println!(
        "\nNormalized relational table exported to {}",
        path.display()
    );
    println!("First lines:");
    for line in out.lines().take(4) {
        let short: String = line.chars().take(100).collect();
        println!("  {short}...");
    }
}
