//! Deterministic fault injection for the serve path.
//!
//! A [`FaultPlan`] is a seeded, serializable description of the chaos to
//! inject into a [`crate::PredictionService`]: fit errors, fit panics
//! (routed through the executor's per-task panic capture), slow-stage
//! delays (virtual nanoseconds charged against the deadline budget — no
//! sleeping), and stale-store poisoning (a vehicle's cached model is
//! force-aged so the lookup misses). Every decision is a pure hash of
//! `(seed, fault kind, vehicle, batch, attempt)` — never the wall clock,
//! never thread scheduling — so a chaos run is reproducible bit for bit
//! at any thread count.

use serde::{Deserialize, Serialize};

use crate::resilience::splitmix64;

/// Salts keeping the per-fault hash streams independent.
const SALT_ERROR: u64 = 0x45_52_52;
const SALT_PANIC: u64 = 0x50_41_4e;
const SALT_SLOW: u64 = 0x53_4c_4f;
const SALT_POISON: u64 = 0x50_4f_49;
const SALT_SHARD_DEATH: u64 = 0x53_44_49;
const SALT_SHARD_STALL: u64 = 0x53_53_54;
const SALT_SHARD_REFUSE: u64 = 0x53_52_46;

/// A seeded, serializable chaos plan.
///
/// Rates are probabilities in `[0, 1]` evaluated independently per
/// `(vehicle, batch, attempt)` coordinate. The default plan injects
/// nothing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of every decision stream.
    pub seed: u64,
    /// Probability that a primary fit attempt returns an injected error.
    pub fit_error_rate: f64,
    /// Probability that a primary fit attempt panics inside the executor
    /// task (captured per-slot; the episode fails without retries).
    pub fit_panic_rate: f64,
    /// Vehicles whose primary fit *always* errors, regardless of rates.
    pub fail_vehicles: Vec<u32>,
    /// Probability that a fit attempt is slowed by `slow_fit_nanos` of
    /// virtual time (charged against the deadline budget, no sleeping).
    pub slow_rate: f64,
    /// Virtual nanoseconds one slowed attempt costs.
    pub slow_fit_nanos: u64,
    /// Probability that a vehicle's cached model is poisoned (force-aged
    /// to stale) right before the batch's store lookup.
    pub poison_rate: f64,
    /// Disk faults injected through the snapshot store's
    /// [`crate::persist::StorageBackend`] (see
    /// [`crate::persist::FaultyBackend`]). Absent in older plan files —
    /// `None` injects nothing.
    pub disk: Option<DiskFaultPlan>,
    /// Whole-shard faults evaluated by the fleet coordinator
    /// (`vup-shard`): death mid-batch, stall past the deadline, and
    /// refuse-then-recover. Absent in older plan files — `None` injects
    /// nothing.
    pub shards: Option<ShardFaultPlan>,
}

impl FaultPlan {
    /// A plan that fails every primary fit attempt with an injected
    /// error — the 100%-degradation acceptance scenario.
    pub fn fail_all_fits(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fit_error_rate: 1.0,
            ..FaultPlan::default()
        }
    }

    /// Serializes the plan to pretty JSON (the `--faults` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault plan serializes")
    }

    /// Parses a plan back from [`FaultPlan::to_json`] output.
    pub fn from_json(text: &str) -> Result<FaultPlan, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.fit_error_rate > 0.0
            || self.fit_panic_rate > 0.0
            || !self.fail_vehicles.is_empty()
            || (self.slow_rate > 0.0 && self.slow_fit_nanos > 0)
            || self.poison_rate > 0.0
            || self.disk_faults().is_some()
            || self.shard_faults().is_some()
    }

    /// The disk-fault sub-plan, if it would inject anything.
    pub fn disk_faults(&self) -> Option<&DiskFaultPlan> {
        self.disk.as_ref().filter(|d| d.is_active())
    }

    /// The shard-fault sub-plan, if it would inject anything.
    pub fn shard_faults(&self) -> Option<&ShardFaultPlan> {
        self.shards.as_ref().filter(|s| s.is_active())
    }
}

/// Seeded disk faults injected through the snapshot store's storage
/// backend ([`crate::persist::FaultyBackend`]). Like the fit faults,
/// every decision is a pure hash of `(seed, fault kind, file name,
/// per-file operation index)`, so chaos runs against the disk are
/// reproducible bit for bit at any thread count — the service performs
/// all store I/O on its coordinating thread in vehicle order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DiskFaultPlan {
    /// Probability that a write silently persists only its first
    /// `torn_write_byte` bytes (a kill -9 / power-cut torn tail).
    pub torn_write_rate: f64,
    /// How many bytes of a torn write reach the disk.
    pub torn_write_byte: u64,
    /// Probability that a file's reads come back with one bit flipped
    /// (latent media corruption; the flipped position is derived from
    /// the file name, so every read of that file sees the same damage).
    pub bit_flip_rate: f64,
    /// Probability that an operation fails transiently with an
    /// interrupted-io error before succeeding on retry.
    pub io_error_rate: f64,
    /// How many consecutive transient failures each io-error decision
    /// injects before the operation is allowed through (0 acts as 1).
    pub io_error_attempts: u32,
    /// Byte budget after which every further write fails like a full
    /// disk. `None` means unlimited.
    pub full_disk_after_bytes: Option<u64>,
}

impl DiskFaultPlan {
    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.torn_write_rate > 0.0
            || self.bit_flip_rate > 0.0
            || self.io_error_rate > 0.0
            || self.full_disk_after_bytes.is_some()
    }

    /// Consecutive transient failures per io-error decision (at least 1).
    pub fn effective_io_attempts(&self) -> u32 {
        self.io_error_attempts.max(1)
    }
}

/// Seeded whole-shard faults evaluated by the fleet coordinator
/// (`vup-shard`) once per `(shard, batch)`. Like every other stream the
/// decisions are pure hashes — the coordinator walks shards in index
/// order on its coordinating thread, so a shard-chaos run is
/// reproducible bit for bit at any thread count and across coordinator
/// restarts.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    /// Probability a shard dies mid-batch: its sub-batch is lost, the
    /// supervisor serves those vehicles degraded, drops the shard's
    /// in-memory state, and restarts it warm from its snapshot dir.
    pub death_rate: f64,
    /// Probability a shard finishes past the batch deadline: its work
    /// completes (models train and persist) but the results arrive too
    /// late to serve, so the supervisor degrades the sub-batch. No
    /// restart — the shard is healthy, just slow.
    pub stall_rate: f64,
    /// Probability a shard refuses a batch outright (admission shed):
    /// nothing runs, the supervisor degrades the sub-batch, and the
    /// shard recovers on its own next batch.
    pub refuse_rate: f64,
    /// Pinned deaths: `(shard, batch)` coordinates that always die,
    /// regardless of `death_rate` — the deterministic kill switch the
    /// chaos tests aim.
    pub kills: Vec<ShardKill>,
}

impl ShardFaultPlan {
    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.death_rate > 0.0
            || self.stall_rate > 0.0
            || self.refuse_rate > 0.0
            || !self.kills.is_empty()
    }

    /// A plan that kills exactly `shard` at coordinator batch `batch`.
    pub fn kill(shard: u32, batch: u64) -> ShardFaultPlan {
        ShardFaultPlan {
            kills: vec![ShardKill { shard, batch }],
            ..ShardFaultPlan::default()
        }
    }
}

/// One pinned shard death: shard `shard` dies during coordinator batch
/// `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardKill {
    /// The shard to kill.
    pub shard: u32,
    /// The coordinator batch index it dies in.
    pub batch: u64,
}

/// What happens to one shard during one coordinator batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFate {
    /// The shard serves its sub-batch normally.
    Healthy,
    /// The shard sheds the batch upfront; nothing runs.
    Refuse,
    /// The shard completes its work past the deadline; results are
    /// discarded but side effects (trained models, snapshots) stick.
    Stall,
    /// The shard dies mid-batch: results and in-memory state are lost;
    /// the supervisor restarts it from its snapshot dir.
    Die,
}

impl ShardFate {
    /// Stable lowercase label (metrics, reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardFate::Healthy => "healthy",
            ShardFate::Refuse => "refuse",
            ShardFate::Stall => "stall",
            ShardFate::Die => "die",
        }
    }
}

/// The two ways an injected fit fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitFault {
    /// The attempt returns an error (retryable).
    Error,
    /// The attempt panics inside the executor task (episode fails, no
    /// in-task retry — the panic unwinds to the executor's capture).
    Panic,
}

/// Evaluates a [`FaultPlan`] at `(vehicle, batch, attempt)` coordinates.
///
/// Stateless and `Sync`: executor workers consult it concurrently, and
/// because every answer is a pure function of its arguments the injected
/// chaos is independent of scheduling.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Uniform value in `[0, 1)` for one decision coordinate.
    fn unit(&self, salt: u64, vehicle: u32, batch: u64, attempt: u32) -> f64 {
        let mut h = splitmix64(self.plan.seed ^ salt);
        h = splitmix64(h ^ u64::from(vehicle));
        h = splitmix64(h ^ batch);
        h = splitmix64(h ^ u64::from(attempt));
        // 53 high bits → [0, 1) with full double precision.
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The fault, if any, injected into this fit attempt. Panic takes
    /// precedence over error; `fail_vehicles` always error.
    pub fn fit_fault(&self, vehicle: u32, batch: u64, attempt: u32) -> Option<FitFault> {
        if self.plan.fail_vehicles.contains(&vehicle) {
            return Some(FitFault::Error);
        }
        if self.plan.fit_panic_rate > 0.0
            && self.unit(SALT_PANIC, vehicle, batch, attempt) < self.plan.fit_panic_rate
        {
            return Some(FitFault::Panic);
        }
        if self.plan.fit_error_rate > 0.0
            && self.unit(SALT_ERROR, vehicle, batch, attempt) < self.plan.fit_error_rate
        {
            return Some(FitFault::Error);
        }
        None
    }

    /// Virtual nanoseconds of injected slowdown for this fit attempt.
    pub fn fit_delay_nanos(&self, vehicle: u32, batch: u64, attempt: u32) -> u64 {
        if self.plan.slow_rate > 0.0
            && self.plan.slow_fit_nanos > 0
            && self.unit(SALT_SLOW, vehicle, batch, attempt) < self.plan.slow_rate
        {
            self.plan.slow_fit_nanos
        } else {
            0
        }
    }

    /// Whether to poison `vehicle`'s cached model before this batch's
    /// lookup.
    pub fn poisons_store(&self, vehicle: u32, batch: u64) -> bool {
        self.plan.poison_rate > 0.0
            && self.unit(SALT_POISON, vehicle, batch, 0) < self.plan.poison_rate
    }

    /// The fate of `shard` during coordinator batch `batch`. Pinned
    /// kills fire first; then death takes precedence over stall over
    /// refuse, each on its own independent hash stream.
    pub fn shard_fate(&self, shard: u32, batch: u64) -> ShardFate {
        let Some(plan) = self.plan.shard_faults() else {
            return ShardFate::Healthy;
        };
        if plan
            .kills
            .iter()
            .any(|k| k.shard == shard && k.batch == batch)
        {
            return ShardFate::Die;
        }
        if plan.death_rate > 0.0 && self.unit(SALT_SHARD_DEATH, shard, batch, 0) < plan.death_rate {
            return ShardFate::Die;
        }
        if plan.stall_rate > 0.0 && self.unit(SALT_SHARD_STALL, shard, batch, 0) < plan.stall_rate {
            return ShardFate::Stall;
        }
        if plan.refuse_rate > 0.0
            && self.unit(SALT_SHARD_REFUSE, shard, batch, 0) < plan.refuse_rate
        {
            return ShardFate::Refuse;
        }
        ShardFate::Healthy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_streams_independent() {
        let plan = FaultPlan {
            seed: 99,
            fit_error_rate: 0.5,
            fit_panic_rate: 0.2,
            slow_rate: 0.5,
            slow_fit_nanos: 1_000,
            poison_rate: 0.5,
            ..FaultPlan::default()
        };
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let mut decided = [0usize; 3];
        for vehicle in 0..20 {
            for batch in 0..5 {
                assert_eq!(
                    a.fit_fault(vehicle, batch, 1),
                    b.fit_fault(vehicle, batch, 1)
                );
                assert_eq!(
                    a.fit_delay_nanos(vehicle, batch, 1),
                    b.fit_delay_nanos(vehicle, batch, 1)
                );
                assert_eq!(
                    a.poisons_store(vehicle, batch),
                    b.poisons_store(vehicle, batch)
                );
                decided[0] += usize::from(a.fit_fault(vehicle, batch, 1).is_some());
                decided[1] += usize::from(a.fit_delay_nanos(vehicle, batch, 1) > 0);
                decided[2] += usize::from(a.poisons_store(vehicle, batch));
            }
        }
        // At these rates every stream fires somewhere but not everywhere.
        for (i, &count) in decided.iter().enumerate() {
            assert!(count > 0 && count < 100, "stream {i}: {count}");
        }
        // Different seeds give different streams.
        let other = FaultInjector::new(FaultPlan {
            seed: 100,
            ..a.plan().clone()
        });
        let diverged = (0..100u32).any(|v| other.fit_fault(v, 0, 1) != a.fit_fault(v, 0, 1));
        assert!(diverged);
    }

    #[test]
    fn rate_extremes_and_fail_vehicles_behave() {
        let none = FaultInjector::new(FaultPlan::default());
        assert!(!none.plan().is_active());
        for v in 0..50 {
            assert_eq!(none.fit_fault(v, 0, 1), None);
            assert_eq!(none.fit_delay_nanos(v, 0, 1), 0);
            assert!(!none.poisons_store(v, 0));
        }
        let all = FaultInjector::new(FaultPlan::fail_all_fits(7));
        assert!(all.plan().is_active());
        for v in 0..50 {
            assert_eq!(all.fit_fault(v, 3, 2), Some(FitFault::Error));
        }
        let pinned = FaultInjector::new(FaultPlan {
            fail_vehicles: vec![4],
            ..FaultPlan::default()
        });
        assert_eq!(pinned.fit_fault(4, 0, 1), Some(FitFault::Error));
        assert_eq!(pinned.fit_fault(5, 0, 1), None);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan {
            seed: 1234,
            fit_error_rate: 0.25,
            fit_panic_rate: 0.125,
            fail_vehicles: vec![1, 3],
            slow_rate: 0.5,
            slow_fit_nanos: 2_000_000,
            poison_rate: 0.75,
            disk: Some(DiskFaultPlan {
                torn_write_rate: 0.5,
                torn_write_byte: 24,
                bit_flip_rate: 0.25,
                io_error_rate: 0.125,
                io_error_attempts: 2,
                full_disk_after_bytes: Some(1 << 20),
            }),
            shards: Some(ShardFaultPlan {
                death_rate: 0.125,
                stall_rate: 0.25,
                refuse_rate: 0.5,
                kills: vec![ShardKill { shard: 2, batch: 1 }],
            }),
        };
        let text = plan.to_json();
        assert!(text.contains("\"fit_error_rate\""), "{text}");
        assert!(text.contains("\"torn_write_rate\""), "{text}");
        assert!(text.contains("\"death_rate\""), "{text}");
        let parsed = FaultPlan::from_json(&text).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn plans_without_a_disk_section_still_parse() {
        // Pre-disk-fault plan files omit the `disk` key entirely.
        let text = r#"{
            "seed": 7,
            "fit_error_rate": 0.5,
            "fit_panic_rate": 0.0,
            "fail_vehicles": [],
            "slow_rate": 0.0,
            "slow_fit_nanos": 0,
            "poison_rate": 0.0
        }"#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(plan.disk, None);
        assert!(plan.disk_faults().is_none());
        assert!(plan.is_active());
    }

    #[test]
    fn plans_without_a_shards_section_still_parse() {
        // Pre-shard plan files omit the `shards` key entirely.
        let text = r#"{
            "seed": 7,
            "fit_error_rate": 0.5,
            "fit_panic_rate": 0.0,
            "fail_vehicles": [],
            "slow_rate": 0.0,
            "slow_fit_nanos": 0,
            "poison_rate": 0.0
        }"#;
        let plan = FaultPlan::from_json(text).unwrap();
        assert_eq!(plan.shards, None);
        assert!(plan.shard_faults().is_none());
        let injector = FaultInjector::new(plan);
        for shard in 0..8 {
            assert_eq!(injector.shard_fate(shard, 0), ShardFate::Healthy);
        }
    }

    #[test]
    fn shard_fates_are_deterministic_and_pinned_kills_win() {
        let plan = FaultPlan {
            seed: 42,
            shards: Some(ShardFaultPlan {
                death_rate: 0.2,
                stall_rate: 0.3,
                refuse_rate: 0.3,
                kills: vec![ShardKill { shard: 1, batch: 4 }],
            }),
            ..FaultPlan::default()
        };
        assert!(plan.is_active(), "shard activity feeds plan activity");
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        assert_eq!(a.shard_fate(1, 4), ShardFate::Die, "pinned kill fires");
        let mut seen = [0usize; 4];
        for shard in 0..8 {
            for batch in 0..16 {
                let fate = a.shard_fate(shard, batch);
                assert_eq!(fate, b.shard_fate(shard, batch));
                seen[match fate {
                    ShardFate::Healthy => 0,
                    ShardFate::Refuse => 1,
                    ShardFate::Stall => 2,
                    ShardFate::Die => 3,
                }] += 1;
            }
        }
        // At these rates every fate occurs somewhere but not everywhere.
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 0 && count < 128, "fate {i}: {count}");
        }
        // An inert shards section injects nothing.
        let inert = FaultPlan {
            shards: Some(ShardFaultPlan::default()),
            ..FaultPlan::default()
        };
        assert!(!inert.is_active());
        assert!(inert.shard_faults().is_none());
        assert_eq!(ShardFaultPlan::kill(3, 2).kills.len(), 1);
    }

    #[test]
    fn disk_activity_feeds_plan_activity() {
        let inert = FaultPlan {
            disk: Some(DiskFaultPlan::default()),
            ..FaultPlan::default()
        };
        assert!(!inert.is_active(), "an all-zero disk plan injects nothing");
        assert!(inert.disk_faults().is_none());

        let active = FaultPlan {
            disk: Some(DiskFaultPlan {
                bit_flip_rate: 0.1,
                ..DiskFaultPlan::default()
            }),
            ..FaultPlan::default()
        };
        assert!(active.is_active());
        assert!(active.disk_faults().is_some());
        assert_eq!(DiskFaultPlan::default().effective_io_attempts(), 1);
    }
}
