//! The shared on-disk frame format: a 16-byte header (magic, format
//! version, payload length, payload CRC32) in front of an opaque
//! payload, plus the transient-io retry helper every durable component
//! uses.
//!
//! Two file families share this framing with different magics:
//!
//! - model snapshots (`VUPM`, [`crate::persist`]) — exactly one frame
//!   per file, validated with [`decode_frame_exact`];
//! - telemetry commit-log segments (`VUPL`, `vup-ingest`) — many
//!   frames back to back in one append-only file, walked with
//!   [`decode_frame_at`].
//!
//! The header layout is pinned by unit tests below and documented in
//! DESIGN.md: bytes 0..4 magic, 4..6 version (u16 LE), 6..8 reserved
//! (zero), 8..12 payload length (u32 LE), 12..16 payload CRC32
//! (u32 LE). A reader can therefore always tell a good frame from a
//! torn tail (too short), a flipped bit (CRC mismatch), or a file from
//! a future build (unknown magic/version).

use std::io;

/// Fixed header size: magic (4) + version (2) + reserved (2) +
/// payload length (4) + payload CRC32 (4).
pub const HEADER_LEN: usize = 16;

/// Attempts per storage operation: the first try plus retries of
/// transient ([`io::ErrorKind::Interrupted`]) failures.
pub const MAX_IO_ATTEMPTS: u64 = 4;

/// IEEE CRC32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ u32::MAX
}

/// Why a frame cannot be decoded. Callers map these onto their own
/// defect taxonomy (e.g. [`crate::SnapshotDefect`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameDefect {
    /// Shorter than the header, or the payload shorter than declared
    /// (torn write, kill mid-write).
    Truncated,
    /// The first four bytes are not the expected magic.
    Magic,
    /// Right magic, but a format version this build does not know.
    Version,
    /// Payload bytes do not match the header's CRC32 (bit rot).
    Checksum,
    /// Bytes follow a complete frame where none are allowed
    /// ([`decode_frame_exact`] only).
    TrailingGarbage,
}

impl FrameDefect {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameDefect::Truncated => "truncated",
            FrameDefect::Magic => "magic",
            FrameDefect::Version => "version",
            FrameDefect::Checksum => "checksum",
            FrameDefect::TrailingGarbage => "trailing-garbage",
        }
    }
}

/// Frames a serialized payload with the versioned, checksummed header.
pub fn encode_frame(magic: [u8; 4], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes the frame starting at byte `at` of a multi-frame buffer.
/// Returns the payload and the total frame length (header + payload),
/// so a segment reader can walk `at += len` frame by frame. Bytes
/// after the frame are someone else's business — there is no
/// trailing-garbage concept here.
pub fn decode_frame_at(
    magic: [u8; 4],
    version: u16,
    bytes: &[u8],
    at: usize,
) -> Result<(&[u8], usize), FrameDefect> {
    let bytes = bytes.get(at..).ok_or(FrameDefect::Truncated)?;
    if bytes.len() < HEADER_LEN {
        return Err(FrameDefect::Truncated);
    }
    if bytes[0..4] != magic {
        return Err(FrameDefect::Magic);
    }
    let got_version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if got_version != version {
        return Err(FrameDefect::Version);
    }
    let declared_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let declared_crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let body = bytes
        .get(HEADER_LEN..HEADER_LEN + declared_len)
        .ok_or(FrameDefect::Truncated)?;
    if crc32(body) != declared_crc {
        return Err(FrameDefect::Checksum);
    }
    Ok((body, HEADER_LEN + declared_len))
}

/// Decodes a buffer that must hold exactly one frame (the snapshot
/// discipline): any bytes beyond the declared payload are
/// [`FrameDefect::TrailingGarbage`].
pub fn decode_frame_exact(
    magic: [u8; 4],
    version: u16,
    bytes: &[u8],
) -> Result<&[u8], FrameDefect> {
    let (payload, frame_len) = decode_frame_at(magic, version, bytes, 0)?;
    if bytes.len() > frame_len {
        return Err(FrameDefect::TrailingGarbage);
    }
    Ok(payload)
}

/// Retries `op` on transient ([`io::ErrorKind::Interrupted`]) failures,
/// up to [`MAX_IO_ATTEMPTS`] attempts total. Returns the final result
/// and how many retries were spent.
pub fn retry_io<T>(mut op: impl FnMut() -> io::Result<T>) -> (io::Result<T>, u64) {
    let mut retries = 0;
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && retries + 1 < MAX_IO_ATTEMPTS => {
                retries += 1;
            }
            other => return (other, retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP_MAGIC: [u8; 4] = *b"VUPM";
    const LOG_MAGIC: [u8; 4] = *b"VUPL";

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn snapshot_frame_byte_layout_is_pinned() {
        // The VUPM layout existing snapshot stores already hold on
        // disk: changing any of these bytes is a format break.
        let bytes = encode_frame(SNAP_MAGIC, 1, b"abc");
        assert_eq!(
            bytes,
            [
                b'V', b'U', b'P', b'M', // magic
                1, 0, // version 1, little-endian
                0, 0, // reserved
                3, 0, 0, 0, // payload length 3, little-endian
                0xC2, 0x41, 0x24, 0x35, // crc32("abc") = 0x352441C2, little-endian
                b'a', b'b', b'c',
            ]
        );
    }

    #[test]
    fn log_frame_byte_layout_is_pinned() {
        // The VUPL layout commit-log segments hold on disk.
        let bytes = encode_frame(LOG_MAGIC, 1, b"abc");
        let crc = crc32(b"abc").to_le_bytes();
        let mut expected = vec![b'V', b'U', b'P', b'L', 1, 0, 0, 0, 3, 0, 0, 0];
        expected.extend_from_slice(&crc);
        expected.extend_from_slice(b"abc");
        assert_eq!(bytes, expected);
    }

    #[test]
    fn exact_decode_round_trips_and_classifies_defects() {
        let payload = b"{\"hello\":1}";
        let bytes = encode_frame(LOG_MAGIC, 1, payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        assert_eq!(decode_frame_exact(LOG_MAGIC, 1, &bytes).unwrap(), payload);

        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 2, bytes.len() - 1] {
            assert_eq!(
                decode_frame_exact(LOG_MAGIC, 1, &bytes[..cut]),
                Err(FrameDefect::Truncated),
                "cut at {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            decode_frame_exact(LOG_MAGIC, 1, &long),
            Err(FrameDefect::TrailingGarbage)
        );
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[HEADER_LEN + 4] ^= 1 << bit;
            assert_eq!(
                decode_frame_exact(LOG_MAGIC, 1, &flipped),
                Err(FrameDefect::Checksum)
            );
        }
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert_eq!(
            decode_frame_exact(LOG_MAGIC, 1, &magic),
            Err(FrameDefect::Magic)
        );
        // A snapshot frame is not a log frame.
        let snap = encode_frame(SNAP_MAGIC, 1, payload);
        assert_eq!(
            decode_frame_exact(LOG_MAGIC, 1, &snap),
            Err(FrameDefect::Magic)
        );
        let mut version = bytes.clone();
        version[4] = 0xFF;
        assert_eq!(
            decode_frame_exact(LOG_MAGIC, 1, &version),
            Err(FrameDefect::Version)
        );
    }

    #[test]
    fn multi_frame_walk_decodes_each_frame_and_stops_at_the_tear() {
        let mut buf = Vec::new();
        let payloads: [&[u8]; 3] = [b"one", b"", b"three-is-longer"];
        for p in payloads {
            buf.extend_from_slice(&encode_frame(LOG_MAGIC, 1, p));
        }
        // Tear mid-way through a fourth frame.
        let torn = encode_frame(LOG_MAGIC, 1, b"torn tail");
        buf.extend_from_slice(&torn[..torn.len() - 3]);

        let mut at = 0;
        let mut seen = Vec::new();
        loop {
            match decode_frame_at(LOG_MAGIC, 1, &buf, at) {
                Ok((payload, len)) => {
                    seen.push(payload.to_vec());
                    at += len;
                }
                Err(defect) => {
                    assert_eq!(defect, FrameDefect::Truncated);
                    break;
                }
            }
        }
        assert_eq!(seen, payloads.map(<[u8]>::to_vec));
        assert_eq!(
            at,
            3 * HEADER_LEN + payloads.iter().map(|p| p.len()).sum::<usize>()
        );
        // An `at` past the end is just a truncation, never a panic.
        assert_eq!(
            decode_frame_at(LOG_MAGIC, 1, &buf, buf.len() + 100),
            Err(FrameDefect::Truncated)
        );
    }

    #[test]
    fn retry_io_retries_only_transient_errors() {
        let mut calls = 0;
        let (res, retries) = retry_io(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(res.unwrap(), 3);
        assert_eq!(retries, 2);

        let (res, retries) = retry_io(|| -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::Interrupted, "forever"))
        });
        assert!(res.is_err());
        assert_eq!(retries, MAX_IO_ATTEMPTS - 1);

        let (res, retries) = retry_io(|| -> io::Result<()> { Err(io::Error::other("permanent")) });
        assert!(res.is_err());
        assert_eq!(retries, 0, "permanent errors are not retried");
    }
}
