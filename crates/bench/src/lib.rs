//! Shared experiment harness for the paper-reproduction binaries.
//!
//! Every table and figure of the paper's evaluation section has one
//! binary in `src/bin/` (see DESIGN.md §4 for the index). This library
//! holds what they share: the standard experiment fleet, vehicle
//! subsampling, result persistence under `results/`, and text-table
//! printing so each binary reproduces "the same rows/series the paper
//! reports" on stdout.

#![warn(missing_docs)]

pub mod perf;

use std::path::PathBuf;

use serde::Serialize;
use vup_core::{PipelineConfig, Scenario, VehicleView};
use vup_fleetsim::{Fleet, FleetConfig, VehicleId};

/// Seed of the standard experiment fleet; every binary uses it so results
/// are comparable across experiments.
pub const EXPERIMENT_SEED: u64 = 2019;

/// The full-scale experiment fleet (paper scale: 2 239 vehicles,
/// 2015-01-01 .. 2018-09-30).
pub fn experiment_fleet() -> Fleet {
    Fleet::generate(FleetConfig {
        seed: EXPERIMENT_SEED,
        ..FleetConfig::default()
    })
}

/// A reduced experiment fleet for the model-evaluation experiments.
pub fn small_fleet(n: usize) -> Fleet {
    Fleet::generate(FleetConfig::small(n, EXPERIMENT_SEED))
}

/// Picks up to `n` vehicles (evenly spread over the roster) whose
/// scenario series is long enough to evaluate under `config`.
pub fn evaluable_ids(
    fleet: &Fleet,
    config: &PipelineConfig,
    scenario: Scenario,
    n: usize,
) -> Vec<VehicleId> {
    let total = fleet.vehicles().len();
    let stride = (total / (n * 3).max(1)).max(1);
    let mut out = Vec::with_capacity(n);
    let mut idx = 0usize;
    while out.len() < n && idx < total {
        let id = VehicleId(idx as u32);
        let view = VehicleView::build(fleet, id, scenario);
        if view.len() > config.train_window + 30 {
            out.push(id);
        }
        idx += stride;
    }
    out
}

/// Directory where experiment outputs are written (`results/` at the
/// workspace root, falling back to the current directory).
pub fn results_dir() -> PathBuf {
    // The binaries run from the workspace root via `cargo run`; fall back
    // to CWD when the directory cannot be created.
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        dir
    } else {
        PathBuf::from(".")
    }
}

/// Persists a serializable result under `results/<name>.json` and returns
/// the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

/// Prints a header line followed by a separator, used by all binaries for
/// consistent tables.
pub fn print_header(columns: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$} "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Renders a fixed-width ASCII bar for quick visual comparison in
/// terminal output (the poor man's figure).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    // max <= 0 or NaN makes the scale degenerate; draw nothing.
    if max.is_nan() || max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluable_ids_respect_series_length() {
        let fleet = small_fleet(30);
        let config = PipelineConfig::default();
        let ids = evaluable_ids(&fleet, &config, Scenario::NextWorkingDay, 5);
        assert!(!ids.is_empty());
        assert!(ids.len() <= 5);
        for id in ids {
            let view = VehicleView::build(&fleet, id, Scenario::NextWorkingDay);
            assert!(view.len() > config.train_window + 30);
        }
    }

    #[test]
    fn bar_scales_and_handles_degenerate_input() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 4), "####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
    }

    #[test]
    fn json_roundtrip_to_results_dir() {
        let path = write_json("harness_selftest", &vec![1, 2, 3]);
        let text = std::fs::read_to_string(&path).expect("written file");
        assert!(text.contains('1'));
        std::fs::remove_file(path).ok();
    }
}
