//! Connectivity-loss and sensor-glitch injection.
//!
//! The paper stresses that cleaning matters "since vehicles operate in
//! remote regions where the sudden absence of connectivity may affect data
//! collection". This module corrupts a day's report stream the way the
//! field does: contiguous outage gaps, individually missing channel
//! values, duplicated uploads, and physically impossible glitch values.
//! `vup-dataprep`'s cleaning step is tested against exactly these defects.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::canbus::RawReport;

/// Probabilities of the four defect classes.
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutConfig {
    /// Probability that a day suffers a connectivity outage (a contiguous
    /// 20–80 % slice of its reports is lost).
    pub outage_prob: f64,
    /// Per-field probability that a channel value is missing from a report.
    pub field_missing_prob: f64,
    /// Per-report probability that one channel carries a glitch value
    /// (negative fuel level, absurd rpm).
    pub corrupt_prob: f64,
    /// Per-report probability that the upload is duplicated.
    pub duplicate_prob: f64,
}

impl Default for DropoutConfig {
    fn default() -> Self {
        DropoutConfig {
            outage_prob: 0.03,
            field_missing_prob: 0.01,
            corrupt_prob: 0.004,
            duplicate_prob: 0.006,
        }
    }
}

impl DropoutConfig {
    /// A configuration injecting no defects (for clean-path tests).
    pub fn none() -> DropoutConfig {
        DropoutConfig {
            outage_prob: 0.0,
            field_missing_prob: 0.0,
            corrupt_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

/// Applies the defect model to one day's reports, in place of the clean
/// stream. The result may be shorter (outage), longer (duplicates), carry
/// `None` fields, or contain glitch values.
pub fn apply(reports: Vec<RawReport>, cfg: &DropoutConfig, rng: &mut StdRng) -> Vec<RawReport> {
    let mut reports = reports;
    if reports.is_empty() {
        return reports;
    }
    // Outage: drop a contiguous slice.
    if rng.random::<f64>() < cfg.outage_prob {
        let n = reports.len();
        let lost = ((0.2 + 0.6 * rng.random::<f64>()) * n as f64).round() as usize;
        let lost = lost.clamp(1, n);
        let start = rng.random_range(0..=(n - lost));
        reports.drain(start..start + lost);
    }

    let mut out = Vec::with_capacity(reports.len() + 2);
    for mut r in reports {
        // Field-level missingness.
        if cfg.field_missing_prob > 0.0 {
            macro_rules! maybe_drop {
                ($field:ident) => {
                    if r.$field.is_some() && rng.random::<f64>() < cfg.field_missing_prob {
                        r.$field = None;
                    }
                };
            }
            maybe_drop!(fuel_level_pct);
            maybe_drop!(engine_rpm);
            maybe_drop!(oil_pressure_kpa);
            maybe_drop!(coolant_temp_c);
            maybe_drop!(fuel_rate_lph);
            maybe_drop!(speed_kmh);
            maybe_drop!(load_pct);
            maybe_drop!(pump_drive_temp_c);
            maybe_drop!(oil_tank_temp_c);
        }
        // Glitch values.
        if rng.random::<f64>() < cfg.corrupt_prob {
            match rng.random_range(0..3_u8) {
                0 => r.fuel_level_pct = Some(-12.0),
                1 => r.engine_rpm = Some(65_535.0), // stuck CAN word
                _ => r.coolant_temp_c = Some(-273.0),
            }
        }
        let duplicate = rng.random::<f64>() < cfg.duplicate_prob;
        out.push(r.clone());
        if duplicate {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::Date;
    use crate::canbus::{day_reports, TankState};
    use crate::holidays::Hemisphere;
    use crate::types::VehicleType;
    use rand::SeedableRng;

    fn clean_day(seed: u64) -> Vec<RawReport> {
        let profile = VehicleType::Paver.profile();
        let mut tank = TankState::new(&profile);
        let mut rng = StdRng::seed_from_u64(seed);
        day_reports(
            &profile,
            false,
            Date::new(2016, 6, 1).unwrap(),
            8.0,
            Hemisphere::North,
            &mut tank,
            1.0,
            &mut rng,
        )
    }

    #[test]
    fn none_config_is_identity() {
        let clean = clean_day(1);
        let mut rng = StdRng::seed_from_u64(2);
        let out = apply(clean.clone(), &DropoutConfig::none(), &mut rng);
        assert_eq!(out, clean);
    }

    #[test]
    fn outage_removes_contiguous_chunk() {
        let clean = clean_day(3);
        let cfg = DropoutConfig {
            outage_prob: 1.0,
            ..DropoutConfig::none()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = apply(clean.clone(), &cfg, &mut rng);
        assert!(out.len() < clean.len());
        assert!(!out.is_empty(), "outage must not drop everything here");
        // Remaining reports keep their relative order.
        for w in out.windows(2) {
            assert!(w[1].minute > w[0].minute);
        }
    }

    #[test]
    fn field_missingness_nulls_channels() {
        let clean = clean_day(5);
        let cfg = DropoutConfig {
            field_missing_prob: 0.5,
            ..DropoutConfig::none()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let out = apply(clean, &cfg, &mut rng);
        let missing = out.iter().filter(|r| r.engine_rpm.is_none()).count();
        assert!(missing > 0, "expected some missing rpm values");
    }

    #[test]
    fn corruption_produces_impossible_values() {
        let clean = clean_day(7);
        let cfg = DropoutConfig {
            corrupt_prob: 1.0,
            ..DropoutConfig::none()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let out = apply(clean, &cfg, &mut rng);
        let glitched = out
            .iter()
            .filter(|r| {
                r.fuel_level_pct.is_some_and(|v| v < 0.0)
                    || r.engine_rpm.is_some_and(|v| v > 10_000.0)
                    || r.coolant_temp_c.is_some_and(|v| v < -100.0)
            })
            .count();
        assert_eq!(glitched, out.len());
    }

    #[test]
    fn duplicates_extend_the_stream() {
        let clean = clean_day(9);
        let cfg = DropoutConfig {
            duplicate_prob: 1.0,
            ..DropoutConfig::none()
        };
        let mut rng = StdRng::seed_from_u64(10);
        let out = apply(clean.clone(), &cfg, &mut rng);
        assert_eq!(out.len(), 2 * clean.len());
        assert_eq!(out[0], out[1]);
    }

    #[test]
    fn empty_input_passes_through() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(apply(Vec::new(), &DropoutConfig::default(), &mut rng).is_empty());
    }

    #[test]
    fn default_rates_are_mild() {
        // With default probabilities the large majority of individual
        // reports survive byte-identical (a day has ~48 reports, so most
        // days are touched somewhere, but only lightly).
        let mut rng = StdRng::seed_from_u64(12);
        let mut total = 0usize;
        let mut surviving = 0usize;
        for seed in 0..50 {
            let clean = clean_day(100 + seed);
            let out = apply(clean.clone(), &DropoutConfig::default(), &mut rng);
            total += clean.len();
            surviving += clean.iter().filter(|r| out.contains(r)).count();
        }
        let rate = surviving as f64 / total as f64;
        assert!(rate > 0.85, "only {rate:.3} of reports survived intact");
    }
}
