//! The two prediction scenarios of the paper (§3).

use serde::{Deserialize, Serialize};

/// Threshold (hours) above which a day counts as a *working day* — the
/// paper defines the next-working-day scenario as predicting "the next day
/// on which the vehicle will be used at least 1 hour".
pub const WORKING_DAY_THRESHOLD: f64 = 1.0;

/// Which day the model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Predict the utilization hours of the next calendar day (idle days
    /// included — they are "almost randomly present" and hard to predict).
    NextDay,
    /// Predict the utilization hours of the next *working* day; the series
    /// is filtered to days with ≥ 1 h of usage before windowing.
    NextWorkingDay,
}

impl Scenario {
    /// Both scenarios, in the order the paper discusses them.
    pub const ALL: [Scenario; 2] = [Scenario::NextDay, Scenario::NextWorkingDay];

    /// Whether a day with the given hours belongs to this scenario's
    /// series.
    pub fn includes(self, hours: f64) -> bool {
        match self {
            Scenario::NextDay => true,
            Scenario::NextWorkingDay => hours >= WORKING_DAY_THRESHOLD,
        }
    }

    /// Display label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::NextDay => "next-day",
            Scenario::NextWorkingDay => "next-working-day",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusion_rules() {
        assert!(Scenario::NextDay.includes(0.0));
        assert!(Scenario::NextDay.includes(8.0));
        assert!(!Scenario::NextWorkingDay.includes(0.0));
        assert!(!Scenario::NextWorkingDay.includes(0.99));
        assert!(Scenario::NextWorkingDay.includes(1.0));
        assert!(Scenario::NextWorkingDay.includes(12.0));
    }

    #[test]
    fn labels_match_paper_wording() {
        assert_eq!(Scenario::NextDay.label(), "next-day");
        assert_eq!(Scenario::NextWorkingDay.label(), "next-working-day");
        assert_eq!(Scenario::ALL.len(), 2);
    }
}
