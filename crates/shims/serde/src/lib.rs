//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde models serialization through visitor traits; this shim
//! uses a much simpler contract — every [`Serialize`] type renders itself
//! to a [`Content`] tree, and every [`Deserialize`] type rebuilds itself
//! from one. `serde_json` (also vendored) converts `Content` to and from
//! JSON text. The `#[derive(Serialize, Deserialize)]` macros come from
//! the vendored `serde_derive` proc-macro crate and target this
//! contract.
//!
//! Supported shapes (everything the workspace derives): structs with
//! named fields, unit structs, enums with unit / tuple / struct
//! variants, and the primitive, `String`, `Vec`, `Option`, array, tuple
//! and map field types below.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (also covers unsigned values up to `i64::MAX`).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, `Vec`, tuples).
    Seq(Vec<Content>),
    /// Ordered string-keyed map (structs, maps, tagged enum variants).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map lookup; absent keys read as `Null` (lets `Option` fields
    /// default to `None`).
    pub fn field<'a>(&'a self, name: &str) -> &'a Content {
        static NULL: Content = Content::Null;
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description.
    pub message: String,
}

impl DeError {
    /// Builds an error from any displayable message.
    pub fn new(message: impl fmt::Display) -> DeError {
        DeError {
            message: message.to_string(),
        }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Content) -> DeError {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A value that can render itself to a [`Content`] tree.
pub trait Serialize {
    /// Renders the value.
    fn to_content(&self) -> Content;
}

/// A value that can rebuild itself from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds the value; fails with a descriptive error on shape
    /// mismatch.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- impls

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i128 = match content {
                    Content::I64(v) => *v as i128,
                    Content::U64(v) => *v as i128,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() < 2e18 => *v as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    )))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN), // serde_json writes non-finite floats as null
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let seq = content
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", content))?;
        if seq.len() != N {
            return Err(DeError::new(format!(
                "expected array of {N} elements, found {}",
                seq.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_content(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::expected("tuple sequence", content))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::new(format!(
                        "expected tuple of {expected}, found sequence of {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map()
            .ok_or_else(|| DeError::expected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let o: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_content(&o.to_content()).unwrap(), o);
        let none: Option<f64> = None;
        assert_eq!(
            Option::<f64>::from_content(&none.to_content()).unwrap(),
            none
        );
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_content(&arr.to_content()).unwrap(), arr);
        let pair = (3usize, vec![1usize, 2]);
        assert_eq!(
            <(usize, Vec<usize>)>::from_content(&pair.to_content()).unwrap(),
            pair
        );
    }

    #[test]
    fn missing_map_fields_read_as_null() {
        let c = Content::Map(vec![("a".into(), Content::I64(1))]);
        assert_eq!(c.field("a"), &Content::I64(1));
        assert_eq!(c.field("b"), &Content::Null);
        assert_eq!(Option::<u32>::from_content(c.field("b")).unwrap(), None);
        assert!(u32::from_content(c.field("b")).is_err());
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(Vec::<u32>::from_content(&Content::Bool(true)).is_err());
        assert!(u8::from_content(&Content::I64(300)).is_err());
    }
}
