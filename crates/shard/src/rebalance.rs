//! Atomic snapshot rebalancing between shard directories.
//!
//! When the shard count changes `from → to`, the vehicles
//! [`remapped`](crate::partition::remapped) by the partitioner must
//! have their model snapshots moved so each shard's warm-start
//! directory keeps owning exactly its vehicles. The move protocol is
//! crash-safe and never holds a snapshot in fewer than one verified
//! location:
//!
//! 1. **verify** the source bytes through the snapshot audit path
//!    ([`verify_snapshot`] — CRC, format version, name/content
//!    agreement); corrupt files are *left in place* for the store's
//!    own quarantine machinery and reported, never moved;
//! 2. **copy** into the destination shard directory via a temporary
//!    name and an atomic rename;
//! 3. **re-verify** the destination bytes (a torn copy aborts the move
//!    and keeps the source);
//! 4. **remove** the source file;
//! 5. after all moves, **bump the manifest generation**
//!    ([`bump_generation`]) of every directory that gained or lost a
//!    file, marking the out-of-band mutation for the next store open.
//!
//! A crash at any step leaves either the verified source, the verified
//! destination, or both — `vup store verify` stays green on every
//! shard directory (a leftover `.rebalance.tmp` from a crash between
//! write and rename is flagged, which is exactly the signal wanted).

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use vup_fleetsim::VehicleId;
use vup_serve::{bump_generation, parse_snapshot_name, verify_snapshot, StorageBackend};

use crate::partition::shard_of;

/// Suffix of in-flight destination copies; never left behind by a
/// completed rebalance. Ends in `.tmp` so the store's audit path
/// flags a crash-orphaned copy instead of ignoring it.
const TMP_SUFFIX: &str = ".rebalance.tmp";

/// The snapshot directory of one shard under a shard root.
pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// One snapshot the rebalance moved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovedSnapshot {
    /// Snapshot file name (`v{vehicle:08}-{fingerprint:016x}.snap`).
    pub file: String,
    /// The vehicle the snapshot belongs to.
    pub vehicle: VehicleId,
    /// Source shard index.
    pub from: u32,
    /// Destination shard index.
    pub to: u32,
    /// Snapshot size in bytes.
    pub bytes: u64,
}

/// What a rebalance did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RebalanceReport {
    /// Shard count the directories were laid out for.
    pub from_shards: u32,
    /// Shard count the directories now serve.
    pub to_shards: u32,
    /// Snapshot files examined across all source shard directories.
    pub examined: usize,
    /// Snapshots moved, in (source shard, file name) order.
    pub moved: Vec<MovedSnapshot>,
    /// Files that should have moved but failed verification; left in
    /// place for the owning store to quarantine.
    pub skipped_corrupt: Vec<String>,
    /// Total bytes moved.
    pub bytes_moved: u64,
    /// Shard directories whose manifest generation was bumped, with the
    /// new generation.
    pub bumped: Vec<(u32, u64)>,
}

/// Moves every snapshot whose vehicle the `from → to` repartition
/// remaps, following the verify–copy–verify–remove protocol above.
///
/// Directories that do not exist are treated as empty (a shard that
/// never persisted anything has nothing to move). Both growth and
/// shrinkage work; `to` must be ≥ 1.
pub fn rebalance(
    backend: &dyn StorageBackend,
    root: &Path,
    from: u32,
    to: u32,
) -> io::Result<RebalanceReport> {
    assert!(from > 0 && to > 0, "at least one shard");
    let mut report = RebalanceReport {
        from_shards: from,
        to_shards: to,
        ..RebalanceReport::default()
    };
    let mut touched: Vec<u32> = Vec::new();
    for source in 0..from {
        let source_dir = shard_dir(root, source);
        let files = match backend.list(&source_dir) {
            Ok(files) => files,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for path in files {
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            let Some((vehicle, _fingerprint)) = parse_snapshot_name(&name) else {
                continue; // manifests, quarantine dirs, foreign files
            };
            report.examined += 1;
            let target = shard_of(vehicle, to);
            if target == source {
                continue;
            }
            let bytes = backend.read(&path)?;
            if verify_snapshot(&name, &bytes).is_err() {
                report.skipped_corrupt.push(name);
                continue;
            }
            let target_dir = shard_dir(root, target);
            backend.create_dir_all(&target_dir)?;
            let tmp = target_dir.join(format!("{name}{TMP_SUFFIX}"));
            let dest = target_dir.join(&name);
            backend.write(&tmp, &bytes)?;
            backend.rename(&tmp, &dest)?;
            // Re-read what actually landed before dropping the source.
            let landed = backend.read(&dest)?;
            if verify_snapshot(&name, &landed).is_err() {
                backend.remove(&dest)?;
                report.skipped_corrupt.push(name);
                continue;
            }
            backend.remove(&path)?;
            if !touched.contains(&source) {
                touched.push(source);
            }
            if !touched.contains(&target) {
                touched.push(target);
            }
            report.bytes_moved += bytes.len() as u64;
            report.moved.push(MovedSnapshot {
                file: name,
                vehicle,
                from: source,
                to: target,
                bytes: bytes.len() as u64,
            });
        }
    }
    touched.sort_unstable();
    for shard in touched {
        let generation = bump_generation(backend, &shard_dir(root, shard))?;
        report.bumped.push((shard, generation));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_serve::{audit, DiskBackend};

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vup-shard-rebalance-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Persists one model per vehicle into the shard layout for
    /// `shards` shards and returns the file names per shard.
    fn seed_stores(root: &Path, shards: u32, vehicles: u32) -> Vec<Vec<String>> {
        use vup_core::{ModelSpec, PipelineConfig};
        use vup_ml::baseline::BaselineSpec;
        use vup_serve::ModelStore;
        let fleet =
            vup_fleetsim::Fleet::generate(vup_fleetsim::FleetConfig::small(vehicles as usize, 7));
        let config = PipelineConfig {
            model: ModelSpec::Baseline(BaselineSpec::LastValue),
            ..PipelineConfig::default()
        };
        for shard in 0..shards {
            let store = ModelStore::open(shard_dir(root, shard)).unwrap();
            for id in 0..vehicles {
                if shard_of(VehicleId(id), shards) != shard {
                    continue;
                }
                let view = vup_core::VehicleView::build(&fleet, VehicleId(id), config.scenario);
                let predictor = vup_core::FittedPredictor::fit(&view, &config, 0, view.len())
                    .expect("baseline fit cannot fail");
                store.insert(VehicleId(id), &config, predictor, view.len());
            }
        }
        (0..shards)
            .map(|shard| {
                DiskBackend
                    .list(&shard_dir(root, shard))
                    .unwrap()
                    .into_iter()
                    .filter_map(|p| {
                        let name = p.file_name()?.to_str()?.to_string();
                        parse_snapshot_name(&name).map(|_| name)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn rebalance_moves_exactly_the_remapped_set_and_stores_stay_clean() {
        let root = temp_root("grow");
        let vehicles = 24u32;
        seed_stores(&root, 2, vehicles);
        let report = rebalance(&DiskBackend, &root, 2, 3).unwrap();

        let expected = crate::partition::remapped(vehicles, 2, 3);
        let mut moved: Vec<(VehicleId, u32, u32)> = report
            .moved
            .iter()
            .map(|m| (m.vehicle, m.from, m.to))
            .collect();
        moved.sort_by_key(|(v, _, _)| *v);
        assert_eq!(moved, expected, "moved set == remapped set");
        assert!(report.skipped_corrupt.is_empty());
        assert!(report.bytes_moved > 0);

        // Every shard dir audits clean and owns exactly its vehicles.
        for shard in 0..3u32 {
            let dir = shard_dir(&root, shard);
            for entry in audit(&DiskBackend, &dir).unwrap() {
                if entry.file == "MANIFEST.json" {
                    continue;
                }
                assert_eq!(entry.verdict, Ok(()), "{:?}", entry);
                let (vehicle, _) = parse_snapshot_name(&entry.file).unwrap();
                assert_eq!(shard_of(vehicle, 3), shard);
            }
        }
        // Touched dirs carry a bumped generation.
        assert!(!report.bumped.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_sources_are_reported_and_left_in_place() {
        let root = temp_root("corrupt");
        let per_shard = seed_stores(&root, 2, 24);
        // Corrupt one file that would otherwise move.
        let movers = crate::partition::remapped(24, 2, 3);
        let (victim_vehicle, victim_shard, _) = movers[0];
        let victim = per_shard[victim_shard as usize]
            .iter()
            .find(|name| parse_snapshot_name(name).unwrap().0 == victim_vehicle)
            .unwrap()
            .clone();
        let victim_path = shard_dir(&root, victim_shard).join(&victim);
        let mut bytes = std::fs::read(&victim_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim_path, &bytes).unwrap();

        let report = rebalance(&DiskBackend, &root, 2, 3).unwrap();
        assert_eq!(report.skipped_corrupt, vec![victim.clone()]);
        assert!(victim_path.exists(), "corrupt source left for quarantine");
        assert!(report.moved.iter().all(|m| m.file != victim));
        let _ = std::fs::remove_dir_all(&root);
    }
}
