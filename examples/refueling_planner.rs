//! Refueling scheduling — the paper's motivating use case
//! ("e.g., schedule refueling", §1).
//!
//! For each vehicle the planner combines the end-of-day fuel level from
//! the latest CAN report, the unit's nominal burn rate, and the
//! *predicted* utilization hours of the next working day to decide which
//! units the fuel truck must visit tonight: everyone who would otherwise
//! dip below the safety reserve before tomorrow's shift ends.
//!
//! Run with: `cargo run --release --example refueling_planner`

use vehicle_usage_prediction::prelude::*;
use vup_fleetsim::generator;

/// Fraction of the tank kept as a safety reserve.
const RESERVE_FRAC: f64 = 0.15;

fn main() {
    let fleet = Fleet::generate(FleetConfig::small(40, 99));
    let config = PipelineConfig::default();

    println!("Tonight's refueling plan\n");
    println!(
        "{:<4} {:<20} {:>10} {:>12} {:>12} {:>9}",
        "id", "type", "fuel-now", "pred-hours", "burn-need", "visit?"
    );

    let mut visits = 0;
    for id in (0..14).map(VehicleId) {
        let vehicle = fleet.vehicle(id).expect("exists").clone();
        let profile = vehicle.vtype.profile();
        let history = generator::generate_history(&fleet, id);
        let view = VehicleView::from_history(&fleet, &history, Scenario::NextWorkingDay);
        if view.len() < config.train_window + 2 {
            continue;
        }

        // Latest observed fuel state (percent of tank, from the daily
        // aggregates) and tank capacity from the type profile.
        let last_active = history
            .records
            .iter()
            .rev()
            .find(|r| r.hours > 0.0)
            .expect("vehicle has worked at least once");
        let tank_l = (profile.fuel_rate_lph * 18.0).max(60.0);
        let fuel_now_l = last_active.can.fuel_level_end_pct / 100.0 * tank_l;

        // Predict tomorrow's working hours with the paper pipeline.
        let model =
            FittedPredictor::fit(&view, &config, view.len() - config.train_window, view.len())
                .expect("window fits");
        let predicted_hours = model
            .predict(&view, view.len() - 1)
            .expect("history available");

        // Expected burn at the nominal mid-load rate.
        let burn_l = predicted_hours * profile.fuel_rate_lph * 0.75;
        let needs_visit = fuel_now_l - burn_l < RESERVE_FRAC * tank_l;
        if needs_visit {
            visits += 1;
        }
        println!(
            "{:<4} {:<20} {:>8.0}L {:>11.1}h {:>11.0}L {:>9}",
            id.0,
            vehicle.vtype.name(),
            fuel_now_l,
            predicted_hours,
            burn_l,
            if needs_visit { "YES" } else { "-" }
        );
    }
    println!("\nFuel truck stops required tonight: {visits}");
}
