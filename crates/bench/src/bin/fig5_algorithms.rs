//! Figure 5 — per-algorithm prediction-error distributions in both
//! scenarios.
//!
//! Evaluates the paper's six models (LV, MA, LR, Lasso, SVR, GB) at the
//! recommended operating point (K = 20, w = 140) over a fleet subsample,
//! in the next-day (5a) and next-working-day (5b) scenarios, and prints
//! the per-vehicle PE distribution summary of each bar of the figure.
//!
//! Run with: `cargo run --release -p vup-bench --bin fig5_algorithms`

use vup_bench::{bar, evaluable_ids, print_header, small_fleet, write_json};
use vup_core::fleet_eval::evaluate_fleet;
use vup_core::report::{distribution_summary, AlgorithmResult};
use vup_core::{PipelineConfig, Scenario};

const N_VEHICLES: usize = 60;
/// Most recent slots evaluated per vehicle (see EXPERIMENTS.md).
const EVAL_TAIL: usize = 360;

fn main() {
    let fleet = small_fleet(600);
    let mut results: Vec<AlgorithmResult> = Vec::new();

    for scenario in Scenario::ALL {
        let probe = PipelineConfig {
            scenario,
            retrain_every: 7,
            eval_tail: Some(EVAL_TAIL),
            ..PipelineConfig::default()
        };
        let ids = evaluable_ids(&fleet, &probe, scenario, N_VEHICLES);
        println!(
            "== Fig. 5{}: scenario {}, {} vehicles, K={}, w={} ==\n",
            if scenario == Scenario::NextDay {
                "a"
            } else {
                "b"
            },
            scenario.label(),
            ids.len(),
            probe.k,
            probe.train_window
        );
        print_header(&[
            ("model", 6),
            ("mean", 8),
            ("median", 8),
            ("q1", 8),
            ("q3", 8),
            ("", 26),
        ]);
        for model in probe.model_suite() {
            let cfg = PipelineConfig {
                model: model.clone(),
                ..probe.clone()
            };
            let eval = evaluate_fleet(&fleet, &ids, &cfg, 0);
            let dist = eval.pe_distribution();
            let Some((mean, median, q1, q3)) = distribution_summary(&dist) else {
                println!("{:>6} {:>8}", model.label(), "n/a");
                continue;
            };
            println!(
                "{:>6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {}",
                model.label(),
                mean,
                median,
                q1,
                q3,
                bar(median, 120.0, 26),
            );
            results.push(AlgorithmResult {
                model: model.label().to_owned(),
                scenario: scenario.label().to_owned(),
                mean_pe: mean,
                median_pe: median,
                q1_pe: q1,
                q3_pe: q3,
                n_vehicles: dist.len(),
            });
        }
        println!();
    }

    println!("Paper shape checks:");
    println!(" - ML models beat both baselines in both scenarios;");
    println!(" - single (SVR) and ensemble (GB) methods score similarly;");
    println!(" - next-working-day error is roughly half the next-day error.");

    let path = write_json("fig5_algorithms", &results);
    println!("\nFull data written to {}", path.display());
}
