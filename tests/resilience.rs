//! Chaos tests for the resilient serve path: seeded fault plans must
//! produce bit-identical outcomes at every thread count, with and
//! without live instrumentation; the outcome counters must account for
//! every request under every plan; and a plan that fails every primary
//! fit must degrade the whole batch to the baseline fallback — never
//! fail it — with the circuit-breaker transition counters matching the
//! plan's predicted sequence.

use vehicle_usage_prediction::prelude::*;
use vehicle_usage_prediction::serve::{BreakerConfig, BreakerState};

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 7,
        ..PipelineConfig::default()
    }
}

fn requests(ids: &[u32], horizon: usize) -> Vec<BatchRequest> {
    ids.iter()
        .map(|&id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon,
        })
        .collect()
}

/// Outcome kind tally in a fixed order: served, retrained, degraded,
/// skipped, failed.
fn tally(outcomes: &[ServeOutcome]) -> [usize; 5] {
    let mut counts = [0usize; 5];
    for outcome in outcomes {
        let slot = match outcome {
            ServeOutcome::Served(_) => 0,
            ServeOutcome::RetrainedThenServed(_) => 1,
            ServeOutcome::Degraded(_) => 2,
            ServeOutcome::Skipped { .. } => 3,
            ServeOutcome::Failed { .. } => 4,
        };
        counts[slot] += 1;
    }
    counts
}

fn forecast_bits(outcomes: &[ServeOutcome]) -> Vec<Vec<u64>> {
    outcomes
        .iter()
        .map(|o| {
            o.forecast()
                .map(|f| f.hours.iter().map(|h| h.to_bits()).collect())
                .unwrap_or_default()
        })
        .collect()
}

fn mixed_plan() -> FaultPlan {
    FaultPlan {
        seed: 99,
        fit_error_rate: 0.4,
        fit_panic_rate: 0.1,
        fail_vehicles: vec![2],
        slow_rate: 0.5,
        slow_fit_nanos: 1_000,
        poison_rate: 0.5,
        disk: None,
        shards: None,
    }
}

fn resilient_profile() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy::with_attempts(3),
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown_batches: 2,
        },
        fallback: Some(BaselineSpec::LastValue),
        ..ResilienceConfig::default()
    }
}

/// Runs the same three-batch chaos session on a fresh service and
/// returns every batch's outcomes concatenated.
fn chaos_session(
    fleet: &Fleet,
    threads: usize,
    registry: &Registry,
    tracer: Tracer,
) -> Vec<ServeOutcome> {
    let service = PredictionService::new_observed(fleet, fast_config(), threads, registry)
        .unwrap()
        .with_tracer(tracer)
        .with_resilience(resilient_profile())
        .with_faults(mixed_plan());
    let batch = requests(&[0, 1, 2, 3, 4, 5], 2);
    let mut all = Vec::new();
    for as_of in [300, 307, 314] {
        all.extend(service.serve_batch(&batch, Some(as_of)));
    }
    all
}

#[test]
fn chaos_runs_are_bit_identical_across_threads_and_instrumentation() {
    let fleet = Fleet::generate(FleetConfig::small(6, 505));
    let reference = chaos_session(&fleet, 1, &Registry::disabled(), Tracer::disabled());
    assert_eq!(reference.len(), 18);
    // Something actually went wrong somewhere (vehicle 2 always faults),
    // and something was still served: the plan bites without sterilizing
    // the run.
    let counts = tally(&reference);
    assert!(
        counts[2] > 0,
        "no degraded outcomes under the chaos plan: {counts:?}"
    );
    assert!(
        counts[0] + counts[1] > 0,
        "nothing served at all: {counts:?}"
    );

    for threads in [2usize, 4] {
        // Disabled instrumentation, more workers.
        let plain = chaos_session(&fleet, threads, &Registry::disabled(), Tracer::disabled());
        assert_eq!(plain, reference, "threads = {threads}");
        assert_eq!(forecast_bits(&plain), forecast_bits(&reference));
        // Live registry + tracer must not perturb the chaos either.
        let registry = Registry::new();
        let observed = chaos_session(&fleet, threads, &registry, Tracer::new());
        assert_eq!(observed, reference, "observed, threads = {threads}");
        assert_eq!(forecast_bits(&observed), forecast_bits(&reference));
        assert_eq!(tally(&observed), counts);
        // And the live run accounted for every request.
        assert_eq!(
            registry
                .snapshot()
                .counter_total("vup_serve_outcomes_total"),
            18
        );
    }
}

#[test]
fn outcome_counters_sum_to_batch_size_under_every_fault_plan() {
    let fleet = Fleet::generate(FleetConfig::small(4, 606));
    let plans = [
        FaultPlan::default(),
        FaultPlan::fail_all_fits(1),
        FaultPlan {
            seed: 2,
            fit_panic_rate: 0.5,
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 3,
            slow_rate: 1.0,
            slow_fit_nanos: 10_000,
            fit_error_rate: 0.5,
            ..FaultPlan::default()
        },
        FaultPlan {
            seed: 4,
            poison_rate: 1.0,
            ..FaultPlan::default()
        },
    ];
    // A batch with every failure mode reachable: healthy vehicles, an
    // unknown vehicle, and a zero-horizon request.
    let mut batch = requests(&[0, 1, 2, 3], 2);
    batch.push(BatchRequest {
        vehicle_id: VehicleId(99),
        horizon: 1,
    });
    batch.push(BatchRequest {
        vehicle_id: VehicleId(0),
        horizon: 0,
    });

    for (i, plan) in plans.into_iter().enumerate() {
        let registry = Registry::new();
        let resilience = ResilienceConfig {
            deadline_nanos: Some(15_000),
            ..resilient_profile()
        };
        let service = PredictionService::new_observed(&fleet, fast_config(), 2, &registry)
            .unwrap()
            .with_resilience(resilience)
            .with_faults(plan);
        let mut outcomes = Vec::new();
        for as_of in [300, 307] {
            outcomes.extend(service.serve_batch(&batch, Some(as_of)));
        }
        let counts = tally(&outcomes);
        assert_eq!(counts.iter().sum::<usize>(), outcomes.len(), "plan {i}");
        // The five outcome series cover every request exactly once.
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter_total("vup_serve_outcomes_total"),
            outcomes.len() as u64,
            "plan {i}"
        );
        for (label, count) in ["served", "retrained", "degraded", "skipped", "failed"]
            .iter()
            .zip(counts)
        {
            assert_eq!(
                registry
                    .counter_with("vup_serve_outcomes_total", &[("outcome", label)])
                    .get(),
                count as u64,
                "plan {i}, outcome {label}"
            );
        }
        // The invalid requests never reach the model path.
        assert!(counts[3] >= 2 * 2, "plan {i}: {counts:?}");
    }
}

#[test]
fn degraded_provenance_equality_ignores_stage_timings() {
    let fleet = Fleet::generate(FleetConfig::small(1, 707));
    let run = |registry: &Registry| {
        let service = PredictionService::new_observed(&fleet, fast_config(), 1, registry)
            .unwrap()
            .with_resilience(resilient_profile())
            .with_faults(FaultPlan::fail_all_fits(9));
        service.serve_batch(&requests(&[0], 2), Some(300))
    };
    let live_registry = Registry::new();
    let plain = run(&Registry::disabled());
    let live = run(&live_registry);
    assert!(plain[0].is_degraded() && live[0].is_degraded());
    // The live run measured real stage time; equality still holds
    // because Provenance::eq ignores the timing fields.
    assert_eq!(plain, live);
    let mut timed = live[0].provenance().clone();
    timed.stage_nanos.fit = 123_456_789;
    timed.stage_nanos.predict = 42;
    assert_eq!(&timed, plain[0].provenance());
}

#[test]
fn all_failing_fits_degrade_every_request_with_predicted_breaker_counters() {
    let fleet = Fleet::generate(FleetConfig::small(3, 808));
    let vehicles = 3u64;
    let batches = 6usize;
    let config = PipelineConfig {
        retrain_every: 1, // every batch is a fresh fit episode
        ..fast_config()
    };
    let run = |threads: usize, registry: &Registry| -> Vec<ServeOutcome> {
        let service = PredictionService::new_observed(&fleet, config.clone(), threads, registry)
            .unwrap()
            .with_resilience(resilient_profile())
            .with_faults(FaultPlan::fail_all_fits(20_190_326));
        let batch = requests(&[0, 1, 2], 2);
        let mut all = Vec::new();
        for i in 0..batches {
            all.extend(service.serve_batch(&batch, Some(300 + i)));
        }
        assert_eq!(service.breaker().state(0), BreakerState::Open);
        all
    };

    let registry = Registry::new();
    let reference = run(1, &registry);
    // Acceptance: 100% degraded, zero failed, zero skipped.
    assert_eq!(
        tally(&reference),
        [0, 0, vehicles as usize * batches, 0, 0],
        "every request must degrade, none may fail"
    );
    for outcome in &reference {
        let p = outcome.provenance();
        assert_eq!(p.path, ServePath::Degraded);
        assert_eq!(p.model_label, "LV");
        assert!(p.reason.is_some());
    }

    // Breaker sequence per vehicle over 6 all-failing batches with
    // threshold 3 / cooldown 2: fail, fail, fail→open, reject,
    // half-open probe fails→re-open, reject. So per vehicle: 2×→open,
    // 1×→half_open, 0×→closed, 2 rejections.
    let transitions = |to: &str| {
        registry
            .counter_with("vup_serve_breaker_transitions_total", &[("to", to)])
            .get()
    };
    assert_eq!(transitions("open"), 2 * vehicles);
    assert_eq!(transitions("half_open"), vehicles);
    assert_eq!(transitions("closed"), 0);
    assert_eq!(
        registry.counter("vup_serve_breaker_rejections_total").get(),
        2 * vehicles
    );
    assert_eq!(
        registry.gauge("vup_serve_breaker_open").get(),
        vehicles as f64
    );
    // The same counters appear in the Prometheus exposition.
    let text = registry.snapshot().to_prometheus_text();
    assert!(
        text.contains("vup_serve_breaker_transitions_total{to=\"open\"} 6"),
        "{text}"
    );
    assert!(
        text.contains("vup_serve_breaker_transitions_total{to=\"half_open\"} 3"),
        "{text}"
    );

    // Bit-identical at every thread count, instrumented or not.
    for threads in [2usize, 4] {
        let other = run(threads, &Registry::disabled());
        assert_eq!(other, reference, "threads = {threads}");
        assert_eq!(forecast_bits(&other), forecast_bits(&reference));
    }
}
