//! Deterministic flame profiles aggregated from the span-tree journal.
//!
//! The tracer answers *what happened when*; this module folds its
//! journal into *where the work went*: every finished span is assigned a
//! **stack path** (the `;`-joined names of its non-elided ancestors plus
//! itself, the format flamegraph tooling expects) and all spans sharing
//! a path merge into one [`ProfileNode`] carrying four weights —
//! invocation count, bytes touched, total (inclusive) nanoseconds and
//! self (exclusive) nanoseconds.
//!
//! **The determinism contract.** Counts and bytes are wall-free: the
//! same workload produces the same span tree shape at any thread count
//! and with any other observability on or off, so the profile's *shape*
//! — the set of stack paths, their counts and their byte weights, plus
//! the per-stage rollup — is bit-identical across runs
//! ([`Profile::to_shape_json`], [`ProfileWeight::Count`] /
//! [`ProfileWeight::Bytes`] collapsed exports). Timings
//! (`total_nanos` / `self_nanos`) are explicitly *excluded*: they exist
//! for humans and flamegraphs, never for equality.
//!
//! Two tree normalizations make the shape thread-count-invariant:
//!
//! - spans named in [`ProfileOptions::elide`] (by default
//!   `executor_worker`, which exists once per worker thread) contribute
//!   to no aggregate — no node, no stage rollup, no span count; their
//!   children re-parent to the nearest non-elided ancestor;
//! - thread ids never enter the stack path.
//!
//! A profile built from a saturated ring (journal drops) is flagged
//! [`truncated`](Profile::truncated): its shape can no longer be trusted
//! to match an untruncated run's.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use crate::export::json_string;
use crate::trace::{TraceEvent, TraceSnapshot};

/// Schema version stamped into [`Profile::to_json`] /
/// [`Profile::to_shape_json`] output.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// The canonical pipeline stages a span name rolls up into.
const STAGES: &[(&str, &[&str])] = &[
    ("view_build", &["view_build"]),
    ("fit", &["fit", "fallback_fit"]),
    ("predict", &["predict"]),
    (
        "persist",
        &["store_persist", "store_recover", "log_recover"],
    ),
    ("ingest_seal", &["ingest_seal"]),
    ("net", &["net_request"]),
];

/// Maps a span name to its canonical stage, or `None` for spans outside
/// the six pipeline stages (non-elided ones still appear in the stack
/// nodes and in the `other` stage rollup).
pub fn stage_of(name: &str) -> Option<&'static str> {
    STAGES
        .iter()
        .find(|(_, names)| names.contains(&name))
        .map(|(stage, _)| *stage)
}

/// Knobs for profile aggregation.
#[derive(Clone, Debug)]
pub struct ProfileOptions {
    /// Span names elided from stack paths (children re-parent). The
    /// default elides `executor_worker`, whose per-thread spans would
    /// otherwise make the shape depend on the worker count.
    pub elide: Vec<&'static str>,
}

impl Default for ProfileOptions {
    fn default() -> ProfileOptions {
        ProfileOptions {
            elide: vec!["executor_worker"],
        }
    }
}

/// One aggregated stack path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileNode {
    /// `;`-joined span names from root to this frame (collapsed-stack
    /// convention).
    pub stack: String,
    /// Spans merged into this node. Deterministic.
    pub count: u64,
    /// Bytes touched by those spans ([`crate::Span::add_bytes`]).
    /// Deterministic.
    pub bytes: u64,
    /// Inclusive nanoseconds (span durations summed). Timing — excluded
    /// from the determinism contract.
    pub total_nanos: u64,
    /// Exclusive nanoseconds: total minus time attributed to non-elided
    /// descendants reachable without crossing a non-elided frame.
    /// Timing — excluded from the determinism contract.
    pub self_nanos: u64,
}

/// Per-stage rollup: every span whose name belongs to the stage, summed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name (`view_build`, `fit`, `predict`, `persist`,
    /// `ingest_seal`, `net`, or `other`).
    pub stage: &'static str,
    /// Spans in this stage. Deterministic.
    pub count: u64,
    /// Bytes touched in this stage. Deterministic.
    pub bytes: u64,
    /// Inclusive nanoseconds. Timing — excluded from determinism.
    pub total_nanos: u64,
}

/// Which weight a collapsed-stack export carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfileWeight {
    /// Exclusive nanoseconds — the flamegraph default. Not deterministic.
    SelfNanos,
    /// Invocation counts — deterministic across runs and thread counts.
    Count,
    /// Bytes touched — deterministic across runs and thread counts.
    Bytes,
}

/// A deterministic self/total-time flame profile aggregated from one
/// [`TraceSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Aggregated stack nodes, sorted by stack path.
    pub nodes: Vec<ProfileNode>,
    /// Per-stage rollup, in canonical stage order (then `other`).
    pub stages: Vec<StageSummary>,
    /// Spans aggregated. Elided spans are excluded — they exist once per
    /// worker thread and would break thread-count invariance.
    pub spans: u64,
    /// Events the journal dropped before this profile was built.
    pub dropped: u64,
    /// True when the ring saturated (`dropped > 0`): the shape may be
    /// missing spans and must not be used for determinism comparison.
    pub truncated: bool,
}

impl Profile {
    /// Aggregates a snapshot with [default](ProfileOptions::default)
    /// options.
    pub fn from_snapshot(snapshot: &TraceSnapshot) -> Profile {
        Profile::with_options(snapshot, &ProfileOptions::default())
    }

    /// Aggregates a snapshot.
    pub fn with_options(snapshot: &TraceSnapshot, options: &ProfileOptions) -> Profile {
        let events = &snapshot.events;
        let by_id: HashMap<u64, usize> =
            events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
        let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
        for (idx, event) in events.iter().enumerate() {
            if event.parent != 0 && by_id.contains_key(&event.parent) {
                children.entry(event.parent).or_default().push(idx);
            }
        }
        let elided = |event: &TraceEvent| options.elide.contains(&event.name);

        // Stack path per event: walk up through parents, skipping elided
        // frames; memoized per span id.
        let mut paths: HashMap<u64, String> = HashMap::new();
        fn path_of(
            idx: usize,
            events: &[TraceEvent],
            by_id: &HashMap<u64, usize>,
            elide: &[&'static str],
            paths: &mut HashMap<u64, String>,
        ) -> String {
            let event = &events[idx];
            if let Some(cached) = paths.get(&event.id) {
                return cached.clone();
            }
            let parent_path = by_id
                .get(&event.parent)
                .map(|&pidx| path_of(pidx, events, by_id, elide, paths))
                .unwrap_or_default();
            let path = if elide.contains(&event.name) {
                parent_path
            } else if parent_path.is_empty() {
                event.name.to_string()
            } else {
                format!("{parent_path};{}", event.name)
            };
            paths.insert(event.id, path.clone());
            path
        }

        // Self time: total minus the durations of effective (non-elided,
        // reached through elided frames) direct children. Worker spans
        // overlap in wall time, so saturate at zero.
        fn effective_child_nanos(
            id: u64,
            events: &[TraceEvent],
            children: &HashMap<u64, Vec<usize>>,
            elide: &[&'static str],
        ) -> u64 {
            let mut sum = 0u64;
            for &idx in children.get(&id).map_or(&[][..], |v| v.as_slice()) {
                let child = &events[idx];
                sum = sum.saturating_add(if elide.contains(&child.name) {
                    effective_child_nanos(child.id, events, children, elide)
                } else {
                    child.duration_nanos
                });
            }
            sum
        }

        let mut nodes: BTreeMap<String, ProfileNode> = BTreeMap::new();
        let mut stage_totals: HashMap<&'static str, StageSummary> = HashMap::new();
        let mut spans = 0u64;
        for (idx, event) in events.iter().enumerate() {
            // Elided spans exist once per worker thread: keeping them out
            // of every aggregate (span count, stage rollup, nodes) is what
            // makes the shape thread-count-invariant.
            if elided(event) {
                continue;
            }
            spans += 1;
            let stage = stage_of(event.name).unwrap_or("other");
            let entry = stage_totals.entry(stage).or_insert(StageSummary {
                stage,
                count: 0,
                bytes: 0,
                total_nanos: 0,
            });
            entry.count += 1;
            entry.bytes = entry.bytes.saturating_add(event.bytes);
            entry.total_nanos = entry.total_nanos.saturating_add(event.duration_nanos);
            let stack = path_of(idx, events, &by_id, &options.elide, &mut paths);
            let self_nanos = event.duration_nanos.saturating_sub(effective_child_nanos(
                event.id,
                events,
                &children,
                &options.elide,
            ));
            let node = nodes.entry(stack.clone()).or_insert(ProfileNode {
                stack,
                count: 0,
                bytes: 0,
                total_nanos: 0,
                self_nanos: 0,
            });
            node.count += 1;
            node.bytes = node.bytes.saturating_add(event.bytes);
            node.total_nanos = node.total_nanos.saturating_add(event.duration_nanos);
            node.self_nanos = node.self_nanos.saturating_add(self_nanos);
        }

        let mut stages: Vec<StageSummary> = STAGES
            .iter()
            .map(|(name, _)| *name)
            .chain(std::iter::once("other"))
            .filter_map(|name| stage_totals.remove(name))
            .collect();
        // Keep any stage with zero spans out; the shape is what ran.
        stages.retain(|s| s.count > 0);

        Profile {
            nodes: nodes.into_values().collect(),
            stages,
            spans,
            dropped: snapshot.dropped,
            truncated: snapshot.dropped > 0,
        }
    }

    /// Renders the Brendan Gregg collapsed-stack format — one
    /// `stack;path weight` line per node, sorted by stack — consumable
    /// by `flamegraph.pl`, inferno, and speedscope. With
    /// [`ProfileWeight::Count`] or [`ProfileWeight::Bytes`] the output
    /// is deterministic; [`ProfileWeight::SelfNanos`] is for humans.
    pub fn to_collapsed(&self, weight: ProfileWeight) -> String {
        let mut out = String::new();
        for node in &self.nodes {
            let value = match weight {
                ProfileWeight::SelfNanos => node.self_nanos,
                ProfileWeight::Count => node.count,
                ProfileWeight::Bytes => node.bytes,
            };
            let _ = writeln!(out, "{} {}", node.stack, value);
        }
        out
    }

    /// Full JSON export: schema version, truncation flag, per-stage
    /// rollup and per-stack nodes, timings included (so this export is
    /// *not* deterministic — see [`Profile::to_shape_json`]).
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// Shape-only JSON export: identical to [`Profile::to_json`] minus
    /// every timing field. Two runs of the same workload — at any thread
    /// count, with observability live or disabled elsewhere — produce
    /// byte-identical shape exports unless a ring saturated.
    pub fn to_shape_json(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, timings: bool) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {PROFILE_SCHEMA_VERSION},\n  \"spans\": {},\n  \"dropped\": {},\n  \"truncated\": {},\n  \"stages\": [",
            self.spans, self.dropped, self.truncated
        );
        for (i, stage) in self.stages.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"stage\": {}, \"count\": {}, \"bytes\": {}",
                json_string(stage.stage),
                stage.count,
                stage.bytes
            );
            if timings {
                let _ = write!(out, ", \"total_nanos\": {}", stage.total_nanos);
            }
            out.push('}');
        }
        let _ = write!(out, "\n  ],\n  \"stacks\": [");
        for (i, node) in self.nodes.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"stack\": {}, \"count\": {}, \"bytes\": {}",
                json_string(&node.stack),
                node.count,
                node.bytes
            );
            if timings {
                let _ = write!(
                    out,
                    ", \"total_nanos\": {}, \"self_nanos\": {}",
                    node.total_nanos, node.self_nanos
                );
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Stage rollup lookup.
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Node lookup by exact stack path.
    pub fn node(&self, stack: &str) -> Option<&ProfileNode> {
        self.nodes.iter().find(|n| n.stack == stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        let root = tracer.root("serve_batch");
        {
            let prepare = root.child("prepare");
            // Two workers (elided) each building one view and one fit.
            for _ in 0..2 {
                let worker = prepare.child("executor_worker");
                {
                    let mut view = worker.child("view_build");
                    view.add_bytes(64);
                }
                let fit = worker.child("fit");
                fit.child("ml_fit").end();
            }
        }
        root.child("predict").end();
        root.child("predict").end();
        drop(root);
        tracer
    }

    #[test]
    fn elision_reparents_worker_children() {
        let profile = Profile::from_snapshot(&sample_tracer().snapshot());
        assert!(profile
            .node("serve_batch;prepare;executor_worker")
            .is_none());
        let view = profile.node("serve_batch;prepare;view_build").unwrap();
        assert_eq!(view.count, 2);
        assert_eq!(view.bytes, 128);
        let fit = profile.node("serve_batch;prepare;fit").unwrap();
        assert_eq!(fit.count, 2);
        assert_eq!(
            profile
                .node("serve_batch;prepare;fit;ml_fit")
                .unwrap()
                .count,
            2
        );
        assert_eq!(profile.node("serve_batch;predict").unwrap().count, 2);
        // The two elided executor_worker spans are excluded everywhere:
        // 12 recorded spans profile as 10.
        assert_eq!(profile.spans, 10);
        assert!(!profile.truncated);
    }

    #[test]
    fn stage_rollup_covers_the_canonical_stages() {
        let profile = Profile::from_snapshot(&sample_tracer().snapshot());
        assert_eq!(profile.stage("view_build").unwrap().count, 2);
        assert_eq!(profile.stage("view_build").unwrap().bytes, 128);
        assert_eq!(profile.stage("fit").unwrap().count, 2);
        assert_eq!(profile.stage("predict").unwrap().count, 2);
        // serve_batch / prepare / ml_fit land in "other" (the elided
        // executor_worker spans do not); stages with no spans are absent.
        assert_eq!(profile.stage("other").unwrap().count, 4);
        assert!(profile.stage("net").is_none());
        assert!(profile.stage("persist").is_none());
    }

    #[test]
    fn stage_of_maps_span_names() {
        assert_eq!(stage_of("view_build"), Some("view_build"));
        assert_eq!(stage_of("fallback_fit"), Some("fit"));
        assert_eq!(stage_of("store_persist"), Some("persist"));
        assert_eq!(stage_of("log_recover"), Some("persist"));
        assert_eq!(stage_of("ingest_seal"), Some("ingest_seal"));
        assert_eq!(stage_of("net_request"), Some("net"));
        assert_eq!(stage_of("serve_batch"), None);
    }

    #[test]
    fn self_time_excludes_children_and_totals_include_them() {
        let tracer = Tracer::new();
        {
            let outer = tracer.root("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = outer.child("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let profile = Profile::from_snapshot(&tracer.snapshot());
        let outer = profile.node("outer").unwrap();
        let inner = profile.node("outer;inner").unwrap();
        assert!(outer.total_nanos >= inner.total_nanos);
        assert_eq!(
            outer.self_nanos,
            outer.total_nanos - inner.total_nanos,
            "self = total - direct children"
        );
        assert_eq!(inner.self_nanos, inner.total_nanos);
    }

    #[test]
    fn count_and_byte_exports_are_identical_across_runs() {
        let a = Profile::from_snapshot(&sample_tracer().snapshot());
        let b = Profile::from_snapshot(&sample_tracer().snapshot());
        assert_eq!(
            a.to_collapsed(ProfileWeight::Count),
            b.to_collapsed(ProfileWeight::Count)
        );
        assert_eq!(
            a.to_collapsed(ProfileWeight::Bytes),
            b.to_collapsed(ProfileWeight::Bytes)
        );
        assert_eq!(a.to_shape_json(), b.to_shape_json());
        // The collapsed count export looks like flamegraph input.
        let collapsed = a.to_collapsed(ProfileWeight::Count);
        assert!(collapsed.contains("serve_batch;prepare;view_build 2\n"));
    }

    #[test]
    fn json_exports_carry_schema_and_truncation() {
        let tracer = Tracer::with_capacity(2);
        for _ in 0..5 {
            tracer.root("view_build").end();
        }
        let profile = Profile::from_snapshot(&tracer.snapshot());
        assert!(profile.truncated);
        assert_eq!(profile.dropped, 3);
        let json = profile.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"truncated\": true"));
        assert!(json.contains("\"total_nanos\""));
        let shape = profile.to_shape_json();
        assert!(shape.contains("\"truncated\": true"));
        assert!(!shape.contains("nanos"), "shape export is wall-free");
    }

    #[test]
    fn orphaned_spans_root_their_own_stacks() {
        // A span whose parent was dropped (ring full) still profiles,
        // rooted at itself.
        let tracer = Tracer::with_capacity(8);
        let root = tracer.root("serve_batch");
        let ctx = root.ctx();
        std::mem::forget(root); // parent never recorded
        ctx.child("predict").end();
        let profile = Profile::from_snapshot(&tracer.snapshot());
        assert_eq!(profile.node("predict").unwrap().count, 1);
    }

    #[test]
    fn empty_snapshot_profiles_empty() {
        let profile = Profile::from_snapshot(&Tracer::disabled().snapshot());
        assert!(profile.nodes.is_empty());
        assert!(profile.stages.is_empty());
        assert_eq!(profile.spans, 0);
        assert!(!profile.truncated);
        assert_eq!(profile.to_collapsed(ProfileWeight::Count), "");
    }
}
