//! Fleet-level evaluation, parallelized over vehicles.
//!
//! The paper's step (6) averages the per-vehicle prediction errors over
//! all vehicles. Vehicles are independent, so the work is spread over
//! crossbeam scoped threads; results are collected under a
//! `parking_lot::Mutex` and re-ordered deterministically by vehicle id.

use crossbeam::thread;
use parking_lot::Mutex;

use vup_fleetsim::fleet::{Fleet, VehicleId};

use crate::config::PipelineConfig;
use crate::evaluate::{evaluate_vehicle, VehicleEvaluation};
use crate::view::VehicleView;

/// Per-vehicle outcome within a fleet evaluation.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// Vehicle id.
    pub vehicle_id: u32,
    /// The vehicle's evaluation, or the error that prevented it (e.g. a
    /// vehicle with too few working days for one full training window).
    pub outcome: std::result::Result<VehicleEvaluation, vup_ml::MlError>,
}

/// Aggregated fleet evaluation.
#[derive(Debug, Clone)]
pub struct FleetEvaluation {
    /// Every vehicle's outcome, ordered by id.
    pub members: Vec<FleetMember>,
    /// Macro-averaged Percentage Error over evaluable vehicles (paper
    /// step 6).
    pub mean_percentage_error: f64,
    /// Number of vehicles that could be evaluated.
    pub evaluated: usize,
    /// Number of vehicles skipped (series too short for the config).
    pub skipped: usize,
}

impl FleetEvaluation {
    /// Per-vehicle PE values of the evaluable vehicles, ordered by id —
    /// the distribution plotted in the paper's Fig. 5.
    pub fn pe_distribution(&self) -> Vec<f64> {
        self.members
            .iter()
            .filter_map(|m| m.outcome.as_ref().ok().map(|e| e.percentage_error))
            .collect()
    }
}

/// Evaluates a set of vehicles in parallel and macro-averages their PEs.
///
/// `n_threads` caps the worker count (pass `0` for the available
/// parallelism). Results are deterministic: identical inputs produce an
/// identical `FleetEvaluation` regardless of thread scheduling.
pub fn evaluate_fleet(
    fleet: &Fleet,
    ids: &[VehicleId],
    config: &PipelineConfig,
    n_threads: usize,
) -> FleetEvaluation {
    let n_threads = if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        n_threads
    }
    .min(ids.len().max(1));

    let results: Mutex<Vec<FleetMember>> = Mutex::new(Vec::with_capacity(ids.len()));
    let next: Mutex<usize> = Mutex::new(0);

    thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let id = {
                    let mut cursor = next.lock();
                    if *cursor >= ids.len() {
                        break;
                    }
                    let id = ids[*cursor];
                    *cursor += 1;
                    id
                };
                let view = VehicleView::build(fleet, id, config.scenario);
                let outcome = evaluate_vehicle(&view, config);
                results.lock().push(FleetMember {
                    vehicle_id: id.0,
                    outcome,
                });
            });
        }
    })
    .expect("worker threads do not panic");

    let mut members = results.into_inner();
    members.sort_by_key(|m| m.vehicle_id);

    let pes: Vec<f64> = members
        .iter()
        .filter_map(|m| m.outcome.as_ref().ok().map(|e| e.percentage_error))
        .collect();
    let evaluated = pes.len();
    let skipped = members.len() - evaluated;
    let mean_percentage_error = if pes.is_empty() {
        f64::NAN
    } else {
        pes.iter().sum::<f64>() / pes.len() as f64
    };
    FleetEvaluation {
        members,
        mean_percentage_error,
        evaluated,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelSpec;
    use vup_fleetsim::fleet::FleetConfig;
    use vup_ml::RegressorSpec;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            model: ModelSpec::Learned(RegressorSpec::Linear),
            train_window: 120,
            max_lag: 30,
            k: 10,
            retrain_every: 60,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn parallel_evaluation_is_deterministic_and_ordered() {
        let fleet = Fleet::generate(FleetConfig::small(8, 99));
        let ids: Vec<VehicleId> = (0..8).map(VehicleId).collect();
        let cfg = fast_config();
        let a = evaluate_fleet(&fleet, &ids, &cfg, 4);
        let b = evaluate_fleet(&fleet, &ids, &cfg, 2);
        assert_eq!(a.members.len(), 8);
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.vehicle_id, mb.vehicle_id);
            match (&ma.outcome, &mb.outcome) {
                (Ok(ea), Ok(eb)) => {
                    assert_eq!(ea.percentage_error, eb.percentage_error);
                }
                (Err(_), Err(_)) => {}
                _ => panic!("outcome mismatch between thread counts"),
            }
        }
        assert_eq!(a.mean_percentage_error, b.mean_percentage_error);
        // Ordered by id.
        for w in a.members.windows(2) {
            assert!(w[0].vehicle_id < w[1].vehicle_id);
        }
    }

    #[test]
    fn mean_pe_matches_distribution() {
        let fleet = Fleet::generate(FleetConfig::small(5, 7));
        let ids: Vec<VehicleId> = (0..5).map(VehicleId).collect();
        let eval = evaluate_fleet(&fleet, &ids, &fast_config(), 0);
        let dist = eval.pe_distribution();
        assert_eq!(dist.len(), eval.evaluated);
        if !dist.is_empty() {
            let mean = dist.iter().sum::<f64>() / dist.len() as f64;
            assert!((mean - eval.mean_percentage_error).abs() < 1e-12);
        }
        assert_eq!(eval.evaluated + eval.skipped, 5);
    }

    #[test]
    fn unevaluable_vehicles_are_skipped_not_fatal() {
        let fleet = Fleet::generate(FleetConfig::small(3, 55));
        let ids: Vec<VehicleId> = (0..3).map(VehicleId).collect();
        let mut cfg = fast_config();
        // A window so large that no vehicle can be evaluated.
        cfg.train_window = 10_000;
        let eval = evaluate_fleet(&fleet, &ids, &cfg, 2);
        assert_eq!(eval.evaluated, 0);
        assert_eq!(eval.skipped, 3);
        assert!(eval.mean_percentage_error.is_nan());
    }
}
