//! Crash-safe snapshot persistence for the per-vehicle model cache.
//!
//! Each cache entry is one file, written via the classic atomic
//! protocol: serialize into `<name>.tmp`, then rename over the final
//! `v<vehicle>-<fingerprint>.snap` path. A 16-byte header carries a
//! magic, a format version, the payload length and a CRC32 of the
//! payload, so a reader can tell a good snapshot from a torn tail, a
//! flipped bit, or a file from a future format — a kill -9 mid-write
//! never corrupts the cache and never loses more than the in-flight
//! entry.
//!
//! Startup recovery ([`SnapshotStore::recover`], run by
//! [`crate::ModelStore::open`]) classifies every file as loadable,
//! truncated, checksum-mismatch, unknown-version, undecodable or a
//! leftover temp file; bad files are *quarantined* (moved into
//! `quarantine/`, never deleted) so an operator can inspect them, and
//! the rest warm-start the cache. A `MANIFEST.json` records the live
//! generation, bumped on every successful open.
//!
//! All I/O goes through the [`StorageBackend`] trait. [`DiskBackend`]
//! is the real filesystem; [`FaultyBackend`] wraps any backend with the
//! seeded disk faults of [`DiskFaultPlan`] (torn writes, bit flips,
//! transient io errors, a filling disk), keeping chaos runs bit-for-bit
//! reproducible: every fault decision is a pure hash of the seed, the
//! fault kind, the file name and a per-file operation index, and the
//! service performs all store I/O on its coordinating thread in vehicle
//! order regardless of thread count.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use vup_core::{FittedPredictor, SavedPredictor};
use vup_fleetsim::fleet::VehicleId;
use vup_obs::{Counter, Registry, SpanCtx, Tracer};

use crate::faults::DiskFaultPlan;
use crate::frame::{self, retry_io, FrameDefect};
use crate::resilience::splitmix64;
use crate::store::{ModelStore, StoredModel};

// The frame primitives are shared with the telemetry commit log
// (`vup-ingest`); re-export them so existing `persist::crc32` /
// `persist::HEADER_LEN` callers keep compiling.
pub use crate::frame::{crc32, HEADER_LEN};

/// First four bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"VUPM";
/// Snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Extension of committed snapshot files.
pub const SNAPSHOT_EXT: &str = "snap";
/// Suffix of in-flight temp files (atomic-rename protocol).
const TMP_SUFFIX: &str = ".tmp";
/// Name of the generation manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";
/// Subdirectory quarantined files are moved into.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Frames a serialized payload with the versioned, checksummed header
/// (the shared [`crate::frame`] layout under the snapshot magic).
pub fn encode_snapshot(payload: &[u8]) -> Vec<u8> {
    frame::encode_frame(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, payload)
}

/// Why a snapshot file cannot be loaded. Doubles as the quarantine
/// suffix and the `reason` label of `vup_store_quarantined_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotDefect {
    /// Shorter than its header declares (torn write, kill mid-write).
    Truncated,
    /// Payload bytes do not match the header's CRC32 (bit rot).
    Checksum,
    /// Wrong magic or a format version this build does not know.
    Version,
    /// Framing is intact but the payload does not decode to a model
    /// (or contradicts the file's name).
    Decode,
    /// The file could not be read at all, even after retries.
    Io,
    /// A leftover `.tmp` file from an interrupted write.
    Tmp,
}

impl SnapshotDefect {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotDefect::Truncated => "truncated",
            SnapshotDefect::Checksum => "checksum",
            SnapshotDefect::Version => "version",
            SnapshotDefect::Decode => "decode",
            SnapshotDefect::Io => "io",
            SnapshotDefect::Tmp => "tmp",
        }
    }
}

/// Validates a snapshot's framing and returns the payload bytes.
///
/// This is the recovery decision procedure (see DESIGN.md §3d): header
/// too short or payload shorter than declared → [`Truncated`]; bad
/// magic or unknown version → [`Version`]; trailing garbage →
/// [`Decode`]; CRC mismatch → [`Checksum`].
///
/// [`Truncated`]: SnapshotDefect::Truncated
/// [`Version`]: SnapshotDefect::Version
/// [`Decode`]: SnapshotDefect::Decode
/// [`Checksum`]: SnapshotDefect::Checksum
pub fn decode_snapshot(bytes: &[u8]) -> Result<&[u8], SnapshotDefect> {
    frame::decode_frame_exact(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, bytes).map_err(|defect| {
        match defect {
            FrameDefect::Truncated => SnapshotDefect::Truncated,
            // A foreign magic is "a format this build does not know",
            // same as an unknown version.
            FrameDefect::Magic | FrameDefect::Version => SnapshotDefect::Version,
            FrameDefect::Checksum => SnapshotDefect::Checksum,
            FrameDefect::TrailingGarbage => SnapshotDefect::Decode,
        }
    })
}

/// What one snapshot file holds: the key, the freshness position and
/// the serializable predictor.
#[derive(Clone, Serialize, Deserialize)]
struct SnapshotPayload {
    vehicle_id: u32,
    config_fingerprint: u64,
    trained_at: usize,
    predictor: SavedPredictor,
}

/// The storage operations the snapshot store needs — the seam through
/// which disk faults are injected. Implementations must behave like a
/// POSIX filesystem: `rename` within the store directory is atomic.
pub trait StorageBackend: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or replaces a file with exactly `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to the end of `path`, creating it if absent —
    /// the commit-log primitive. The default read-extend-rewrite is
    /// correct but O(file); real backends override with a positional
    /// append.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut existing = match self.read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        existing.extend_from_slice(bytes);
        self.write(path, &existing)
    }
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes a file (missing files are not an error).
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Lists the files directly inside `dir`, sorted by file name.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates `dir` and its parents if absent.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskBackend;

impl StorageBackend for DiskBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

/// Salts keeping the disk-fault hash streams independent (and disjoint
/// from the fit-fault salts in [`crate::faults`]).
const SALT_TORN: u64 = 0x54_4f_52_4e;
const SALT_FLIP: u64 = 0x46_4c_49_50;
const SALT_DISK_IO: u64 = 0x44_49_4f;

/// FNV-1a over a file name — the stable per-file component of every
/// disk-fault decision.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Per-(kind, file) fault-injection state: how many logical operations
/// completed, and how many consecutive transient failures the current
/// operation has already suffered.
#[derive(Default)]
struct FaultFileState {
    logical_ops: u64,
    consecutive_failures: u32,
}

/// A [`StorageBackend`] decorator executing a seeded [`DiskFaultPlan`].
///
/// Determinism contract: a decision depends only on the seed, the fault
/// kind, the file name and the per-file logical-operation index — never
/// on wall clock or scheduling. A transiently failed operation keeps
/// its logical index until it succeeds, so a retry loop deterministically
/// clears after [`DiskFaultPlan::effective_io_attempts`] failures.
pub struct FaultyBackend {
    inner: Box<dyn StorageBackend>,
    seed: u64,
    plan: DiskFaultPlan,
    state: Mutex<HashMap<(u8, String), FaultFileState>>,
    bytes_written: AtomicU64,
}

/// Operation-kind discriminants for the per-file decision streams.
const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_RENAME: u8 = 2;
const OP_APPEND: u8 = 3;

impl FaultyBackend {
    /// Wraps `inner` with the faults of `plan`, seeded by `seed`.
    pub fn new(inner: Box<dyn StorageBackend>, seed: u64, plan: DiskFaultPlan) -> FaultyBackend {
        FaultyBackend {
            inner,
            seed,
            plan,
            state: Mutex::new(HashMap::new()),
            bytes_written: AtomicU64::new(0),
        }
    }

    fn name_of(path: &Path) -> String {
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Uniform value in `[0, 1)` for one decision coordinate.
    fn unit(&self, salt: u64, name: &str, op: u64) -> f64 {
        let mut h = splitmix64(self.seed ^ salt);
        h = splitmix64(h ^ fnv1a(name));
        h = splitmix64(h ^ op);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Runs the transient-io-error decision for one `(kind, name)`
    /// operation; returns the logical op index to use for further
    /// decisions, or an injected error.
    fn admit(&self, kind: u8, name: &str) -> io::Result<u64> {
        let mut state = self.state.lock().expect("fault state lock");
        let st = state.entry((kind, name.to_string())).or_default();
        if self.plan.io_error_rate > 0.0
            && st.consecutive_failures < self.plan.effective_io_attempts()
            && self.unit(SALT_DISK_IO ^ u64::from(kind), name, st.logical_ops)
                < self.plan.io_error_rate
        {
            st.consecutive_failures += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient io error on {name}"),
            ));
        }
        st.consecutive_failures = 0;
        let op = st.logical_ops;
        st.logical_ops += 1;
        Ok(op)
    }

    /// Whether this file's reads come back bit-flipped (a pure function
    /// of the file name, so every read sees the same damage).
    fn flips(&self, name: &str) -> bool {
        self.plan.bit_flip_rate > 0.0 && self.unit(SALT_FLIP, name, 0) < self.plan.bit_flip_rate
    }
}

impl StorageBackend for FaultyBackend {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let name = Self::name_of(path);
        self.admit(OP_READ, &name)?;
        let mut bytes = self.inner.read(path)?;
        if !bytes.is_empty() && self.flips(&name) {
            let h = splitmix64(self.seed ^ SALT_FLIP ^ fnv1a(&name));
            let pos = (h as usize) % bytes.len();
            bytes[pos] ^= 1 << ((h >> 32) % 8);
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = Self::name_of(path);
        let op = self.admit(OP_WRITE, &name)?;
        if let Some(budget) = self.plan.full_disk_after_bytes {
            let before = self
                .bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            if before + bytes.len() as u64 > budget {
                return Err(io::Error::other(format!(
                    "injected full disk writing {name}"
                )));
            }
        }
        if self.plan.torn_write_rate > 0.0
            && self.unit(SALT_TORN, &name, op) < self.plan.torn_write_rate
        {
            // A torn write *silently succeeds* with only a prefix on
            // disk — exactly what an un-fsynced crash leaves behind.
            let k = (self.plan.torn_write_byte as usize).min(bytes.len());
            return self.inner.write(path, &bytes[..k]);
        }
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let name = Self::name_of(path);
        let op = self.admit(OP_APPEND, &name)?;
        if let Some(budget) = self.plan.full_disk_after_bytes {
            let before = self
                .bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            if before + bytes.len() as u64 > budget {
                return Err(io::Error::other(format!(
                    "injected full disk appending to {name}"
                )));
            }
        }
        if self.plan.torn_write_rate > 0.0
            && self.unit(SALT_TORN ^ u64::from(OP_APPEND), &name, op) < self.plan.torn_write_rate
        {
            // A torn append *silently succeeds* with only a prefix of
            // this chunk on disk — what a kill -9 mid-append leaves.
            let k = (self.plan.torn_write_byte as usize).min(bytes.len());
            return self.inner.append(path, &bytes[..k]);
        }
        self.inner.append(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.admit(OP_RENAME, &Self::name_of(from))?;
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
}

/// One quarantined file in a [`RecoveryStats`] report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedFile {
    /// Original file name inside the store directory.
    pub file: String,
    /// The [`SnapshotDefect`] label it was quarantined under.
    pub reason: String,
}

/// One loadable snapshot as recovery hands it to the cache:
/// `(vehicle, config fingerprint, model)`.
pub(crate) type RecoveredEntry = (VehicleId, u64, StoredModel);

/// What one startup recovery pass found — exposed by
/// [`crate::ModelStore::recovery`] and embeddable in a
/// [`crate::ServeJournal`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Snapshot and temp files considered (the manifest and foreign
    /// files are not counted).
    pub files_seen: usize,
    /// Snapshots that loaded cleanly and warm-started the cache.
    pub recovered: usize,
    /// Files moved into `quarantine/`, with their defect.
    pub quarantined: Vec<QuarantinedFile>,
    /// Transient-io retries spent during recovery.
    pub io_retries: u64,
    /// The store generation after this open (manifest counter).
    pub generation: u64,
    /// Whether the manifest was missing or unreadable and had to be
    /// rebuilt from scratch.
    pub manifest_rebuilt: bool,
}

impl RecoveryStats {
    /// Convenience: how many files were quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Folds another store's recovery into this one — the fleet-wide
    /// merge the shard coordinator surfaces in its merged journal.
    /// Counters add, quarantine lists concatenate, the generation keeps
    /// the maximum, and `manifest_rebuilt` ORs; the balance invariant
    /// `recovered + quarantined_count == files_seen` holds per store and
    /// therefore survives any sequence of absorbs.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.files_seen += other.files_seen;
        self.recovered += other.recovered;
        self.quarantined.extend(other.quarantined.iter().cloned());
        self.io_retries += other.io_retries;
        self.generation = self.generation.max(other.generation);
        self.manifest_rebuilt |= other.manifest_rebuilt;
    }
}

/// The generation manifest serialized as `MANIFEST.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    format_version: u16,
    generation: u64,
}

/// Registry handles for the persistence metrics. No-ops by default.
struct PersistMetrics {
    /// `vup_store_persisted_total` — snapshots durably written.
    persisted: Counter,
    /// `vup_store_persist_failed_total` — snapshot writes abandoned
    /// after retries (serving continues from memory).
    persist_failed: Counter,
    /// `vup_store_recovered_total` — snapshots warm-started at open.
    recovered: Counter,
    /// `vup_store_io_retries_total` — transient-io retries spent.
    io_retries: Counter,
    /// `vup_store_quarantined_total{reason}` — files quarantined.
    quarantined: [(SnapshotDefect, Counter); 6],
}

impl Default for PersistMetrics {
    fn default() -> Self {
        PersistMetrics::register(&Registry::disabled())
    }
}

impl PersistMetrics {
    fn register(registry: &Registry) -> PersistMetrics {
        registry.describe(
            "vup_store_persisted_total",
            "Model snapshots durably written.",
        );
        registry.describe(
            "vup_store_persist_failed_total",
            "Model snapshot writes abandoned after retries.",
        );
        registry.describe(
            "vup_store_recovered_total",
            "Model snapshots warm-started at open.",
        );
        registry.describe(
            "vup_store_io_retries_total",
            "Transient storage-io retries spent by the snapshot store.",
        );
        registry.describe(
            "vup_store_quarantined_total",
            "Snapshot files quarantined at open, by defect.",
        );
        let quarantine = |defect: SnapshotDefect| {
            (
                defect,
                registry.counter_with(
                    "vup_store_quarantined_total",
                    &[("reason", defect.as_str())],
                ),
            )
        };
        PersistMetrics {
            persisted: registry.counter("vup_store_persisted_total"),
            persist_failed: registry.counter("vup_store_persist_failed_total"),
            recovered: registry.counter("vup_store_recovered_total"),
            io_retries: registry.counter("vup_store_io_retries_total"),
            quarantined: [
                quarantine(SnapshotDefect::Truncated),
                quarantine(SnapshotDefect::Checksum),
                quarantine(SnapshotDefect::Version),
                quarantine(SnapshotDefect::Decode),
                quarantine(SnapshotDefect::Io),
                quarantine(SnapshotDefect::Tmp),
            ],
        }
    }

    fn quarantined(&self, defect: SnapshotDefect) -> &Counter {
        &self
            .quarantined
            .iter()
            .find(|(d, _)| *d == defect)
            .expect("all defects registered")
            .1
    }
}

/// The durable side of a [`crate::ModelStore`]: one snapshot file per
/// cache entry in a single directory, plus the quarantine subdirectory
/// and the generation manifest.
pub struct SnapshotStore {
    backend: Box<dyn StorageBackend>,
    dir: PathBuf,
    metrics: PersistMetrics,
}

impl SnapshotStore {
    /// Creates the store handle (no I/O yet; see
    /// [`SnapshotStore::recover`]).
    pub fn new(backend: Box<dyn StorageBackend>, dir: &Path, registry: &Registry) -> SnapshotStore {
        SnapshotStore {
            backend,
            dir: dir.to_path_buf(),
            metrics: PersistMetrics::register(registry),
        }
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical snapshot file name for a cache key.
    pub fn file_name(vehicle: VehicleId, fingerprint: u64) -> String {
        format!("v{:08}-{:016x}.{}", vehicle.0, fingerprint, SNAPSHOT_EXT)
    }

    /// Durably writes one cache entry via the atomic temp-file + rename
    /// protocol. Returns whether the snapshot reached disk; a failure
    /// never propagates to the caller (serving continues from memory)
    /// but counts into `vup_store_persist_failed_total`.
    pub(crate) fn persist(
        &self,
        vehicle: VehicleId,
        fingerprint: u64,
        trained_at: usize,
        predictor: &FittedPredictor,
        ctx: &SpanCtx,
    ) -> bool {
        let mut span = ctx.child("store_persist");
        span.arg("vehicle", vehicle.0);
        let payload = serde_json::to_string(&SnapshotPayload {
            vehicle_id: vehicle.0,
            config_fingerprint: fingerprint,
            trained_at,
            predictor: predictor.save(),
        })
        .expect("snapshot payload serializes");
        let bytes = encode_snapshot(payload.as_bytes());
        span.arg("bytes", bytes.len());
        span.add_bytes(bytes.len() as u64);
        let name = Self::file_name(vehicle, fingerprint);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!("{name}{TMP_SUFFIX}"));
        let mut retries = 0;
        let result = (|| {
            let (res, r) = retry_io(|| self.backend.write(&tmp_path, &bytes));
            retries += r;
            res?;
            let (res, r) = retry_io(|| self.backend.rename(&tmp_path, &final_path));
            retries += r;
            res
        })();
        self.metrics.io_retries.add(retries);
        match result {
            Ok(()) => {
                self.metrics.persisted.inc();
                true
            }
            Err(e) => {
                span.arg("error", e);
                self.metrics.persist_failed.inc();
                // Best effort: do not leave a half-written temp file.
                let _ = self.backend.remove(&tmp_path);
                false
            }
        }
    }

    /// Deletes the snapshot of one cache entry (cache invalidation —
    /// the only path that removes rather than quarantines). Best
    /// effort: an unreachable disk must not fail invalidation.
    pub(crate) fn remove_entry(&self, vehicle: VehicleId, fingerprint: u64) {
        let path = self.dir.join(Self::file_name(vehicle, fingerprint));
        let (res, r) = retry_io(|| self.backend.remove(&path));
        self.metrics.io_retries.add(r);
        let _ = res;
    }

    /// Startup recovery: classifies every file in the store directory,
    /// quarantines the bad ones, returns the loadable entries and the
    /// stats, and bumps the manifest generation.
    ///
    /// Only a failure to *list* the directory is fatal — with no
    /// listing there is nothing safe to recover. Per-file read errors
    /// quarantine that file; manifest trouble rebuilds the manifest.
    pub(crate) fn recover(
        &self,
        tracer: &Tracer,
    ) -> io::Result<(Vec<RecoveredEntry>, RecoveryStats)> {
        let mut span = tracer.root("store_recover");
        self.backend.create_dir_all(&self.dir)?;
        self.backend
            .create_dir_all(&self.dir.join(QUARANTINE_DIR))?;
        let mut stats = RecoveryStats::default();
        let mut entries = Vec::new();

        let (listed, r) = retry_io(|| self.backend.list(&self.dir));
        stats.io_retries += r;
        for path in listed? {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name == MANIFEST_NAME {
                continue;
            }
            if name.ends_with(TMP_SUFFIX) {
                stats.files_seen += 1;
                self.quarantine(&path, &name, SnapshotDefect::Tmp, &mut stats);
                continue;
            }
            if !name.ends_with(&format!(".{SNAPSHOT_EXT}")) {
                continue; // foreign files are left alone
            }
            stats.files_seen += 1;
            let (read, r) = retry_io(|| self.backend.read(&path));
            stats.io_retries += r;
            let bytes = match read {
                Ok(bytes) => bytes,
                Err(_) => {
                    self.quarantine(&path, &name, SnapshotDefect::Io, &mut stats);
                    continue;
                }
            };
            span.add_bytes(bytes.len() as u64);
            match Self::load_entry(&name, &bytes) {
                Ok(entry) => {
                    self.metrics.recovered.inc();
                    stats.recovered += 1;
                    entries.push(entry);
                }
                Err(defect) => self.quarantine(&path, &name, defect, &mut stats),
            }
        }

        self.bump_manifest(&mut stats);
        self.metrics.io_retries.add(stats.io_retries);
        span.arg("files_seen", stats.files_seen);
        span.arg("recovered", stats.recovered);
        span.arg("quarantined", stats.quarantined.len());
        span.arg("generation", stats.generation);
        Ok((entries, stats))
    }

    /// Decodes one snapshot file into a cache entry, running the full
    /// defect classification.
    fn load_entry(
        name: &str,
        bytes: &[u8],
    ) -> Result<(VehicleId, u64, StoredModel), SnapshotDefect> {
        let payload = decode_snapshot(bytes)?;
        let text = std::str::from_utf8(payload).map_err(|_| SnapshotDefect::Decode)?;
        let snapshot: SnapshotPayload =
            serde_json::from_str(text).map_err(|_| SnapshotDefect::Decode)?;
        let vehicle = VehicleId(snapshot.vehicle_id);
        // The name must agree with the content (a copied or renamed
        // file would otherwise warm-start under the wrong key) …
        if Self::file_name(vehicle, snapshot.config_fingerprint) != name {
            return Err(SnapshotDefect::Decode);
        }
        let predictor = snapshot.predictor.restore();
        // … and the fingerprint must still be what this build computes
        // for the embedded config: a mismatch means the snapshot comes
        // from an incompatible build, i.e. an unknown logical version.
        if ModelStore::fingerprint(predictor.config()) != snapshot.config_fingerprint {
            return Err(SnapshotDefect::Version);
        }
        Ok((
            vehicle,
            snapshot.config_fingerprint,
            StoredModel {
                predictor,
                trained_at: snapshot.trained_at,
            },
        ))
    }

    /// Moves a bad file into `quarantine/<name>.<defect>` — never
    /// deletes it — and records the defect.
    fn quarantine(
        &self,
        path: &Path,
        name: &str,
        defect: SnapshotDefect,
        stats: &mut RecoveryStats,
    ) {
        let dest = self
            .dir
            .join(QUARANTINE_DIR)
            .join(format!("{name}.{}", defect.as_str()));
        let (res, r) = retry_io(|| self.backend.rename(path, &dest));
        stats.io_retries += r;
        let _ = res; // an unmovable file stays put; next open retries
        self.metrics.quarantined(defect).inc();
        stats.quarantined.push(QuarantinedFile {
            file: name.to_string(),
            reason: defect.as_str().to_string(),
        });
    }

    /// Reads, bumps and atomically rewrites the generation manifest.
    /// Best effort: manifest trouble must not fail an open.
    fn bump_manifest(&self, stats: &mut RecoveryStats) {
        let path = self.dir.join(MANIFEST_NAME);
        let previous = {
            let (read, r) = retry_io(|| self.backend.read(&path));
            stats.io_retries += r;
            read.ok()
                .and_then(|bytes| String::from_utf8(bytes).ok())
                .and_then(|text| serde_json::from_str::<Manifest>(&text).ok())
        };
        stats.manifest_rebuilt = previous.is_none();
        stats.generation = previous.map_or(1, |m| m.generation + 1);
        let manifest = Manifest {
            format_version: SNAPSHOT_VERSION,
            generation: stats.generation,
        };
        let text = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
        let tmp = self.dir.join(format!("{MANIFEST_NAME}{TMP_SUFFIX}"));
        let mut retries = 0;
        let result = (|| {
            let (res, r) = retry_io(|| self.backend.write(&tmp, text.as_bytes()));
            retries += r;
            res?;
            let (res, r) = retry_io(|| self.backend.rename(&tmp, &path));
            retries += r;
            res
        })();
        stats.io_retries += retries;
        if result.is_err() {
            let _ = self.backend.remove(&tmp);
        }
    }
}

/// Parses a canonical snapshot file name ([`SnapshotStore::file_name`])
/// back into its cache key, or `None` for anything else — the way the
/// shard rebalancer discovers which vehicle owns a file without reading
/// it.
pub fn parse_snapshot_name(name: &str) -> Option<(VehicleId, u64)> {
    let rest = name.strip_prefix('v')?;
    let rest = rest.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    let (vehicle, fingerprint) = rest.split_once('-')?;
    if vehicle.len() != 8 || fingerprint.len() != 16 {
        return None;
    }
    let vehicle: u32 = vehicle.parse().ok()?;
    let fingerprint = u64::from_str_radix(fingerprint, 16).ok()?;
    // Round-trip guard: zero-padding must match the canonical form.
    let id = VehicleId(vehicle);
    (SnapshotStore::file_name(id, fingerprint) == name).then_some((id, fingerprint))
}

/// Verifies snapshot bytes against their file name through the same
/// classification [`audit`] and startup recovery run (header, CRC,
/// name/content agreement, fingerprint compatibility), returning the
/// owning vehicle and its training position. This is the per-file check
/// the shard rebalancer runs before and after every copy.
pub fn verify_snapshot(name: &str, bytes: &[u8]) -> Result<(VehicleId, usize), SnapshotDefect> {
    let (vehicle, _, model) = SnapshotStore::load_entry(name, bytes)?;
    Ok((vehicle, model.trained_at))
}

/// Reads, bumps, and atomically rewrites a store directory's generation
/// manifest *without* opening the store — how out-of-band mutations
/// (shard rebalance moves) record that the directory changed hands.
/// Returns the new generation. A missing or unreadable manifest rebuilds
/// at generation 1, exactly like an open.
pub fn bump_generation(backend: &dyn StorageBackend, dir: &Path) -> io::Result<u64> {
    backend.create_dir_all(dir)?;
    let path = dir.join(MANIFEST_NAME);
    let previous = {
        let (read, _) = retry_io(|| backend.read(&path));
        read.ok()
            .and_then(|bytes| String::from_utf8(bytes).ok())
            .and_then(|text| serde_json::from_str::<Manifest>(&text).ok())
    };
    let generation = previous.map_or(1, |m| m.generation + 1);
    let manifest = Manifest {
        format_version: SNAPSHOT_VERSION,
        generation,
    };
    let text = serde_json::to_string_pretty(&manifest).expect("manifest serializes");
    let tmp = dir.join(format!("{MANIFEST_NAME}{TMP_SUFFIX}"));
    let result = (|| {
        let (res, _) = retry_io(|| backend.write(&tmp, text.as_bytes()));
        res?;
        let (res, _) = retry_io(|| backend.rename(&tmp, &path));
        res
    })();
    if result.is_err() {
        let _ = backend.remove(&tmp);
    }
    result.map(|()| generation)
}

/// One file's verdict in an offline [`audit`] of a store directory.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    /// File name inside the directory.
    pub file: String,
    /// `Ok(())` if loadable, otherwise the defect.
    pub verdict: Result<(), SnapshotDefect>,
    /// Vehicle the snapshot belongs to (loadable files only).
    pub vehicle_id: Option<u32>,
    /// Training position of the snapshot (loadable files only).
    pub trained_at: Option<usize>,
    /// File size in bytes (0 if unreadable).
    pub bytes: u64,
}

/// Read-only audit of a snapshot directory: classifies every snapshot
/// and temp file without moving, repairing or loading anything into a
/// cache. Backs `vup store verify <dir>`.
pub fn audit(backend: &dyn StorageBackend, dir: &Path) -> io::Result<Vec<AuditEntry>> {
    let mut report = Vec::new();
    for path in backend.list(dir)? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if name == MANIFEST_NAME {
            continue;
        }
        let is_tmp = name.ends_with(TMP_SUFFIX);
        if !is_tmp && !name.ends_with(&format!(".{SNAPSHOT_EXT}")) {
            continue;
        }
        let (read, _) = retry_io(|| backend.read(&path));
        let entry = match (is_tmp, read) {
            (true, read) => AuditEntry {
                file: name,
                verdict: Err(SnapshotDefect::Tmp),
                vehicle_id: None,
                trained_at: None,
                bytes: read.map_or(0, |b| b.len() as u64),
            },
            (false, Err(_)) => AuditEntry {
                file: name,
                verdict: Err(SnapshotDefect::Io),
                vehicle_id: None,
                trained_at: None,
                bytes: 0,
            },
            (false, Ok(bytes)) => match SnapshotStore::load_entry(&name, &bytes) {
                Ok((vehicle, _, model)) => AuditEntry {
                    file: name,
                    verdict: Ok(()),
                    vehicle_id: Some(vehicle.0),
                    trained_at: Some(model.trained_at),
                    bytes: bytes.len() as u64,
                },
                Err(defect) => AuditEntry {
                    file: name,
                    verdict: Err(defect),
                    vehicle_id: None,
                    trained_at: None,
                    bytes: bytes.len() as u64,
                },
            },
        };
        report.push(entry);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_core::{ModelSpec, PipelineConfig, VehicleView};
    use vup_fleetsim::fleet::{Fleet, FleetConfig};
    use vup_ml::baseline::BaselineSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vup-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            model: ModelSpec::Baseline(BaselineSpec::LastValue),
            train_window: 60,
            max_lag: 10,
            k: 5,
            retrain_every: 7,
            ..PipelineConfig::default()
        }
    }

    fn predictor(cfg: &PipelineConfig) -> FittedPredictor {
        let fleet = Fleet::generate(FleetConfig::small(1, 7));
        let view = VehicleView::build(&fleet, VehicleId(0), cfg.scenario);
        FittedPredictor::fit(&view, cfg, 0, 60).unwrap()
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn snapshot_framing_round_trips_and_classifies_defects() {
        let payload = b"{\"hello\":1}";
        let bytes = encode_snapshot(payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        assert_eq!(decode_snapshot(&bytes).unwrap(), payload);

        // Truncations: inside the header and inside the payload.
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 2, bytes.len() - 1] {
            assert_eq!(
                decode_snapshot(&bytes[..cut]),
                Err(SnapshotDefect::Truncated),
                "cut at {cut}"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode_snapshot(&long), Err(SnapshotDefect::Decode));
        // Any single payload bit flip is caught by the CRC.
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[HEADER_LEN + 4] ^= 1 << bit;
            assert_eq!(decode_snapshot(&flipped), Err(SnapshotDefect::Checksum));
        }
        // Wrong magic and unknown version.
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert_eq!(decode_snapshot(&magic), Err(SnapshotDefect::Version));
        let mut version = bytes.clone();
        version[4] = 0xFF;
        assert_eq!(decode_snapshot(&version), Err(SnapshotDefect::Version));
    }

    #[test]
    fn faulty_backend_decisions_are_deterministic() {
        let plan = DiskFaultPlan {
            torn_write_rate: 0.5,
            torn_write_byte: 4,
            bit_flip_rate: 0.5,
            io_error_rate: 0.5,
            io_error_attempts: 1,
            full_disk_after_bytes: None,
        };
        let dir = temp_dir("faulty-det");
        let run = |tag: &str| {
            let sub = dir.join(tag);
            std::fs::create_dir_all(&sub).unwrap();
            let backend = FaultyBackend::new(Box::new(DiskBackend), 42, plan.clone());
            let mut log = Vec::new();
            for i in 0..20 {
                let path = sub.join(format!("f{i}.snap"));
                let (res, retries) = retry_io(|| backend.write(&path, b"0123456789"));
                res.unwrap();
                let (read, _) = retry_io(|| backend.read(&path));
                log.push((retries, read.unwrap()));
            }
            log
        };
        assert_eq!(run("a"), run("b"));
        // At 50% rates something was torn and something was flipped.
        let log = run("c");
        assert!(log.iter().any(|(_, bytes)| bytes.len() == 4), "torn");
        assert!(log.iter().any(|(r, _)| *r > 0), "io retries");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_disk_fails_writes_after_the_budget() {
        let dir = temp_dir("full-disk");
        let backend = FaultyBackend::new(
            Box::new(DiskBackend),
            1,
            DiskFaultPlan {
                full_disk_after_bytes: Some(25),
                ..DiskFaultPlan::default()
            },
        );
        assert!(backend.write(&dir.join("a.snap"), &[0; 10]).is_ok());
        assert!(backend.write(&dir.join("b.snap"), &[0; 10]).is_ok());
        let err = backend.write(&dir.join("c.snap"), &[0; 10]).unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::Interrupted, "not retryable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_then_recover_round_trips_one_entry() {
        let dir = temp_dir("round-trip");
        let cfg = config();
        let fitted = predictor(&cfg);
        let fp = ModelStore::fingerprint(&cfg);
        let registry = Registry::new();
        let store = SnapshotStore::new(Box::new(DiskBackend), &dir, &registry);
        assert!(store.persist(VehicleId(0), fp, 60, &fitted, &SpanCtx::disabled()));
        assert_eq!(registry.counter("vup_store_persisted_total").get(), 1);

        let (entries, stats) = store.recover(&Tracer::disabled()).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.files_seen, 1);
        assert!(stats.quarantined.is_empty());
        assert_eq!(stats.generation, 1);
        assert!(stats.manifest_rebuilt);
        let (vehicle, fingerprint, model) = &entries[0];
        assert_eq!(*vehicle, VehicleId(0));
        assert_eq!(*fingerprint, fp);
        assert_eq!(model.trained_at, 60);

        // A second recovery bumps the generation and rebuilds nothing.
        let (_, stats) = store.recover(&Tracer::disabled()).unwrap();
        assert_eq!(stats.generation, 2);
        assert!(!stats.manifest_rebuilt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_quarantines_each_defect_under_its_reason() {
        let dir = temp_dir("quarantine");
        let cfg = config();
        let fp = ModelStore::fingerprint(&cfg);
        let registry = Registry::new();
        let store = SnapshotStore::new(Box::new(DiskBackend), &dir, &registry);
        store.persist(VehicleId(0), fp, 60, &predictor(&cfg), &SpanCtx::disabled());

        // Hand-craft one file per defect class.
        let good = std::fs::read(dir.join(SnapshotStore::file_name(VehicleId(0), fp))).unwrap();
        std::fs::write(dir.join("v00000001-0000000000000001.snap"), &good[..20]).unwrap();
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        std::fs::write(dir.join("v00000002-0000000000000002.snap"), &flipped).unwrap();
        let mut future = good.clone();
        future[4] = 0x7F;
        std::fs::write(dir.join("v00000003-0000000000000003.snap"), &future).unwrap();
        std::fs::write(
            dir.join("v00000004-0000000000000004.snap"),
            encode_snapshot(b"not a model"),
        )
        .unwrap();
        std::fs::write(dir.join("v00000005-0000000000000005.snap.tmp"), b"partial").unwrap();
        // A foreign file must be ignored entirely.
        std::fs::write(dir.join("README.txt"), b"hello").unwrap();

        let (entries, stats) = store.recover(&Tracer::disabled()).unwrap();
        assert_eq!(entries.len(), 1, "only the intact snapshot loads");
        assert_eq!(stats.files_seen, 6);
        assert_eq!(stats.recovered + stats.quarantined.len(), stats.files_seen);
        let mut reasons: Vec<&str> = stats
            .quarantined
            .iter()
            .map(|q| q.reason.as_str())
            .collect();
        reasons.sort_unstable();
        assert_eq!(
            reasons,
            vec!["checksum", "decode", "tmp", "truncated", "version"]
        );
        // Quarantined, not deleted: every bad file is in quarantine/.
        for q in &stats.quarantined {
            let dest = dir
                .join(QUARANTINE_DIR)
                .join(format!("{}.{}", q.file, q.reason));
            assert!(dest.exists(), "{dest:?} missing");
            assert!(!dir.join(&q.file).exists(), "{} not moved", q.file);
        }
        assert!(dir.join("README.txt").exists());
        for (defect, expected) in [
            (SnapshotDefect::Truncated, 1),
            (SnapshotDefect::Checksum, 1),
            (SnapshotDefect::Version, 1),
            (SnapshotDefect::Decode, 1),
            (SnapshotDefect::Tmp, 1),
            (SnapshotDefect::Io, 0),
        ] {
            assert_eq!(
                registry
                    .counter_with(
                        "vup_store_quarantined_total",
                        &[("reason", defect.as_str())]
                    )
                    .get(),
                expected,
                "{}",
                defect.as_str()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_renamed_snapshot_is_rejected_as_decode() {
        let dir = temp_dir("renamed");
        let cfg = config();
        let fp = ModelStore::fingerprint(&cfg);
        let store = SnapshotStore::new(Box::new(DiskBackend), &dir, &Registry::disabled());
        store.persist(VehicleId(0), fp, 60, &predictor(&cfg), &SpanCtx::disabled());
        let original = dir.join(SnapshotStore::file_name(VehicleId(0), fp));
        let forged = dir.join(SnapshotStore::file_name(VehicleId(9), fp));
        std::fs::rename(&original, &forged).unwrap();

        let (entries, stats) = store.recover(&Tracer::disabled()).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats.quarantined.len(), 1);
        assert_eq!(stats.quarantined[0].reason, "decode");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_reports_without_touching_files() {
        let dir = temp_dir("audit");
        let cfg = config();
        let fp = ModelStore::fingerprint(&cfg);
        let store = SnapshotStore::new(Box::new(DiskBackend), &dir, &Registry::disabled());
        store.persist(VehicleId(3), fp, 60, &predictor(&cfg), &SpanCtx::disabled());
        std::fs::write(dir.join("v00000001-0000000000000001.snap"), b"short").unwrap();

        let report = audit(&DiskBackend, &dir).unwrap();
        assert_eq!(report.len(), 2);
        let bad = &report[0];
        assert_eq!(bad.verdict, Err(SnapshotDefect::Truncated));
        let good = &report[1];
        assert_eq!(good.verdict, Ok(()));
        assert_eq!(good.vehicle_id, Some(3));
        assert_eq!(good.trained_at, Some(60));
        // Nothing moved: both files are still in place.
        assert!(dir.join("v00000001-0000000000000001.snap").exists());
        assert!(dir
            .join(SnapshotStore::file_name(VehicleId(3), fp))
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_survives_transient_io_errors_and_reports_permanent_ones() {
        let dir = temp_dir("retries");
        let cfg = config();
        let fp = ModelStore::fingerprint(&cfg);
        let registry = Registry::new();
        let transient = FaultyBackend::new(
            Box::new(DiskBackend),
            3,
            DiskFaultPlan {
                io_error_rate: 1.0,
                io_error_attempts: 2,
                ..DiskFaultPlan::default()
            },
        );
        let store = SnapshotStore::new(Box::new(transient), &dir, &registry);
        assert!(
            store.persist(VehicleId(0), fp, 60, &predictor(&cfg), &SpanCtx::disabled()),
            "two transient failures per op are retried away"
        );
        assert!(registry.counter("vup_store_io_retries_total").get() >= 2);
        assert_eq!(registry.counter("vup_store_persist_failed_total").get(), 0);

        // Full disk is permanent: persist reports failure, no tmp left.
        let full = FaultyBackend::new(
            Box::new(DiskBackend),
            3,
            DiskFaultPlan {
                full_disk_after_bytes: Some(0),
                ..DiskFaultPlan::default()
            },
        );
        let store = SnapshotStore::new(Box::new(full), &dir, &registry);
        assert!(!store.persist(VehicleId(1), fp, 60, &predictor(&cfg), &SpanCtx::disabled()));
        assert_eq!(registry.counter("vup_store_persist_failed_total").get(), 1);
        assert!(!dir
            .join(format!(
                "{}.tmp",
                SnapshotStore::file_name(VehicleId(1), fp)
            ))
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_stats_absorb_preserves_the_balance_invariant() {
        let quarantined = |n: usize| {
            (0..n)
                .map(|i| QuarantinedFile {
                    file: format!("v{i:08}-0000000000000001.snap"),
                    reason: "checksum".to_string(),
                })
                .collect::<Vec<_>>()
        };
        let shards = [
            RecoveryStats {
                files_seen: 5,
                recovered: 4,
                quarantined: quarantined(1),
                io_retries: 2,
                generation: 3,
                manifest_rebuilt: false,
            },
            RecoveryStats {
                files_seen: 7,
                recovered: 7,
                quarantined: Vec::new(),
                io_retries: 0,
                generation: 9,
                manifest_rebuilt: true,
            },
            RecoveryStats {
                files_seen: 2,
                recovered: 0,
                quarantined: quarantined(2),
                io_retries: 1,
                generation: 1,
                manifest_rebuilt: false,
            },
        ];
        let mut merged = RecoveryStats::default();
        for shard in &shards {
            // Per-store the invariant holds …
            assert_eq!(
                shard.recovered + shard.quarantined_count(),
                shard.files_seen
            );
            merged.absorb(shard);
        }
        // … and fleet-wide it still balances after the merge.
        assert_eq!(merged.files_seen, 14);
        assert_eq!(merged.recovered, 11);
        assert_eq!(merged.quarantined_count(), 3);
        assert_eq!(
            merged.recovered + merged.quarantined_count(),
            merged.files_seen
        );
        assert_eq!(merged.io_retries, 3);
        assert_eq!(merged.generation, 9, "merged generation is the maximum");
        assert!(merged.manifest_rebuilt, "any rebuild marks the merge");
    }

    #[test]
    fn snapshot_names_parse_and_round_trip() {
        let name = SnapshotStore::file_name(VehicleId(42), 0xdead_beef_0123_4567);
        assert_eq!(
            parse_snapshot_name(&name),
            Some((VehicleId(42), 0xdead_beef_0123_4567))
        );
        for bad in [
            "MANIFEST.json",
            "v0000002a-deadbeef01234567.snap.tmp",
            "x0000002a-deadbeef01234567.snap",
            "v2a-deadbeef01234567.snap",
            "v0000002a-deadbeef.snap",
            "notes.txt",
        ] {
            assert_eq!(parse_snapshot_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn verify_snapshot_runs_the_audit_classification() {
        let cfg = config();
        let fp = ModelStore::fingerprint(&cfg);
        let dir = temp_dir("verify-snap");
        let registry = Registry::disabled();
        let store = SnapshotStore::new(Box::new(DiskBackend), &dir, &registry);
        assert!(store.persist(VehicleId(9), fp, 60, &predictor(&cfg), &SpanCtx::disabled()));
        let name = SnapshotStore::file_name(VehicleId(9), fp);
        let bytes = std::fs::read(dir.join(&name)).unwrap();
        assert_eq!(verify_snapshot(&name, &bytes), Ok((VehicleId(9), 60)));
        // A renamed file fails name/content agreement.
        let other = SnapshotStore::file_name(VehicleId(8), fp);
        assert_eq!(verify_snapshot(&other, &bytes), Err(SnapshotDefect::Decode));
        // A flipped bit fails the CRC.
        let mut torn = bytes.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        assert_eq!(verify_snapshot(&name, &torn), Err(SnapshotDefect::Checksum));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bump_generation_counts_out_of_band_mutations() {
        let dir = temp_dir("bump-gen");
        assert_eq!(bump_generation(&DiskBackend, &dir).unwrap(), 1);
        assert_eq!(bump_generation(&DiskBackend, &dir).unwrap(), 2);
        // An open after the bumps continues the same counter.
        let registry = Registry::disabled();
        let store = SnapshotStore::new(Box::new(DiskBackend), &dir, &registry);
        let (_, stats) = store.recover(&Tracer::disabled()).unwrap();
        assert_eq!(stats.generation, 3);
        assert!(!stats.manifest_rebuilt);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
