//! CAN-bus report synthesis.
//!
//! Real vehicles emit CAN messages at up to 100 Hz; an on-board controller
//! aggregates them and uploads a report every 10 minutes while the engine
//! runs (paper §2). This module synthesizes those 10-minute reports for a
//! working day: engine sessions with a lunch break, channel values
//! correlated with utilization intensity and ambient temperature, and a
//! fuel tank that drains with work and is refueled when low.

use rand::rngs::StdRng;
use rand::RngExt;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::calendar::Date;
use crate::holidays::Hemisphere;
use crate::types::TypeProfile;

/// Reporting cadence of the on-board controller (paper: every 10 minutes).
pub const REPORT_INTERVAL_MIN: u16 = 10;

/// One aggregated 10-minute CAN report.
///
/// Optional fields model channels that can be missing in a report (sensor
/// not fitted or value lost before upload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawReport {
    /// Absolute day index of the report (days since 1970-01-01).
    pub day: i64,
    /// Minute of day at the *end* of the aggregation interval.
    pub minute: u16,
    /// Whether the engine was running during the interval.
    pub engine_on: bool,
    /// Fuel level, percent of tank capacity.
    pub fuel_level_pct: Option<f64>,
    /// Mean engine speed over the interval, rpm.
    pub engine_rpm: Option<f64>,
    /// Mean engine-oil pressure, kPa.
    pub oil_pressure_kpa: Option<f64>,
    /// Mean engine-coolant temperature, °C.
    pub coolant_temp_c: Option<f64>,
    /// Mean fuel rate, litres/hour.
    pub fuel_rate_lph: Option<f64>,
    /// Mean ground speed, km/h.
    pub speed_kmh: Option<f64>,
    /// Mean engine percent load.
    pub load_pct: Option<f64>,
    /// Mean digging pressure, kPa (earth-moving machines only).
    pub digging_pressure_kpa: Option<f64>,
    /// Mean hydraulic-pump drive temperature, °C.
    pub pump_drive_temp_c: Option<f64>,
    /// Mean hydraulic-oil tank temperature, °C.
    pub oil_tank_temp_c: Option<f64>,
}

/// Mutable per-unit state threaded across days (fuel tank level).
#[derive(Debug, Clone)]
pub struct TankState {
    /// Current fuel level as a fraction of capacity in `[0, 1]`.
    pub level_frac: f64,
    /// Tank capacity in litres.
    pub capacity_l: f64,
}

impl TankState {
    /// Fresh tank sized for the vehicle profile, starting ~90 % full.
    pub fn new(profile: &TypeProfile) -> TankState {
        TankState {
            level_frac: 0.9,
            // Bigger burners carry bigger tanks; ~ 1.5 shifts of fuel.
            capacity_l: (profile.fuel_rate_lph * 18.0).max(60.0),
        }
    }

    /// Drains `litres`; refuels to ~95 % when the level drops below 12 %.
    /// Returns `true` when a refuel event occurred.
    pub fn consume(&mut self, litres: f64, rng: &mut StdRng) -> bool {
        self.level_frac -= litres / self.capacity_l;
        if self.level_frac < 0.12 {
            self.level_frac = 0.9 + 0.08 * rng.random::<f64>();
            true
        } else {
            false
        }
    }
}

/// Mean daily ambient temperature (°C) — a smooth seasonal curve used to
/// couple thermal CAN channels to the calendar.
pub fn ambient_temp_c(date: Date, hemisphere: Hemisphere) -> f64 {
    let doy = date.day_of_year() as f64;
    let peak = match hemisphere {
        Hemisphere::North => 196.0,
        Hemisphere::South => 15.0,
    };
    let phase = 2.0 * std::f64::consts::PI * (doy - peak) / 365.25;
    14.0 + 11.0 * phase.cos()
}

/// Synthesizes the 10-minute reports of one working day.
///
/// `hours` is the day's total utilization; the engine runs in a morning
/// session and (when hours permit) an afternoon session separated by a
/// break. The number of engine-on reports is `round(hours · 6)`, so daily
/// aggregation recovers utilization hours from the sample count exactly as
/// the paper describes ("based on acquisition time and number of acquired
/// samples we derive the daily utilization hours").
#[allow(clippy::too_many_arguments)]
pub fn day_reports(
    profile: &TypeProfile,
    has_digging: bool,
    date: Date,
    hours: f64,
    hemisphere: Hemisphere,
    tank: &mut TankState,
    intensity: f64,
    rng: &mut StdRng,
) -> Vec<RawReport> {
    debug_assert!((0.0..=24.0).contains(&hours));
    let n_reports = (hours * 60.0 / REPORT_INTERVAL_MIN as f64).round() as usize;
    if n_reports == 0 {
        return Vec::new();
    }
    let noise = Normal::new(0.0, 1.0).expect("unit normal");
    let ambient = ambient_temp_c(date, hemisphere);

    // Break after the morning block for long days.
    let morning_reports = if n_reports > 24 {
        n_reports / 2
    } else {
        n_reports
    };
    let break_min = if n_reports > 24 {
        rng.random_range(30..=60_u16)
    } else {
        0
    };
    // A near-24 h day cannot fit every report plus a full break before
    // midnight no matter how early it starts; shrink the break (possibly
    // to zero) so the sample count never under-encodes the utilization.
    let slack = (24_u16 * 60 - 1).saturating_sub(n_reports as u16 * REPORT_INTERVAL_MIN);
    let break_min = break_min.min(slack);
    // Work starts between 05:30 and 08:30 — but a long (multi-shift) day
    // must start early enough that every report fits before midnight,
    // otherwise the sample count would under-encode the utilization.
    let shift_minutes = n_reports as u16 * REPORT_INTERVAL_MIN + break_min;
    let latest_start = (24_u16 * 60 - 1).saturating_sub(shift_minutes);
    let start_minute = rng.random_range(330..=510_u16).min(latest_start);

    let util = (hours / (profile.median_active_hours * 2.0)).clamp(0.05, 1.2);
    let mut out = Vec::with_capacity(n_reports);
    let mut minute = start_minute;
    let mut coolant = ambient + 10.0; // engine warms up over the first reports
    for k in 0..n_reports {
        if k == morning_reports {
            minute = minute.saturating_add(break_min);
            coolant -= 8.0; // cooled down over the break
        }
        minute = minute.saturating_add(REPORT_INTERVAL_MIN);
        if minute >= 24 * 60 {
            break; // day ran out (late start + long shift)
        }
        // Warm-up toward the operating temperature.
        let target_coolant = 78.0 + 10.0 * util + 0.25 * ambient;
        coolant += 0.5 * (target_coolant - coolant) + noise.sample(rng) * 0.8;

        let load = (28.0 + 55.0 * util * intensity + 6.0 * noise.sample(rng)).clamp(2.0, 100.0);
        let rpm = 950.0 + 900.0 * (load / 100.0) + 50.0 * noise.sample(rng);
        let fuel_rate =
            profile.fuel_rate_lph * (0.4 + 0.8 * load / 100.0) * (1.0 + 0.05 * noise.sample(rng));
        let litres = fuel_rate * REPORT_INTERVAL_MIN as f64 / 60.0;
        tank.consume(litres, rng);

        out.push(RawReport {
            day: date.day_index(),
            minute,
            engine_on: true,
            fuel_level_pct: Some((tank.level_frac * 100.0).clamp(0.0, 100.0)),
            engine_rpm: Some(rpm.max(600.0)),
            oil_pressure_kpa: Some(280.0 + 90.0 * (rpm / 2000.0) + 8.0 * noise.sample(rng)),
            coolant_temp_c: Some(coolant),
            fuel_rate_lph: Some(fuel_rate.max(0.2)),
            speed_kmh: Some((3.0 + 9.0 * util + 1.5 * noise.sample(rng)).max(0.0)),
            load_pct: Some(load),
            digging_pressure_kpa: if has_digging {
                Some((4500.0 + 4000.0 * util + 300.0 * noise.sample(rng)).max(0.0))
            } else {
                None
            },
            pump_drive_temp_c: Some(42.0 + 26.0 * util + 0.3 * ambient + noise.sample(rng)),
            oil_tank_temp_c: Some(38.0 + 20.0 * util + 0.3 * ambient + noise.sample(rng)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VehicleType;
    use rand::SeedableRng;

    fn generate(hours: f64, seed: u64) -> Vec<RawReport> {
        let profile = VehicleType::RefuseCompactor.profile();
        let mut tank = TankState::new(&profile);
        let mut rng = StdRng::seed_from_u64(seed);
        day_reports(
            &profile,
            false,
            Date::new(2016, 5, 10).unwrap(),
            hours,
            Hemisphere::North,
            &mut tank,
            1.0,
            &mut rng,
        )
    }

    #[test]
    fn report_count_encodes_utilization_hours() {
        let reports = generate(7.0, 1);
        // 7 h at one report per 10 minutes = 42 reports.
        assert_eq!(reports.len(), 42);
        assert!(reports.iter().all(|r| r.engine_on));
        let zero = generate(0.0, 1);
        assert!(zero.is_empty());
    }

    #[test]
    fn minutes_are_increasing_within_a_day() {
        let reports = generate(9.5, 2);
        for w in reports.windows(2) {
            assert!(w[1].minute > w[0].minute);
        }
        assert!(reports.last().unwrap().minute < 24 * 60);
    }

    #[test]
    fn channels_are_physically_plausible() {
        for seed in 0..5 {
            for &hours in &[0.5, 4.0, 12.0] {
                for r in generate(hours, seed) {
                    assert!((0.0..=100.0).contains(&r.fuel_level_pct.unwrap()));
                    assert!(r.engine_rpm.unwrap() >= 600.0);
                    assert!(r.engine_rpm.unwrap() < 3000.0);
                    assert!((0.0..=100.0).contains(&r.load_pct.unwrap()));
                    assert!(r.fuel_rate_lph.unwrap() > 0.0);
                    assert!(r.coolant_temp_c.unwrap() > -20.0);
                    assert!(r.coolant_temp_c.unwrap() < 130.0);
                    assert!(r.speed_kmh.unwrap() >= 0.0);
                    assert!(r.digging_pressure_kpa.is_none());
                }
            }
        }
    }

    #[test]
    fn digging_channel_only_when_equipped() {
        let profile = VehicleType::Excavator.profile();
        let mut tank = TankState::new(&profile);
        let mut rng = StdRng::seed_from_u64(3);
        let reports = day_reports(
            &profile,
            true,
            Date::new(2017, 3, 3).unwrap(),
            5.0,
            Hemisphere::North,
            &mut tank,
            1.0,
            &mut rng,
        );
        assert!(reports.iter().all(|r| r.digging_pressure_kpa.is_some()));
    }

    #[test]
    fn tank_drains_and_refuels() {
        let profile = VehicleType::Grader.profile();
        let mut tank = TankState::new(&profile);
        let mut rng = StdRng::seed_from_u64(9);
        let mut refuels = 0;
        for _ in 0..200 {
            if tank.consume(tank.capacity_l * 0.1, &mut rng) {
                refuels += 1;
            }
            assert!(tank.level_frac > 0.0 && tank.level_frac <= 1.0);
        }
        assert!(refuels > 10, "tank never refueled");
    }

    #[test]
    fn ambient_temperature_tracks_hemisphere() {
        let july = Date::new(2016, 7, 15).unwrap();
        let jan = Date::new(2016, 1, 15).unwrap();
        assert!(ambient_temp_c(july, Hemisphere::North) > ambient_temp_c(jan, Hemisphere::North));
        assert!(ambient_temp_c(july, Hemisphere::South) < ambient_temp_c(jan, Hemisphere::South));
    }

    #[test]
    fn higher_utilization_means_hotter_and_thirstier() {
        let low: Vec<RawReport> = generate(1.0, 4);
        let high: Vec<RawReport> = generate(12.0, 4);
        let mean = |rs: &[RawReport], f: fn(&RawReport) -> f64| {
            rs.iter().map(f).sum::<f64>() / rs.len() as f64
        };
        assert!(
            mean(&high, |r| r.load_pct.unwrap()) > mean(&low, |r| r.load_pct.unwrap()),
            "load should rise with utilization"
        );
        assert!(
            mean(&high, |r| r.pump_drive_temp_c.unwrap())
                > mean(&low, |r| r.pump_drive_temp_c.unwrap())
        );
    }
}
