//! Lock-free span-tree tracer with a bounded ring-buffer journal.
//!
//! The metrics registry answers *how much / how often*; this module
//! answers *what happened when*: every instrumented phase opens a
//! [`Span`], spans nest into a tree (batch → prepare → per-vehicle fit →
//! per-request predict), and each finished span becomes one
//! [`TraceEvent`] in the tracer's journal. The journal renders to the
//! Chrome trace-event JSON format ([`TraceSnapshot::to_chrome_json`],
//! loadable in `chrome://tracing` or Perfetto) or to a compact text tree
//! ([`TraceSnapshot::to_text_tree`]).
//!
//! The design mirrors the registry's zero-cost-when-disabled contract:
//!
//! - every handle is an `Option<Arc<_>>`; [`Tracer::disabled`] hands out
//!   spans that hold nothing, allocate nothing, and **never read the
//!   clock** — the disabled path is a no-op, so traced and untraced runs
//!   are bit-identical;
//! - recording is lock-free: a finished span claims a journal slot with
//!   one `fetch_add` on an atomic cursor and publishes it with one
//!   release store. The journal is **bounded**: once `capacity` events
//!   have been recorded, later events are counted as dropped instead of
//!   overwriting earlier ones (drop-newest), so a hot span site can never
//!   tear another thread's event or grow memory without bound;
//! - tracing is a write-only side channel: nothing feeds back into
//!   computation.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::export::json_string;
use crate::registry::Registry;

/// Default journal capacity (events). At ~100 bytes per event this is a
/// few megabytes — enough for a fleet evaluation with per-fit spans while
/// keeping a runaway span site bounded.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One finished span in the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span id (unique within the tracer, assigned at span start).
    pub id: u64,
    /// Parent span id; `0` marks a root span.
    pub parent: u64,
    /// Span name (static so the hot path never allocates for it).
    pub name: &'static str,
    /// Small per-thread id of the thread the span ended on.
    pub tid: u64,
    /// Span start, in nanoseconds since the tracer's epoch.
    pub start_nanos: u64,
    /// Span duration in nanoseconds. Always `0` for instant events.
    pub duration_nanos: u64,
    /// Attached key/value annotations ([`Span::arg`]).
    pub args: Vec<(&'static str, String)>,
    /// Bytes touched while the span was open ([`Span::add_bytes`]).
    /// A wall-free workload measure: unlike durations, byte counts are
    /// identical across runs and thread counts, so profiles may include
    /// them in their determinism contract.
    pub bytes: u64,
    /// Whether this is a zero-duration point event
    /// ([`SpanCtx::instant`]) rather than a timed span: rendered as a
    /// Chrome `"i"` (instant) phase instead of an `"X"` (complete) one.
    pub instant: bool,
}

/// One journal slot: a publish flag plus the event payload.
///
/// Safety contract: slot `i` is written by exactly one thread — the one
/// whose `fetch_add` on the cursor returned `i` — and readers only look
/// at the payload after acquiring `filled`, which is set (once, ever)
/// by a release store after the write completes.
struct EventSlot {
    filled: AtomicBool,
    cell: UnsafeCell<Option<TraceEvent>>,
}

unsafe impl Sync for EventSlot {}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    cursor: AtomicUsize,
    dropped: AtomicU64,
    /// Drops already pushed into a metrics registry by
    /// [`Tracer::publish_metrics`], so repeated publishes add deltas
    /// instead of re-counting.
    published_drops: AtomicU64,
    slots: Vec<EventSlot>,
}

impl TracerInner {
    fn record(&self, event: TraceEvent) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get(seq) else {
            // Journal full: drop-newest keeps the buffer bounded without
            // ever overwriting a slot another thread may be publishing.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        // Sound: this thread is the unique claimant of `seq`.
        unsafe { *slot.cell.get() = Some(event) };
        slot.filled.store(true, Ordering::Release);
    }
}

/// Small per-thread id for the Chrome exporter's `tid` field.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|tid| *tid)
}

/// Saturating nanosecond reading of an elapsed [`Instant`] span.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A shareable handle to one span journal.
///
/// Cheap to clone (an `Option<Arc>`). The [`disabled`](Tracer::disabled)
/// tracer — also the `Default` — makes every span a no-op that never
/// reads the clock, mirroring [`crate::Registry::disabled`].
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A live tracer with the [default capacity](DEFAULT_TRACE_CAPACITY).
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live tracer whose journal holds at most `capacity` events;
    /// events past that are counted in [`TraceSnapshot::dropped`].
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "trace journal needs at least one slot");
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                cursor: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
                published_drops: AtomicU64::new(0),
                slots: (0..capacity)
                    .map(|_| EventSlot {
                        filled: AtomicBool::new(false),
                        cell: UnsafeCell::new(None),
                    })
                    .collect(),
            })),
        }
    }

    /// A tracer whose spans are all no-ops.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a root span (no parent).
    pub fn root(&self, name: &'static str) -> Span {
        Span::start(self.inner.clone(), 0, name)
    }

    /// Journal capacity in events (0 for a disabled tracer).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| inner.slots.len())
    }

    /// Events discarded so far because the journal was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.dropped.load(Ordering::Relaxed))
    }

    /// Highest journal fill level reached so far, in events. Equals
    /// [`capacity`](Tracer::capacity) once the ring has saturated — the
    /// cursor keeps counting past the end (those are drops), but slots
    /// beyond capacity never fill.
    pub fn high_watermark(&self) -> usize {
        self.inner.as_ref().map_or(0, |inner| {
            inner.cursor.load(Ordering::Relaxed).min(inner.slots.len())
        })
    }

    /// Publishes the tracer's health into a metrics registry:
    ///
    /// - `vup_trace_dropped_total` — events lost to a full journal
    ///   (delta-published: calling this repeatedly never double-counts);
    /// - `vup_trace_ring_high_watermark` — peak journal fill (events);
    /// - `vup_trace_ring_capacity` — journal capacity (events).
    ///
    /// A disabled tracer still registers all three at zero so the
    /// metric set exposed on `/metrics` does not depend on whether
    /// tracing happens to be on.
    pub fn publish_metrics(&self, registry: &Registry) {
        registry.describe(
            "vup_trace_dropped_total",
            "Trace events discarded because the span journal was full.",
        );
        registry.describe(
            "vup_trace_ring_high_watermark",
            "Peak fill level of the trace span journal, in events.",
        );
        registry.describe(
            "vup_trace_ring_capacity",
            "Capacity of the trace span journal, in events.",
        );
        let dropped_total = registry.counter("vup_trace_dropped_total");
        let Some(inner) = &self.inner else {
            registry.gauge("vup_trace_ring_high_watermark").set(0.0);
            registry.gauge("vup_trace_ring_capacity").set(0.0);
            return;
        };
        // Push only the delta since the last publish: counters are
        // monotonic, the tracer's drop count is a point-in-time reading.
        let dropped = inner.dropped.load(Ordering::Relaxed);
        let published = inner.published_drops.swap(dropped, Ordering::Relaxed);
        dropped_total.add(dropped.saturating_sub(published));
        registry
            .gauge("vup_trace_ring_high_watermark")
            .set(self.high_watermark() as f64);
        registry
            .gauge("vup_trace_ring_capacity")
            .set(inner.slots.len() as f64);
    }

    /// A point-in-time copy of every *finished* span, sorted by
    /// (start, id). Spans still running are not included. Empty for a
    /// disabled tracer.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::default();
        };
        let mut events: Vec<TraceEvent> = inner
            .slots
            .iter()
            .filter(|slot| slot.filled.load(Ordering::Acquire))
            // Sound: `filled` is only ever set by the slot's unique
            // writer, after the payload write, with release ordering.
            .map(|slot| unsafe {
                (*slot.cell.get())
                    .clone()
                    .expect("published slot holds event")
            })
            .collect();
        events.sort_by_key(|e| (e.start_nanos, e.id));
        TraceSnapshot {
            events,
            dropped: inner.dropped.load(Ordering::Relaxed),
        }
    }
}

/// A cheaply clonable parent reference, for handing a span's position in
/// the tree across thread or struct boundaries (workers, `MlTimers`)
/// without moving the RAII [`Span`] itself.
#[derive(Clone, Default)]
pub struct SpanCtx {
    live: Option<(Arc<TracerInner>, u64)>,
}

impl SpanCtx {
    /// A context under which every child span is a no-op.
    pub fn disabled() -> SpanCtx {
        SpanCtx::default()
    }

    /// Whether child spans of this context record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.live.is_some()
    }

    /// Starts a child span of this context.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.live {
            None => Span::noop(),
            Some((tracer, id)) => Span::start(Some(Arc::clone(tracer)), *id, name),
        }
    }

    /// Records a point event under this context: a zero-duration child
    /// marking *that* something happened (a breaker transition, a retry)
    /// rather than *how long* it took. The returned [`Span`] exists only
    /// to attach [`Span::arg`] annotations before it is dropped; its
    /// recorded duration is always 0 and the clock is read once (never,
    /// under a disabled context).
    pub fn instant(&self, name: &'static str) -> Span {
        let mut span = self.child(name);
        if let Some(live) = &mut span.live {
            live.instant = true;
        }
        span
    }
}

struct LiveSpan {
    tracer: Arc<TracerInner>,
    id: u64,
    parent: u64,
    name: &'static str,
    started: Instant,
    args: Vec<(&'static str, String)>,
    bytes: u64,
    instant: bool,
}

/// A running span: records one [`TraceEvent`] into its tracer's journal
/// when dropped (or explicitly [`end`](Span::end)ed). A span from a
/// disabled tracer holds nothing and never reads the clock.
#[must_use = "a dropped span records immediately; bind it to trace a scope"]
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    fn start(inner: Option<Arc<TracerInner>>, parent: u64, name: &'static str) -> Span {
        Span {
            live: inner.map(|tracer| {
                let id = tracer.next_id.fetch_add(1, Ordering::Relaxed);
                LiveSpan {
                    started: Instant::now(),
                    tracer,
                    id,
                    parent,
                    name,
                    args: Vec::new(),
                    bytes: 0,
                    instant: false,
                }
            }),
        }
    }

    /// A span that records nothing (what disabled tracers hand out).
    pub fn noop() -> Span {
        Span { live: None }
    }

    /// Whether this span will record an event.
    pub fn is_enabled(&self) -> bool {
        self.live.is_some()
    }

    /// Starts a child of this span.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.live {
            None => Span::noop(),
            Some(live) => Span::start(Some(Arc::clone(&live.tracer)), live.id, name),
        }
    }

    /// The parent reference other components need to start children of
    /// this span (see [`SpanCtx`]).
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx {
            live: self
                .live
                .as_ref()
                .map(|live| (Arc::clone(&live.tracer), live.id)),
        }
    }

    /// Attaches a key/value annotation; a no-op (not even a `to_string`)
    /// on a disabled span.
    pub fn arg(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(live) = &mut self.live {
            live.args.push((key, value.to_string()));
        }
    }

    /// Counts bytes touched under this span (payload sizes, serialized
    /// lengths). Accumulates across calls; a no-op on a disabled span.
    /// Unlike durations, byte counts survive into the profile layer's
    /// determinism contract.
    pub fn add_bytes(&mut self, n: u64) {
        if let Some(live) = &mut self.live {
            live.bytes = live.bytes.saturating_add(n);
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let start_nanos = u64::try_from(
                live.started
                    .saturating_duration_since(live.tracer.epoch)
                    .as_nanos(),
            )
            .unwrap_or(u64::MAX);
            let event = TraceEvent {
                id: live.id,
                parent: live.parent,
                name: live.name,
                tid: current_tid(),
                start_nanos,
                // Instant events are points in time: one clock read at
                // start, none at drop.
                duration_nanos: if live.instant {
                    0
                } else {
                    elapsed_nanos(live.started)
                },
                args: live.args,
                bytes: live.bytes,
                instant: live.instant,
            };
            live.tracer.record(event);
        }
    }
}

/// A frozen copy of a tracer's journal.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Finished spans, sorted by (start, id).
    pub events: Vec<TraceEvent>,
    /// Events discarded because the journal was full.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the snapshot holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the Chrome trace-event JSON format: one complete (`"X"`)
    /// event per span with microsecond `ts`/`dur`, loadable in
    /// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
    pub fn to_chrome_json(&self) -> String {
        let mut entries = Vec::with_capacity(self.events.len() + 8);
        // Metadata ("M") events first: name the process and each thread
        // lane so chrome://tracing / Perfetto show labels, not bare tids.
        // Lanes that ran executor workers are labeled as such.
        entries.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"vup\"}}"
                .to_string(),
        );
        let mut worker_tids: HashSet<u64> = HashSet::new();
        let mut tids: Vec<u64> = Vec::new();
        for event in &self.events {
            if !tids.contains(&event.tid) {
                tids.push(event.tid);
            }
            if event.name == "executor_worker" {
                worker_tids.insert(event.tid);
            }
        }
        tids.sort_unstable();
        for tid in tids {
            let label = if worker_tids.contains(&tid) {
                format!("worker-{tid}")
            } else {
                format!("thread-{tid}")
            };
            entries.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                tid,
                json_string(&label),
            ));
        }
        for event in &self.events {
            let mut args = format!(
                "{{\"span_id\":\"{}\",\"parent_id\":\"{}\"",
                event.id, event.parent
            );
            for (key, value) in &event.args {
                let _ = write!(args, ",{}:{}", json_string(key), json_string(value));
            }
            if event.bytes > 0 {
                let _ = write!(args, ",\"bytes\":{}", event.bytes);
            }
            args.push('}');
            if event.instant {
                // Thread-scoped instant event: a point marker, no "dur".
                entries.push(format!(
                    "{{\"name\":{},\"cat\":\"vup\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"args\":{}}}",
                    json_string(event.name),
                    event.tid,
                    event.start_nanos as f64 / 1_000.0,
                    args,
                ));
            } else {
                entries.push(format!(
                    "{{\"name\":{},\"cat\":\"vup\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{}}}",
                    json_string(event.name),
                    event.tid,
                    event.start_nanos as f64 / 1_000.0,
                    event.duration_nanos as f64 / 1_000.0,
                    args,
                ));
            }
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
            entries.join(",\n")
        )
    }

    /// Renders a compact indented text tree (children under parents, in
    /// start order), with per-span durations and args.
    pub fn to_text_tree(&self) -> String {
        let present: HashSet<u64> = self.events.iter().map(|e| e.id).collect();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (idx, event) in self.events.iter().enumerate() {
            // A span whose parent was dropped (or is still running)
            // renders as a root rather than vanishing.
            if event.parent == 0 || !present.contains(&event.parent) {
                roots.push(idx);
            } else {
                children.entry(event.parent).or_default().push(idx);
            }
        }
        let mut out = String::new();
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((idx, depth)) = stack.pop() {
            let event = &self.events[idx];
            let _ = write!(out, "{:indent$}{}", "", event.name, indent = depth * 2);
            for (key, value) in &event.args {
                let _ = write!(out, " {key}={value}");
            }
            if event.instant {
                let _ = writeln!(out, "  [instant]");
            } else {
                let _ = writeln!(out, "  [{}]", format_nanos(event.duration_nanos));
            }
            if let Some(kids) = children.get(&event.id) {
                for &kid in kids.iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
        let _ = writeln!(
            out,
            "({} span(s), {} dropped)",
            self.events.len(),
            self.dropped
        );
        out
    }
}

/// Human-readable duration for the text tree.
fn format_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_spans_are_noops_end_to_end() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut root = tracer.root("root");
        assert!(!root.is_enabled());
        root.arg("k", 1); // must not allocate or record
        let child = root.child("child");
        assert!(!child.is_enabled());
        assert!(!root.ctx().is_enabled());
        assert!(!root.ctx().child("via_ctx").is_enabled());
        child.end();
        root.end();
        let snapshot = tracer.snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.dropped, 0);
    }

    #[test]
    fn spans_record_a_parent_linked_tree() {
        let tracer = Tracer::new();
        let mut root = tracer.root("batch");
        root.arg("requests", 3);
        {
            let prepare = root.child("prepare");
            let _fit = prepare.child("fit");
        }
        root.child("serve").end();
        drop(root);

        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.len(), 4);
        let by_name = |name: &str| {
            snapshot
                .events
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("span '{name}' missing"))
        };
        let batch = by_name("batch");
        assert_eq!(batch.parent, 0);
        assert_eq!(batch.args, vec![("requests", "3".to_string())]);
        assert_eq!(by_name("prepare").parent, batch.id);
        assert_eq!(by_name("serve").parent, batch.id);
        assert_eq!(by_name("fit").parent, by_name("prepare").id);
        // Children start no earlier than their parent.
        assert!(by_name("fit").start_nanos >= by_name("prepare").start_nanos);
    }

    #[test]
    fn ctx_children_attach_to_the_right_parent() {
        let tracer = Tracer::new();
        let root = tracer.root("root");
        let ctx = root.ctx();
        let root_id = {
            ctx.child("a").end();
            ctx.child("b").end();
            drop(root);
            tracer
                .snapshot()
                .events
                .iter()
                .find(|e| e.name == "root")
                .unwrap()
                .id
        };
        let snapshot = tracer.snapshot();
        for name in ["a", "b"] {
            let e = snapshot.events.iter().find(|e| e.name == name).unwrap();
            assert_eq!(e.parent, root_id, "span '{name}'");
        }
    }

    #[test]
    fn full_journal_drops_newest_and_counts_them() {
        let tracer = Tracer::with_capacity(4);
        for _ in 0..10 {
            tracer.root("s").end();
        }
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.len(), 4);
        assert_eq!(snapshot.dropped, 6);
        assert!(snapshot.to_text_tree().contains("6 dropped"));
    }

    #[test]
    fn concurrent_spans_all_land_in_the_journal() {
        let tracer = Tracer::with_capacity(4_096);
        let root = tracer.root("root");
        let ctx = root.ctx();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let mut span = ctx.child("work");
                        span.arg("x", 1);
                    }
                });
            }
        });
        drop(root);
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.len(), 401);
        assert_eq!(snapshot.dropped, 0);
        // Every worker span parents to the root.
        let root_id = snapshot
            .events
            .iter()
            .find(|e| e.name == "root")
            .unwrap()
            .id;
        assert!(snapshot
            .events
            .iter()
            .filter(|e| e.name == "work")
            .all(|e| e.parent == root_id));
    }

    #[test]
    fn instant_events_record_zero_duration_point_markers() {
        let tracer = Tracer::new();
        let root = tracer.root("batch");
        {
            let mut event = root.ctx().instant("breaker_open");
            event.arg("vehicle", 3);
        }
        let root_ctx = root.ctx();
        drop(root);

        let snapshot = tracer.snapshot();
        let marker = snapshot
            .events
            .iter()
            .find(|e| e.name == "breaker_open")
            .expect("instant event recorded");
        assert!(marker.instant);
        assert_eq!(marker.duration_nanos, 0);
        assert_eq!(marker.args, vec![("vehicle", "3".to_string())]);
        let batch = snapshot.events.iter().find(|e| e.name == "batch").unwrap();
        assert_eq!(marker.parent, batch.id);
        assert!(!batch.instant, "timed spans keep the complete phase");

        // Exporters keep the two phases apart.
        let json = snapshot.to_chrome_json();
        assert!(json.contains("\"name\":\"breaker_open\",\"cat\":\"vup\",\"ph\":\"i\",\"s\":\"t\""));
        assert!(json.contains("\"name\":\"batch\",\"cat\":\"vup\",\"ph\":\"X\""));
        let tree = snapshot.to_text_tree();
        assert!(tree.contains("breaker_open vehicle=3  [instant]"), "{tree}");

        // Disabled contexts keep instants clock-free no-ops.
        let disabled = SpanCtx::disabled().instant("nothing");
        assert!(!disabled.is_enabled());
        drop(root_ctx);
    }

    #[test]
    fn chrome_json_has_complete_events_with_escaped_args() {
        let tracer = Tracer::new();
        let mut span = tracer.root("fit");
        span.arg("note", "quote \" and \\ back");
        span.end();
        let json = tracer.snapshot().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"fit\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        assert!(json.contains("\"note\":\"quote \\\" and \\\\ back\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn text_tree_indents_children_under_parents() {
        let tracer = Tracer::new();
        let root = tracer.root("outer");
        {
            let mid = root.child("middle");
            mid.child("inner").end();
        }
        drop(root);
        let tree = tracer.snapshot().to_text_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("outer"));
        assert!(lines[1].starts_with("  middle"));
        assert!(lines[2].starts_with("    inner"));
        assert!(lines[3].contains("3 span(s), 0 dropped"));
    }

    #[test]
    fn snapshot_orders_by_start_time() {
        let tracer = Tracer::new();
        tracer.root("first").end();
        tracer.root("second").end();
        let names: Vec<&str> = tracer.snapshot().events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["first", "second"]);
    }

    #[test]
    fn add_bytes_accumulates_and_exports() {
        let tracer = Tracer::new();
        {
            let mut span = tracer.root("store_persist");
            span.add_bytes(100);
            span.add_bytes(28);
        }
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.events[0].bytes, 128);
        assert!(snapshot.to_chrome_json().contains("\"bytes\":128"));

        // Disabled spans never count.
        let mut noop = Span::noop();
        noop.add_bytes(7);
        drop(noop);
    }

    #[test]
    fn chrome_json_labels_thread_lanes_with_metadata_events() {
        let tracer = Tracer::new();
        tracer.root("executor_worker").end();
        tracer.root("fit").end();
        let json = tracer.snapshot().to_chrome_json();
        assert!(json.contains("\"name\":\"process_name\",\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"thread_name\",\"ph\":\"M\""));
        // Both spans ended on this thread, which ran an executor worker.
        assert!(json.contains("\"name\":\"worker-"));
    }

    #[test]
    fn tracer_health_publishes_delta_counted_metrics() {
        let registry = Registry::new();
        let tracer = Tracer::with_capacity(2);
        for _ in 0..5 {
            tracer.root("s").end();
        }
        assert_eq!(tracer.capacity(), 2);
        assert_eq!(tracer.dropped(), 3);
        assert_eq!(tracer.high_watermark(), 2);

        tracer.publish_metrics(&registry);
        assert_eq!(registry.counter("vup_trace_dropped_total").get(), 3);
        assert_eq!(registry.gauge("vup_trace_ring_high_watermark").get(), 2.0);
        assert_eq!(registry.gauge("vup_trace_ring_capacity").get(), 2.0);

        // Re-publishing without new drops must not double-count.
        tracer.publish_metrics(&registry);
        assert_eq!(registry.counter("vup_trace_dropped_total").get(), 3);
        tracer.root("s").end();
        tracer.publish_metrics(&registry);
        assert_eq!(registry.counter("vup_trace_dropped_total").get(), 4);
        assert!(registry.help("vup_trace_dropped_total").is_some());
    }

    #[test]
    fn disabled_tracer_still_registers_health_metrics() {
        let registry = Registry::new();
        let tracer = Tracer::disabled();
        assert_eq!(tracer.capacity(), 0);
        assert_eq!(tracer.dropped(), 0);
        assert_eq!(tracer.high_watermark(), 0);
        tracer.publish_metrics(&registry);
        let text = registry.snapshot().to_prometheus_text();
        assert!(text.contains("vup_trace_dropped_total 0"));
        assert!(text.contains("vup_trace_ring_high_watermark 0"));
        assert!(text.contains("vup_trace_ring_capacity 0"));
    }

    #[test]
    fn format_nanos_scales_units() {
        assert_eq!(format_nanos(999), "999 ns");
        assert_eq!(format_nanos(1_500), "1.50 us");
        assert_eq!(format_nanos(2_000_000), "2.00 ms");
        assert_eq!(format_nanos(3_000_000_000), "3.00 s");
    }
}
