//! Serializable experiment-result structures.
//!
//! The experiment binaries in `vup-bench` persist their measurements as
//! JSON through these types; EXPERIMENTS.md is written from them so that
//! every reported number is regenerable.

use serde::{Deserialize, Serialize};

/// One algorithm's aggregate result in one scenario (a bar of Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct AlgorithmResult {
    /// Model label (LV, MA, LR, Lasso, SVR, GB).
    pub model: String,
    /// Scenario label (next-day / next-working-day).
    pub scenario: String,
    /// Macro-averaged PE over the evaluated vehicles.
    pub mean_pe: f64,
    /// Median of the per-vehicle PE distribution.
    pub median_pe: f64,
    /// First quartile of the distribution.
    pub q1_pe: f64,
    /// Third quartile of the distribution.
    pub q3_pe: f64,
    /// Number of vehicles evaluated.
    pub n_vehicles: usize,
}

/// One `(K, w)` cell of the Fig. 4 parameter sweep.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SweepPoint {
    /// Number of selected lags K.
    pub k: usize,
    /// Training-window length w (or `0` for the expanding strategy).
    pub train_window: usize,
    /// Strategy label.
    pub strategy: String,
    /// Macro-averaged PE.
    pub mean_pe: f64,
}

/// One predicted-vs-actual point of the Fig. 6 series.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SeriesPoint {
    /// Absolute day index.
    pub day: i64,
    /// ISO date string.
    pub date: String,
    /// Actual utilization hours.
    pub actual: f64,
    /// Predicted utilization hours.
    pub predicted: f64,
}

/// A timing measurement of §4.5.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TimingRow {
    /// What was measured (model label or pipeline stage).
    pub task: String,
    /// Mean wall-clock milliseconds per execution.
    pub mean_ms: f64,
    /// Number of repetitions measured.
    pub reps: usize,
}

/// Computes `(mean, median, q1, q3)` of a PE distribution; returns `None`
/// for an empty distribution.
pub fn distribution_summary(pes: &[f64]) -> Option<(f64, f64, f64, f64)> {
    if pes.is_empty() {
        return None;
    }
    let mean = pes.iter().sum::<f64>() / pes.len() as f64;
    let median = vup_tseries::stats::quantile(pes, 0.5)?;
    let q1 = vup_tseries::stats::quantile(pes, 0.25)?;
    let q3 = vup_tseries::stats::quantile(pes, 0.75)?;
    Some((mean, median, q1, q3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_on_known_distribution() {
        let pes = [10.0, 20.0, 30.0, 40.0];
        let (mean, median, q1, q3) = distribution_summary(&pes).unwrap();
        assert_eq!(mean, 25.0);
        assert_eq!(median, 25.0);
        assert_eq!(q1, 17.5);
        assert_eq!(q3, 32.5);
        assert!(distribution_summary(&[]).is_none());
    }

    #[test]
    fn results_serialize_roundtrip() {
        let r = AlgorithmResult {
            model: "SVR".into(),
            scenario: "next-working-day".into(),
            mean_pe: 15.2,
            median_pe: 14.0,
            q1_pe: 11.0,
            q3_pe: 18.5,
            n_vehicles: 120,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: AlgorithmResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);

        let p = SweepPoint {
            k: 20,
            train_window: 140,
            strategy: "sliding".into(),
            mean_pe: 17.0,
        };
        let back: SweepPoint = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}
