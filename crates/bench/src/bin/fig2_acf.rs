//! Figure 2 — autocorrelation function of one refuse-compactor unit.
//!
//! Reproduces the paper's example: the ACF of a single unit's daily
//! utilization series over a training window, showing the weekly
//! periodicity (peaks at lags 7, 14, 21) and the elevated correlation at
//! the neighbouring lags (1, 6, 8, 13, 15, …). Also prints which lags the
//! top-K selection keeps — the feature-selection step of §3.
//!
//! Run with: `cargo run --release -p vup-bench --bin fig2_acf`

use serde::Serialize;
use vup_bench::{bar, experiment_fleet, print_header, write_json};
use vup_fleetsim::generator;
use vup_fleetsim::VehicleType;
use vup_tseries::pacf::pacf;
use vup_tseries::{acf, significance_bound, top_k_lags};

const MAX_LAG: usize = 21;
const K: usize = 10;

fn main() {
    let fleet = experiment_fleet();
    // First refuse-compactor unit with a reasonably busy series.
    let unit = fleet
        .of_type(VehicleType::RefuseCompactor)
        .find(|v| {
            let h = generator::generate_history(&fleet, v.id);
            h.utilization_rate() > 0.35
        })
        .expect("busy compactor exists");
    let history = generator::generate_history(&fleet, unit.id);
    // A recent 140-day training window of the daily series (the paper's
    // Fig. 2 uses a short window; 140 matches the chosen w).
    let series = history.hours_series();
    let window = &series[series.len() - 140..];

    let values = acf(window, MAX_LAG);
    let partial = pacf(window, MAX_LAG);
    let bound = significance_bound(window.len());
    let selected = top_k_lags(&values, K, MAX_LAG);

    println!(
        "Fig. 2: ACF of unit {} ({}) over a {}-day window\n",
        unit.id.0,
        unit.vtype.name(),
        window.len()
    );
    print_header(&[
        ("lag", 4),
        ("acf", 8),
        ("pacf", 8),
        ("signif", 7),
        ("top-K", 6),
        ("", 32),
    ]);
    for (lag, (&v, &p)) in values.iter().zip(&partial).enumerate() {
        println!(
            "{:>4} {:>8.3} {:>8.3} {:>7} {:>6} {}",
            lag,
            v,
            p,
            if v.abs() > bound { "yes" } else { "" },
            if selected.contains(&lag) { "<<" } else { "" },
            bar(v.max(0.0), 1.0, 32),
        );
    }
    println!("\n95% white-noise significance bound: ±{bound:.3}");
    println!("Top-{K} selected lags: {selected:?}");
    println!("Paper shape check: maxima at multiples of 7; neighbours (1, 6, 8, ...) elevated.");

    #[derive(Serialize)]
    struct Fig2Output {
        vehicle_id: u32,
        window_days: usize,
        acf: Vec<f64>,
        pacf: Vec<f64>,
        significance_bound: f64,
        selected_lags: Vec<usize>,
    }
    let path = write_json(
        "fig2_acf",
        &Fig2Output {
            vehicle_id: unit.id.0,
            window_days: window.len(),
            acf: values,
            pacf: partial,
            significance_bound: bound,
            selected_lags: selected,
        },
    );
    println!("\nFull data written to {}", path.display());
}
