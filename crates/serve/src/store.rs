//! Per-vehicle cache of fitted predictors.
//!
//! One entry per `(vehicle, configuration)` pair, where the configuration
//! is identified by a stable fingerprint: two stores built from equal
//! [`PipelineConfig`]s agree on every key, and any config change (model,
//! window, features, …) silently maps to a different key instead of
//! serving a stale model.
//!
//! Entries carry the slot the model was trained at. A lookup passes the
//! current end of the vehicle's series; once that has advanced
//! `retrain_every` slots past the training point the entry no longer
//! qualifies — the same cadence [`vup_core::evaluate`] uses for offline
//! evaluation, so a served prediction is always one an offline replay
//! would also have produced.
//!
//! Lock discipline: a single `RwLock` around the map, taken only on
//! lookup/insert/invalidate. [`crate::PredictionService`] performs these
//! on its coordinating thread; the executor workers that train and
//! predict in parallel only ever touch `Arc` snapshots handed to them, so
//! no lock is acquired on the hot path.
//!
//! Durability is optional: a store built by [`ModelStore::open`] (or
//! [`ModelStore::open_with`]) writes every insert through to a
//! [`crate::persist::SnapshotStore`] and warm-starts from the surviving
//! snapshots at open — see [`crate::persist`] for the file format,
//! crash-safety protocol and corruption-tolerant recovery.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, RwLock};

use vup_core::{FittedPredictor, PipelineConfig};
use vup_fleetsim::fleet::VehicleId;
use vup_obs::{Counter, Gauge, Registry, SpanCtx, Tracer};

use crate::persist::{DiskBackend, RecoveryStats, SnapshotStore, StorageBackend};

/// Registry handles for the store's cache metrics. All no-ops by default
/// (the un-observed store); see [`ModelStore::observed`].
#[derive(Default)]
struct StoreMetrics {
    /// `vup_store_hits_total` — fresh cached model served.
    hits: Counter,
    /// `vup_store_misses_total{reason="absent"}` — no entry at all.
    miss_absent: Counter,
    /// `vup_store_misses_total{reason="stale"}` — entry aged past the
    /// retrain cadence (or trained beyond the requested `now`).
    miss_stale: Counter,
    /// `vup_store_retrains_total` — models inserted after (re)training.
    retrains: Counter,
    /// `vup_store_invalidations_total` — entries dropped by
    /// [`ModelStore::invalidate`] / [`ModelStore::clear`].
    invalidations: Counter,
    /// `vup_store_models` — *servable* models currently cached:
    /// poisoned (force-aged) entries do not count, so the gauge, the
    /// poison counter and the invalidation counter stay consistent.
    models: Gauge,
    /// `vup_store_poisoned_total` — entries force-aged by
    /// [`ModelStore::poison`] (fault injection).
    poisons: Counter,
}

impl StoreMetrics {
    fn register(registry: &Registry) -> StoreMetrics {
        registry.describe("vup_store_hits_total", "Fresh cached models served.");
        registry.describe("vup_store_misses_total", "Cache misses, by reason.");
        registry.describe(
            "vup_store_retrains_total",
            "Models inserted after (re)training.",
        );
        registry.describe(
            "vup_store_invalidations_total",
            "Cached models dropped by invalidation.",
        );
        registry.describe("vup_store_models", "Models currently cached.");
        registry.describe(
            "vup_store_poisoned_total",
            "Cached models force-aged to stale by fault injection.",
        );
        StoreMetrics {
            hits: registry.counter("vup_store_hits_total"),
            miss_absent: registry.counter_with("vup_store_misses_total", &[("reason", "absent")]),
            miss_stale: registry.counter_with("vup_store_misses_total", &[("reason", "stale")]),
            retrains: registry.counter("vup_store_retrains_total"),
            invalidations: registry.counter("vup_store_invalidations_total"),
            models: registry.gauge("vup_store_models"),
            poisons: registry.counter("vup_store_poisoned_total"),
        }
    }
}

/// Freshness-qualified result of a [`ModelStore::lookup`] — unlike the
/// plain `Option` of [`ModelStore::get`], it distinguishes the two miss
/// causes, which provenance records and retrain accounting care about.
pub enum Lookup {
    /// A fresh cached model.
    Hit(Arc<StoredModel>),
    /// An entry exists but aged past the retrain cadence (or was trained
    /// beyond the requested `now`).
    Stale(Arc<StoredModel>),
    /// No entry at all.
    Absent,
}

/// A cached fitted model plus the training position it is valid from.
#[derive(Clone)]
pub struct StoredModel {
    /// The fitted per-vehicle predictor.
    pub predictor: FittedPredictor,
    /// Slot index the training window ended at (exclusive): the model was
    /// fitted on data strictly before this slot.
    pub trained_at: usize,
}

/// Thread-safe cache of one fitted model per vehicle and configuration.
#[derive(Default)]
pub struct ModelStore {
    entries: RwLock<HashMap<(VehicleId, u64), Arc<StoredModel>>>,
    metrics: StoreMetrics,
    /// Durable side, present only for stores built by
    /// [`ModelStore::open`] / [`ModelStore::open_with`].
    persist: Option<SnapshotStore>,
    /// What startup recovery found, for the same stores.
    recovery: Option<RecoveryStats>,
}

/// Entries whose model is actually servable: poisoning force-ages an
/// entry to `trained_at == usize::MAX`, which no lookup can match.
fn servable(entries: &HashMap<(VehicleId, u64), Arc<StoredModel>>) -> usize {
    entries
        .values()
        .filter(|e| e.trained_at != usize::MAX)
        .count()
}

impl ModelStore {
    /// Creates an empty store.
    pub fn new() -> ModelStore {
        ModelStore::default()
    }

    /// Creates an empty store that records hit/miss/retrain/invalidation
    /// counters and the cached-model gauge into `registry`. With a
    /// disabled registry this is exactly [`ModelStore::new`].
    pub fn observed(registry: &Registry) -> ModelStore {
        ModelStore {
            entries: RwLock::default(),
            metrics: StoreMetrics::register(registry),
            persist: None,
            recovery: None,
        }
    }

    /// Opens a durable store rooted at `dir` on the real filesystem,
    /// running startup recovery: every surviving snapshot warm-starts
    /// the cache, every damaged file is quarantined (see
    /// [`crate::persist`]). Un-observed and un-traced; use
    /// [`ModelStore::open_with`] for metrics, spans or fault injection.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ModelStore> {
        Self::open_with(
            Box::new(DiskBackend),
            dir.as_ref(),
            &Registry::disabled(),
            &Tracer::disabled(),
        )
    }

    /// [`ModelStore::open`] through an explicit [`StorageBackend`]
    /// (e.g. a [`crate::persist::FaultyBackend`] running a disk-fault
    /// plan), recording store and persistence metrics into `registry`
    /// and the `store_recover` span into `tracer`.
    ///
    /// Only an unlistable store directory is an error; damaged files
    /// are quarantined, not fatal. After a successful open,
    /// [`ModelStore::recovery`] reports what recovery found.
    pub fn open_with(
        backend: Box<dyn StorageBackend>,
        dir: &Path,
        registry: &Registry,
        tracer: &Tracer,
    ) -> io::Result<ModelStore> {
        let snapshots = SnapshotStore::new(backend, dir, registry);
        let (recovered, stats) = snapshots.recover(tracer)?;
        let mut entries = HashMap::new();
        for (vehicle, fingerprint, model) in recovered {
            entries.insert((vehicle, fingerprint), Arc::new(model));
        }
        let metrics = StoreMetrics::register(registry);
        metrics.models.set(servable(&entries) as f64);
        Ok(ModelStore {
            entries: RwLock::new(entries),
            metrics,
            persist: Some(snapshots),
            recovery: Some(stats),
        })
    }

    /// What startup recovery found, for stores built by
    /// [`ModelStore::open`] / [`ModelStore::open_with`].
    pub fn recovery(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Whether inserts are written through to disk.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// Stable fingerprint of a pipeline configuration (FNV-1a over its
    /// canonical debug rendering — identical configs agree across
    /// processes, unlike `DefaultHasher`'s unspecified algorithm).
    pub fn fingerprint(config: &PipelineConfig) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{config:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        hash
    }

    /// Returns the cached model for `vehicle` under `config` if it is
    /// still fresh at `now` (the current exclusive end of the vehicle's
    /// series): trained at or before `now`, and fewer than
    /// `config.retrain_every` slots ago. Stale entries stay in place
    /// until the next [`Self::insert`] overwrites them.
    pub fn get(
        &self,
        vehicle: VehicleId,
        config: &PipelineConfig,
        now: usize,
    ) -> Option<Arc<StoredModel>> {
        match self.lookup(vehicle, config, now) {
            Lookup::Hit(entry) => Some(entry),
            Lookup::Stale(_) | Lookup::Absent => None,
        }
    }

    /// [`ModelStore::get`] preserving the miss cause: a usable entry is a
    /// [`Lookup::Hit`], an aged-out one a [`Lookup::Stale`] (the stale
    /// model is returned for inspection, not for serving), and a missing
    /// one [`Lookup::Absent`]. Updates the same hit/miss counters.
    pub fn lookup(&self, vehicle: VehicleId, config: &PipelineConfig, now: usize) -> Lookup {
        let Some(entry) = self.peek(vehicle, config) else {
            self.metrics.miss_absent.inc();
            return Lookup::Absent;
        };
        let fresh = now >= entry.trained_at && now - entry.trained_at < config.retrain_every;
        if fresh {
            self.metrics.hits.inc();
            Lookup::Hit(entry)
        } else {
            self.metrics.miss_stale.inc();
            Lookup::Stale(entry)
        }
    }

    /// Returns the cached model regardless of freshness.
    pub fn peek(&self, vehicle: VehicleId, config: &PipelineConfig) -> Option<Arc<StoredModel>> {
        let key = (vehicle, Self::fingerprint(config));
        self.entries.read().expect("store lock").get(&key).cloned()
    }

    /// Caches a model trained for `vehicle` with its training window
    /// ending at `trained_at`, replacing any previous entry for the same
    /// vehicle and configuration. Returns the shared handle.
    pub fn insert(
        &self,
        vehicle: VehicleId,
        config: &PipelineConfig,
        predictor: FittedPredictor,
        trained_at: usize,
    ) -> Arc<StoredModel> {
        self.insert_traced(vehicle, config, predictor, trained_at, &SpanCtx::disabled())
    }

    /// [`ModelStore::insert`] with a tracing context: on a durable
    /// store the write-through `store_persist` span nests under `ctx`.
    /// A persistence failure never fails the insert — the entry serves
    /// from memory and the failure counts into
    /// `vup_store_persist_failed_total`.
    pub fn insert_traced(
        &self,
        vehicle: VehicleId,
        config: &PipelineConfig,
        predictor: FittedPredictor,
        trained_at: usize,
        ctx: &SpanCtx,
    ) -> Arc<StoredModel> {
        let entry = Arc::new(StoredModel {
            predictor,
            trained_at,
        });
        let fingerprint = Self::fingerprint(config);
        let live = {
            let mut entries = self.entries.write().expect("store lock");
            entries.insert((vehicle, fingerprint), Arc::clone(&entry));
            servable(&entries)
        };
        self.metrics.retrains.inc();
        self.metrics.models.set(live as f64);
        if let Some(snapshots) = &self.persist {
            snapshots.persist(vehicle, fingerprint, trained_at, &entry.predictor, ctx);
        }
        entry
    }

    /// Fault-injection hook: force-ages `vehicle`'s cached entry under
    /// `config` so the next [`ModelStore::lookup`] reports it
    /// [`Lookup::Stale`] (and the service retrains), exercising the
    /// stale-miss path on demand. The model itself is untouched — only
    /// its training position is moved beyond any reachable `now`; on a
    /// durable store the on-disk snapshot is deliberately left intact
    /// (the disk copy is not what is being poisoned).
    /// Returns whether an entry existed to poison.
    ///
    /// A poisoned entry is no longer servable, so the `vup_store_models`
    /// gauge drops with it; the next insert for the key restores both.
    pub fn poison(&self, vehicle: VehicleId, config: &PipelineConfig) -> bool {
        let key = (vehicle, Self::fingerprint(config));
        let (poisoned, live) = {
            let mut entries = self.entries.write().expect("store lock");
            let poisoned = match entries.get_mut(&key) {
                None => false,
                Some(entry) => {
                    *entry = Arc::new(StoredModel {
                        predictor: entry.predictor.clone(),
                        trained_at: usize::MAX,
                    });
                    true
                }
            };
            (poisoned, servable(&entries))
        };
        if poisoned {
            self.metrics.poisons.inc();
            self.metrics.models.set(live as f64);
        }
        poisoned
    }

    /// Drops every cached model of one vehicle (all configurations),
    /// including their on-disk snapshots on a durable store; returns
    /// how many entries were removed.
    pub fn invalidate(&self, vehicle: VehicleId) -> usize {
        let (dropped, live) = {
            let mut entries = self.entries.write().expect("store lock");
            let mut dropped = Vec::new();
            entries.retain(|&(v, fingerprint), _| {
                if v == vehicle {
                    dropped.push(fingerprint);
                    false
                } else {
                    true
                }
            });
            (dropped, servable(&entries))
        };
        self.metrics.invalidations.add(dropped.len() as u64);
        self.metrics.models.set(live as f64);
        if let Some(snapshots) = &self.persist {
            for fingerprint in &dropped {
                snapshots.remove_entry(vehicle, *fingerprint);
            }
        }
        dropped.len()
    }

    /// Drops every cached model (and, on a durable store, every
    /// snapshot file).
    pub fn clear(&self) {
        let dropped: Vec<(VehicleId, u64)> = {
            let mut entries = self.entries.write().expect("store lock");
            let keys = entries.keys().copied().collect();
            entries.clear();
            keys
        };
        self.metrics.invalidations.add(dropped.len() as u64);
        self.metrics.models.set(0.0);
        if let Some(snapshots) = &self.persist {
            for (vehicle, fingerprint) in &dropped {
                snapshots.remove_entry(*vehicle, *fingerprint);
            }
        }
    }

    /// Number of cached models.
    pub fn len(&self) -> usize {
        self.entries.read().expect("store lock").len()
    }

    /// Whether the store holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_core::{ModelSpec, VehicleView};
    use vup_fleetsim::fleet::{Fleet, FleetConfig};
    use vup_ml::baseline::BaselineSpec;

    fn config() -> PipelineConfig {
        PipelineConfig {
            model: ModelSpec::Baseline(BaselineSpec::LastValue),
            train_window: 60,
            max_lag: 10,
            k: 5,
            retrain_every: 7,
            ..PipelineConfig::default()
        }
    }

    fn cheap_predictor(cfg: &PipelineConfig) -> FittedPredictor {
        let fleet = Fleet::generate(FleetConfig::small(1, 7));
        let view = VehicleView::build(&fleet, VehicleId(0), cfg.scenario);
        FittedPredictor::fit(&view, cfg, 0, 60).unwrap()
    }

    #[test]
    fn get_respects_the_retrain_cadence() {
        let store = ModelStore::new();
        let cfg = config();
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);

        assert!(store.get(VehicleId(0), &cfg, 100).is_some());
        assert!(store.get(VehicleId(0), &cfg, 106).is_some());
        // Window advanced past retrain_every: stale.
        assert!(store.get(VehicleId(0), &cfg, 107).is_none());
        // A "now" before the training point is equally unusable.
        assert!(store.get(VehicleId(0), &cfg, 99).is_none());
        // The stale entry is still visible to peek.
        assert!(store.peek(VehicleId(0), &cfg).is_some());
    }

    #[test]
    fn different_configs_do_not_collide() {
        let store = ModelStore::new();
        let cfg_a = config();
        let mut cfg_b = config();
        cfg_b.train_window = 61;
        assert_ne!(
            ModelStore::fingerprint(&cfg_a),
            ModelStore::fingerprint(&cfg_b)
        );

        store.insert(VehicleId(0), &cfg_a, cheap_predictor(&cfg_a), 100);
        assert!(store.get(VehicleId(0), &cfg_b, 100).is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn invalidate_removes_all_entries_of_a_vehicle() {
        let store = ModelStore::new();
        let cfg_a = config();
        let mut cfg_b = config();
        cfg_b.retrain_every = 14;
        store.insert(VehicleId(0), &cfg_a, cheap_predictor(&cfg_a), 100);
        store.insert(VehicleId(0), &cfg_b, cheap_predictor(&cfg_b), 100);
        store.insert(VehicleId(1), &cfg_a, cheap_predictor(&cfg_a), 100);
        assert_eq!(store.len(), 3);

        assert_eq!(store.invalidate(VehicleId(0)), 2);
        assert_eq!(store.len(), 1);
        assert!(store.get(VehicleId(1), &cfg_a, 100).is_some());
        assert_eq!(store.invalidate(VehicleId(0)), 0);

        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn observed_store_counts_hits_misses_retrains_and_invalidations() {
        let registry = Registry::new();
        let store = ModelStore::observed(&registry);
        let cfg = config();

        assert!(store.get(VehicleId(0), &cfg, 100).is_none()); // absent
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        assert!(store.get(VehicleId(0), &cfg, 100).is_some()); // hit
        assert!(store.get(VehicleId(0), &cfg, 120).is_none()); // stale
        store.invalidate(VehicleId(0));

        let counter =
            |name: &str, labels: &[(&str, &str)]| registry.counter_with(name, labels).get();
        assert_eq!(counter("vup_store_hits_total", &[]), 1);
        assert_eq!(
            counter("vup_store_misses_total", &[("reason", "absent")]),
            1
        );
        assert_eq!(counter("vup_store_misses_total", &[("reason", "stale")]), 1);
        assert_eq!(counter("vup_store_retrains_total", &[]), 1);
        assert_eq!(counter("vup_store_invalidations_total", &[]), 1);
        assert_eq!(registry.gauge("vup_store_models").get(), 0.0);

        store.insert(VehicleId(1), &cfg, cheap_predictor(&cfg), 100);
        assert_eq!(registry.gauge("vup_store_models").get(), 1.0);
        store.clear();
        assert_eq!(counter("vup_store_invalidations_total", &[]), 2);
        assert_eq!(registry.gauge("vup_store_models").get(), 0.0);
    }

    #[test]
    fn lookup_distinguishes_hit_stale_and_absent() {
        let store = ModelStore::new();
        let cfg = config();
        assert!(matches!(
            store.lookup(VehicleId(0), &cfg, 100),
            Lookup::Absent
        ));
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        match store.lookup(VehicleId(0), &cfg, 103) {
            Lookup::Hit(m) => assert_eq!(m.trained_at, 100),
            _ => panic!("expected a hit"),
        }
        match store.lookup(VehicleId(0), &cfg, 150) {
            Lookup::Stale(m) => assert_eq!(m.trained_at, 100, "stale entry is inspectable"),
            _ => panic!("expected stale"),
        }
        // And get() agrees with lookup() at every freshness state.
        assert!(store.get(VehicleId(0), &cfg, 103).is_some());
        assert!(store.get(VehicleId(0), &cfg, 150).is_none());
    }

    #[test]
    fn poison_forces_a_stale_lookup_until_the_next_insert() {
        let registry = Registry::new();
        let store = ModelStore::observed(&registry);
        let cfg = config();
        assert!(!store.poison(VehicleId(0), &cfg), "nothing to poison yet");
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        assert!(store.get(VehicleId(0), &cfg, 100).is_some());

        assert!(store.poison(VehicleId(0), &cfg));
        assert!(
            matches!(store.lookup(VehicleId(0), &cfg, 100), Lookup::Stale(_)),
            "poisoned entry must read as stale"
        );
        assert!(store.peek(VehicleId(0), &cfg).is_some(), "entry survives");

        // A retrain heals it.
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        assert!(store.get(VehicleId(0), &cfg, 100).is_some());
        assert_eq!(registry.counter("vup_store_poisoned_total").get(), 1);
    }

    #[test]
    fn poison_and_invalidate_keep_the_models_gauge_consistent() {
        let registry = Registry::new();
        let store = ModelStore::observed(&registry);
        let cfg = config();
        let gauge = || registry.gauge("vup_store_models").get();

        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        store.insert(VehicleId(1), &cfg, cheap_predictor(&cfg), 100);
        assert_eq!(gauge(), 2.0);

        // Poisoning removes the entry from the servable count …
        assert!(store.poison(VehicleId(0), &cfg));
        assert_eq!(gauge(), 1.0, "poisoned model is not servable");
        assert_eq!(registry.counter("vup_store_poisoned_total").get(), 1);
        assert_eq!(store.len(), 2, "the entry itself survives");

        // … poisoning it again changes nothing further …
        assert!(store.poison(VehicleId(0), &cfg));
        assert_eq!(gauge(), 1.0);

        // … a retrain restores it …
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        assert_eq!(gauge(), 2.0);

        // … and invalidating a *poisoned* entry does not double-drop.
        store.poison(VehicleId(1), &cfg);
        assert_eq!(gauge(), 1.0);
        assert_eq!(store.invalidate(VehicleId(1)), 1);
        assert_eq!(gauge(), 1.0, "gauge already excluded the poisoned entry");
        assert_eq!(registry.counter("vup_store_invalidations_total").get(), 1);
        store.clear();
        assert_eq!(gauge(), 0.0);
    }

    #[test]
    fn open_warm_starts_from_persisted_snapshots() {
        let dir = std::env::temp_dir().join(format!("vup-store-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = config();

        // First process: durable store, two inserts, then "kill".
        {
            let store = ModelStore::open(&dir).unwrap();
            assert!(store.is_durable());
            assert_eq!(store.recovery().unwrap().recovered, 0);
            store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
            store.insert(VehicleId(1), &cfg, cheap_predictor(&cfg), 107);
        }

        // Second process: warm start recovers both entries verbatim.
        let registry = Registry::new();
        let store = ModelStore::open_with(
            Box::new(crate::persist::DiskBackend),
            &dir,
            &registry,
            &vup_obs::Tracer::disabled(),
        )
        .unwrap();
        let stats = store.recovery().unwrap();
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.quarantined, vec![]);
        assert_eq!(stats.generation, 2);
        assert_eq!(registry.counter("vup_store_recovered_total").get(), 2);
        assert_eq!(registry.gauge("vup_store_models").get(), 2.0);
        assert_eq!(store.len(), 2);
        assert_eq!(store.peek(VehicleId(0), &cfg).unwrap().trained_at, 100);
        assert_eq!(store.peek(VehicleId(1), &cfg).unwrap().trained_at, 107);
        assert!(store.get(VehicleId(1), &cfg, 108).is_some());

        // Invalidation also removes the snapshot from disk.
        store.invalidate(VehicleId(0));
        let reopened = ModelStore::open(&dir).unwrap();
        assert_eq!(reopened.recovery().unwrap().recovered, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_stores_are_not_durable() {
        let store = ModelStore::new();
        assert!(!store.is_durable());
        assert!(store.recovery().is_none());
    }

    #[test]
    fn insert_replaces_and_fingerprint_is_stable() {
        let store = ModelStore::new();
        let cfg = config();
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 100);
        store.insert(VehicleId(0), &cfg, cheap_predictor(&cfg), 107);
        assert_eq!(store.len(), 1);
        assert_eq!(store.peek(VehicleId(0), &cfg).unwrap().trained_at, 107);
        // Equal configs fingerprint equally.
        assert_eq!(
            ModelStore::fingerprint(&cfg),
            ModelStore::fingerprint(&config())
        );
    }
}
