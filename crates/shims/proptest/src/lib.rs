//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Tests written against the real crate keep compiling unchanged:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! range / tuple / `collection::vec` / `prop_map` strategies, `any::<T>()`,
//! `Just`, `prop_oneof!`, and `ProptestConfig::with_cases`.
//!
//! Unlike the real crate this shim does not shrink failing inputs; it
//! reports the failing case and the deterministic per-test seed instead.
//! Each test derives its seed from its module path and name, so runs are
//! reproducible across machines and invocations.

pub mod strategy {
    //! Value-generation strategies.

    pub use rand::rngs::StdRng;
    use rand::RngExt;

    /// A reproducible source of generated values.
    ///
    /// The shim collapses the real crate's `ValueTree` machinery into a
    /// single `generate` call: no shrinking, just deterministic sampling.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy, used by [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: ::std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Builds a strategy covering `T`'s canonical domain (`any::<bool>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: ::std::marker::PhantomData,
        }
    }

    /// Uniform choice among several boxed strategies; see [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics when `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{StdRng, Strategy};
    use rand::RngExt;

    /// Length specification accepted by [`vec`]: a fixed `usize` or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range for collection::vec");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use crate::strategy::{StdRng, Strategy};
    use rand::RngExt;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// Generates `Some` from `inner` about 3/4 of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Per-test configuration and case outcomes.

    /// How a single generated case ended.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!`; try another input.
        Reject,
        /// An assertion failed; the message describes the failure.
        Fail(String),
    }

    /// Result alias used by generated test bodies.
    pub type TestCaseResult = ::std::result::Result<(), TestCaseError>;

    /// Runner configuration; only the case count is tunable here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Internal support for the macros; not part of the public API.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// FNV-1a over the test's full path; gives each test a stable seed.
    pub const fn seed_from_name(name: &str) -> u64 {
        let bytes = name.as_bytes();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            const SEED: u64 =
                $crate::__rt::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(SEED);
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(100).max(1000),
                    "proptest '{}': too many rejected cases ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    config.cases,
                );
                $(let $p = $crate::strategy::Strategy::generate(&$s, &mut rng);)*
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {} (seed {SEED}): {}",
                            stringify!($name),
                            passed + 1,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Skips the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right,
            )));
        }
    }};
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -4.0_f64..4.0, n in 1_usize..50) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..50).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size(mut xs in crate::collection::vec(0.0_f64..1.0, 3..10)) {
            prop_assert!((3..10).contains(&xs.len()));
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn prop_map_and_tuples_compose(
            pair in (1_u32..5, 10_u32..20).prop_map(|(a, b)| a + b),
            flag in any::<bool>(),
        ) {
            prop_assert!((11..25).contains(&pair));
            prop_assert!(flag || !flag);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0_u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_picks_only_listed_options(v in prop_oneof![Just(1_u8), Just(3), Just(5)]) {
            prop_assert!(v == 1 || v == 3 || v == 5);
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = crate::__rt::seed_from_name("mod::test_a");
        let b = crate::__rt::seed_from_name("mod::test_b");
        assert_eq!(a, crate::__rt::seed_from_name("mod::test_a"));
        assert_ne!(a, b);
    }

    #[test]
    fn generated_values_are_stable_across_runs() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let s = crate::collection::vec(-1.0_f64..1.0, 5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
