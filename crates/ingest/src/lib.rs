//! Streaming telemetry ingest for the vehicle-usage prediction stack.
//!
//! The batch pipeline (fleetsim → dataprep → core → serve) regenerates
//! every vehicle's history on demand; a deployed fleet instead streams
//! 10-minute CAN reports continuously. This crate is that streaming
//! front end:
//!
//! - [`log`] — a durable append-only **commit log**: CRC-framed,
//!   length-prefixed records in offset-indexed segments, written
//!   through `vup-serve`'s [`vup_serve::StorageBackend`] seam so the
//!   seeded disk-chaos harness applies unchanged. Crash recovery
//!   truncates to the longest valid prefix and quarantines damage —
//!   never deletes it.
//! - [`aggregate`] — **incremental daily aggregation**: raw reports
//!   fold into per-vehicle daily records as the log's watermark
//!   advances, one `aggregate_day` per (vehicle, day), no re-reading
//!   of history.
//! - [`views`] — serves predictions **from the ingested data** by
//!   adapting the aggregated histories to `vup-serve`'s `ViewSource`.
//! - [`scheduler`] — **drift-triggered retraining**: sealed slots feed
//!   forecast residuals to the fleet monitor, and a CUSUM or
//!   degrade-ratio firing enqueues that vehicle for retraining
//!   immediately instead of waiting out the fixed cadence.
//! - [`replay`] — **deterministic replay**: folding any log prefix
//!   through the stack reproduces aggregates, retrain decisions,
//!   serve journal and model bytes bit-for-bit, at any thread count,
//!   observability on or off.
//! - [`stream`] — simulated telemetry streams (with optional usage
//!   shifts to provoke drift) for tests, the CLI and CI smoke runs.

pub mod aggregate;
pub mod log;
pub mod replay;
pub mod scheduler;
pub mod stream;
pub mod views;

pub use aggregate::{FleetAggregator, SealedSlot, SharedHistories};
pub use log::{
    CommitLog, IndexEntry, LogDefect, LogOptions, LogRecord, LogRecovery, QuarantinedLogFile,
    SegmentIndex, INDEX_MAGIC, LOG_VERSION, SEGMENT_MAGIC,
};
pub use replay::{replay, ModelDigest, ReplayConfig, ReplayReport};
pub use scheduler::{RetrainDecision, RetrainReason, RetrainScheduler, SchedulerConfig};
pub use stream::{ingest_stream, IngestStats, StreamConfig, UsageShift};
pub use views::AggregatedViews;
