//! Allocation discipline of the serving hot path (the speed-pass PR's
//! test harness).
//!
//! A counting global allocator wraps `System` so tests can meter how
//! many heap allocations one `serve_batch` call performs. The contract
//! under test:
//!
//! - after the first fit episode per vehicle, further retrain episodes
//!   perform **zero design-matrix (re)allocations** — the per-vehicle
//!   [`TrainArena`]s reach steady state and their `grows` counter stays
//!   flat while fits keep happening;
//! - a fully warm cache-hit batch allocates strictly less than the cold
//!   batch that populated it, and identically from batch to batch;
//! - arena-built datasets are *exactly* (bit-for-bit) what the
//!   per-record builder produces, across arbitrary window slides
//!   (proptest).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use vehicle_usage_prediction::core::window::{build_dataset, build_dataset_arena};
use vehicle_usage_prediction::ml::arena::fingerprint;
use vehicle_usage_prediction::ml::TrainArena;
use vehicle_usage_prediction::prelude::*;
use vehicle_usage_prediction::serve::PredictionService;

use proptest::prelude::*;

/// `System`, with a relaxed counter on every allocation entry point.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation counts are process-global, so the metered test and the
/// (allocation-heavy) proptest must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 7,
        ..PipelineConfig::default()
    }
}

fn requests(ids: &[u32], horizon: usize) -> Vec<BatchRequest> {
    ids.iter()
        .map(|&id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon,
        })
        .collect()
}

#[test]
fn warm_store_fits_do_not_reallocate_design_matrices() {
    let _guard = lock();
    let fleet = Fleet::generate(FleetConfig::small(8, 4242));
    let config = fast_config();
    let view_len =
        vehicle_usage_prediction::core::VehicleView::build(&fleet, VehicleId(0), config.scenario)
            .len();
    // Enough room for several stale-model retrain rounds.
    assert!(
        view_len >= config.train_window + 60,
        "series too short: {view_len}"
    );
    let service = PredictionService::new(&fleet, config.clone(), 1).unwrap();
    let reqs = requests(&[0, 1, 2, 3], 3);

    // Round 0: cold — every vehicle fits once, arenas grow from empty.
    let first_as_of = config.train_window + 10;
    service.serve_batch(&reqs, Some(first_as_of));
    let after_first = service.scratch_stats();
    assert_eq!(after_first.builds, 4, "one fit per vehicle expected");
    assert!(after_first.grows > 0, "first episodes must allocate");

    // Rounds 1..6: each advances `as_of` by exactly `retrain_every`, so
    // every vehicle's cached model is stale and refits. The window size
    // and feature width are unchanged — the arenas must not grow again.
    for round in 1..=5u64 {
        let as_of = first_as_of + round as usize * config.retrain_every;
        let outcomes = service.serve_batch(&reqs, Some(as_of));
        assert!(
            outcomes.iter().all(|o| o.forecast().is_some()),
            "round {round} failed"
        );
        let stats = service.scratch_stats();
        assert_eq!(
            stats.builds,
            4 * (round + 1),
            "round {round}: fits should keep running"
        );
        assert_eq!(
            stats.grows, after_first.grows,
            "round {round}: a warm fit episode (re)allocated design-matrix storage"
        );
    }
}

#[test]
fn warm_cache_hit_batches_allocate_less_than_cold_and_steadily() {
    let _guard = lock();
    let fleet = Fleet::generate(FleetConfig::small(8, 99));
    let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
    let reqs = requests(&[0, 1, 2, 3, 4], 3);

    let before_cold = allocs();
    service.serve_batch(&reqs, None);
    let cold = allocs() - before_cold;

    // First warm batch still touches lazily initialized state; measure
    // from the second on.
    service.serve_batch(&reqs, None);
    let before_warm2 = allocs();
    service.serve_batch(&reqs, None);
    let warm2 = allocs() - before_warm2;
    let before_warm3 = allocs();
    service.serve_batch(&reqs, None);
    let warm3 = allocs() - before_warm3;

    assert_eq!(
        service.scratch_stats().builds,
        5,
        "warm batches must not refit"
    );
    assert!(
        warm2 * 2 < cold,
        "a warm cache-hit batch should allocate far less than the cold batch \
         (cold {cold}, warm {warm2})"
    );
    assert_eq!(
        warm2, warm3,
        "consecutive fully-warm batches must have identical allocation counts"
    );
}

proptest! {
    /// Arena reuse is exact: over an arbitrary sequence of window
    /// slides (forward, backward, widening, shrinking), the arena-built
    /// dataset is bit-for-bit the per-record-built one.
    #[test]
    fn prop_arena_built_matrix_equals_per_record_build(
        lags in proptest::collection::vec(1usize..=30, 1..8),
        starts in proptest::collection::vec(30usize..260, 1..10),
        width in 35usize..90,
    ) {
        let _guard = lock();
        let fleet = Fleet::generate(FleetConfig::small(3, 777));
        let config = fast_config();
        let view = vehicle_usage_prediction::core::VehicleView::build(
            &fleet, VehicleId(1), config.scenario,
        );
        let features = &config.features;
        let key = fingerprint(lags.iter().map(|&l| l as u64));
        let max_lag = lags.iter().copied().max().unwrap();
        let mut arena = TrainArena::new();
        for &start in &starts {
            let from = start.max(max_lag);
            let to = (from + width).min(view.len());
            prop_assume!(from < to);
            let direct = build_dataset(&view, from, to, &lags, features).unwrap();
            let pooled =
                build_dataset_arena(&mut arena, key, &view, from, to, &lags, features).unwrap();
            prop_assert_eq!(pooled.x().shape(), direct.x().shape());
            prop_assert_eq!(pooled.x().as_slice(), direct.x().as_slice());
            prop_assert_eq!(pooled.y(), direct.y());
            arena.reclaim(pooled);
        }
    }
}
