//! The common estimator interface and the algorithm-selection enum.

use serde::{Deserialize, Serialize};
use vup_linalg::Matrix;

use crate::forest::{ForestParams, RandomForest};
use crate::gbm::{GbmParams, GradientBoosting, Loss};
use crate::lasso::{Lasso, LassoParams};
use crate::linear::LinearRegression;
use crate::svr::{Svr, SvrParams};
use crate::tree::RegressionTree;
use crate::{Dataset, Result};

/// A supervised regression estimator with the fit/predict protocol.
///
/// All of the paper's learned models (LR, Lasso, SVR, GB) implement this
/// trait; `vup-core` trains them per vehicle through [`RegressorSpec`].
/// Implementors are plain-data values: cloneable, shareable across
/// threads, and convertible to a serializable [`SavedModel`], which is
/// what lets `vup-serve` cache fitted models per vehicle.
pub trait Regressor {
    /// Fits the model on a validated dataset.
    fn fit(&mut self, data: &Dataset) -> Result<()>;

    /// Predicts the target for a single feature row.
    fn predict_row(&self, row: &[f64]) -> Result<f64>;

    /// Predicts targets for every row of a feature matrix.
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        x.iter_rows().map(|row| self.predict_row(row)).collect()
    }

    /// Short human-readable name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Clones the estimator behind a fresh trait object.
    fn clone_box(&self) -> Box<dyn Regressor + Send + Sync>;

    /// Snapshots the estimator (parameters plus any fit state) into the
    /// serializable [`SavedModel`] envelope.
    fn save(&self) -> SavedModel;
}

impl Clone for Box<dyn Regressor + Send + Sync> {
    fn clone(&self) -> Self {
        self.as_ref().clone_box()
    }
}

/// A serializable snapshot of any estimator, fitted or not.
///
/// `model.save()` erases which concrete type a `Box<dyn Regressor>` holds;
/// this enum records it again so [`SavedModel::restore`] can rebuild the
/// exact estimator — no downcasting, and the JSON stays self-describing
/// (externally tagged with the algorithm name).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SavedModel {
    /// Ordinary least squares.
    Linear(LinearRegression),
    /// L1-regularized least squares.
    Lasso(Lasso),
    /// ε-insensitive support-vector regression.
    Svr(Svr),
    /// Gradient-boosted regression trees.
    Gbm(GradientBoosting),
    /// Random-forest regression.
    Forest(RandomForest),
    /// A single CART regression tree.
    Tree(RegressionTree),
}

impl SavedModel {
    /// Rebuilds the concrete estimator behind a trait object, preserving
    /// any fit state captured by [`Regressor::save`].
    pub fn restore(self) -> Box<dyn Regressor + Send + Sync> {
        match self {
            SavedModel::Linear(m) => Box::new(m),
            SavedModel::Lasso(m) => Box::new(m),
            SavedModel::Svr(m) => Box::new(m),
            SavedModel::Gbm(m) => Box::new(m),
            SavedModel::Forest(m) => Box::new(m),
            SavedModel::Tree(m) => Box::new(m),
        }
    }
}

/// Configuration for one of the learned regression algorithms.
///
/// The default parameter values are the grid-search winners reported in the
/// paper (§4.2): Lasso `α = 0.1`; SVR `kernel = rbf, C = 10, ε = 0.1,
/// γ = 1`; GB `learning_rate = 0.1, n_estimators = 100, max_depth = 1,
/// loss = lad`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegressorSpec {
    /// Ordinary least squares.
    Linear,
    /// L1-regularized least squares.
    Lasso(LassoParams),
    /// ε-insensitive support-vector regression.
    Svr(SvrParams),
    /// Gradient-boosted regression trees.
    Gbm(GbmParams),
    /// Random-forest regression (related-work comparator, not part of the
    /// paper's §4.2 suite).
    Forest(ForestParams),
}

impl RegressorSpec {
    /// The paper's four learned algorithms at their §4.2 settings.
    pub fn paper_suite() -> Vec<RegressorSpec> {
        vec![
            RegressorSpec::Linear,
            RegressorSpec::lasso_paper(),
            RegressorSpec::svr_paper(),
            RegressorSpec::gbm_paper(),
        ]
    }

    /// Lasso with the paper's `α = 0.1`.
    pub fn lasso_paper() -> RegressorSpec {
        RegressorSpec::Lasso(LassoParams::default())
    }

    /// SVR with the paper's `rbf, C = 10, ε = 0.1, γ = 1`.
    pub fn svr_paper() -> RegressorSpec {
        RegressorSpec::Svr(SvrParams::default())
    }

    /// Gradient boosting with the paper's
    /// `learning_rate = 0.1, n_estimators = 100, max_depth = 1, loss = lad`.
    pub fn gbm_paper() -> RegressorSpec {
        RegressorSpec::Gbm(GbmParams::default())
    }

    /// Instantiates an unfitted estimator for this spec.
    pub fn build(&self) -> Box<dyn Regressor + Send + Sync> {
        match self {
            RegressorSpec::Linear => Box::new(LinearRegression::new()),
            RegressorSpec::Lasso(p) => Box::new(Lasso::new(p.clone())),
            RegressorSpec::Svr(p) => Box::new(Svr::new(p.clone())),
            RegressorSpec::Gbm(p) => Box::new(GradientBoosting::new(p.clone())),
            RegressorSpec::Forest(p) => Box::new(RandomForest::new(p.clone())),
        }
    }

    /// Short display name matching the paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            RegressorSpec::Linear => "LR",
            RegressorSpec::Lasso(_) => "Lasso",
            RegressorSpec::Svr(_) => "SVR",
            RegressorSpec::Gbm(GbmParams {
                loss: Loss::Lad, ..
            }) => "GB",
            RegressorSpec::Gbm(_) => "GB-ls",
            RegressorSpec::Forest(_) => "RF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_contains_all_four_algorithms() {
        let suite = RegressorSpec::paper_suite();
        let labels: Vec<&str> = suite.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["LR", "Lasso", "SVR", "GB"]);
    }

    #[test]
    fn build_produces_named_estimators() {
        for spec in RegressorSpec::paper_suite() {
            let model = spec.build();
            assert!(!model.name().is_empty());
        }
    }

    #[test]
    fn forest_builds_with_its_label() {
        let spec = RegressorSpec::Forest(ForestParams::default());
        assert_eq!(spec.label(), "RF");
        assert_eq!(spec.build().name(), "RF");
        // RF is a related-work comparator, not part of the paper suite.
        assert!(!RegressorSpec::paper_suite()
            .iter()
            .any(|s| s.label() == "RF"));
    }

    #[test]
    fn fitted_models_round_trip_through_json() {
        use vup_linalg::Matrix;

        // A small but non-degenerate training set: y ≈ 2·x0 − x1 + 1.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.5, (i % 5) as f64])
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&refs).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + 2.0 * r[0] - r[1]).collect();
        let data = crate::Dataset::new(x, y).unwrap();
        let probe = [3.25, 2.0];

        let mut specs = RegressorSpec::paper_suite();
        specs.push(RegressorSpec::Forest(ForestParams {
            n_trees: 5,
            ..ForestParams::default()
        }));
        for spec in specs {
            let mut model = spec.build();
            model.fit(&data).unwrap();
            let expected = model.predict_row(&probe).unwrap();

            let json = serde_json::to_string(&model.save()).unwrap();
            let saved: SavedModel = serde_json::from_str(&json).unwrap();
            let restored = saved.restore();
            let actual = restored.predict_row(&probe).unwrap();
            assert_eq!(
                actual.to_bits(),
                expected.to_bits(),
                "{}: {actual} vs {expected}",
                restored.name()
            );
            assert_eq!(restored.name(), model.name());
        }
    }

    #[test]
    fn cloned_boxes_predict_identically() {
        use vup_linalg::Matrix;

        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]).unwrap();
        let data = crate::Dataset::new(x, vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let mut model = RegressorSpec::Linear.build();
        model.fit(&data).unwrap();
        let copy = model.clone();
        assert_eq!(
            copy.predict_row(&[4.0]).unwrap().to_bits(),
            model.predict_row(&[4.0]).unwrap().to_bits()
        );
    }

    #[test]
    fn saving_an_unfitted_model_round_trips_too() {
        let json = serde_json::to_string(&RegressorSpec::svr_paper().build().save()).unwrap();
        let saved: SavedModel = serde_json::from_str(&json).unwrap();
        let restored = saved.restore();
        // Still unfitted: predicting must fail cleanly, not panic.
        assert!(restored.predict_row(&[0.0]).is_err());
    }

    #[test]
    fn gbm_ls_gets_distinct_label() {
        let p = GbmParams {
            loss: Loss::LeastSquares,
            ..GbmParams::default()
        };
        assert_eq!(RegressorSpec::Gbm(p).label(), "GB-ls");
    }
}
