//! Online batch serving of per-vehicle utilization predictions.
//!
//! The offline side of this repository evaluates the paper's methodology
//! ([`vup_core::fleet_eval`]); this crate is the online counterpart: a
//! [`PredictionService`] that answers batches of `(vehicle, horizon)`
//! requests, caching one fitted model per vehicle in a [`ModelStore`] and
//! retraining only when the vehicle's series has advanced past the
//! configured `retrain_every` cadence. Work is dispatched on the same
//! lock-free executor as offline evaluation ([`vup_core::executor`]), so
//! the serving hot path takes no mutex.
//!
//! The serve path is resilient ([`resilience`]): per-vehicle fit episodes
//! retry with deterministic virtual-time backoff under a per-request
//! deadline budget, a per-vehicle circuit breaker sheds repeatedly
//! failing primaries, and a serde-saved baseline fallback serves
//! [`ServePath::Degraded`] forecasts instead of failing. A seeded fault
//! injector ([`faults`]) makes all of it testable: chaos runs are
//! reproducible bit for bit at every thread count.

#![warn(missing_docs)]

pub mod faults;
pub mod resilience;
pub mod service;
pub mod store;

pub use faults::{FaultInjector, FaultPlan, FitFault};
pub use resilience::{
    BreakerConfig, BreakerDecision, BreakerState, BreakerTransition, CircuitBreaker,
    ResilienceConfig, RetryPolicy,
};
pub use service::{
    BatchRequest, Forecast, PredictionService, Provenance, ServeJournal, ServeOutcome, ServePath,
    StageNanos,
};
pub use store::{Lookup, ModelStore, StoredModel};
