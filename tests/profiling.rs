//! Determinism contract of the continuous-profiling layer.
//!
//! The pinned invariant: a profile's *shape* — the set of stack paths,
//! their invocation counts and byte weights, and the per-stage rollup —
//! is bit-identical for the same workload at any thread count and with
//! the metrics registry live or disabled. Timings are explicitly
//! outside the contract; the shape exports carry none. And with the
//! tracer disabled, the whole layer stays a clock-free no-op.

use std::path::PathBuf;

use vehicle_usage_prediction::obs::{Profile, ProfileWeight};
use vehicle_usage_prediction::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vup-profiling-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_pipeline() -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::NextDay,
        train_window: 40,
        max_lag: 10,
        k: 5,
        model: ModelSpec::Baseline(BaselineSpec::LastValue),
        retrain_every: 5,
        ..PipelineConfig::default()
    }
}

/// The deterministic face of a profile: everything the contract covers.
fn shape(profile: &Profile) -> (String, String, String) {
    (
        profile.to_shape_json(),
        profile.to_collapsed(ProfileWeight::Count),
        profile.to_collapsed(ProfileWeight::Bytes),
    )
}

/// Runs two serve batches over a small fleet and profiles them.
fn serve_profile(threads: usize, live_registry: bool) -> Profile {
    let fleet = Fleet::generate(FleetConfig::small(8, 11));
    let registry = if live_registry {
        Registry::new()
    } else {
        Registry::disabled()
    };
    let tracer = Tracer::new();
    let service = PredictionService::new_observed(&fleet, small_pipeline(), threads, &registry)
        .unwrap()
        .with_tracer(tracer.clone());
    let requests: Vec<BatchRequest> = (0..8)
        .map(|id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon: 2,
        })
        .collect();
    service.serve_batch(&requests, None);
    service.serve_batch(&requests, None);
    Profile::from_snapshot(&tracer.snapshot())
}

#[test]
fn serve_batch_profile_shape_is_invariant_across_threads_and_registry() {
    let baseline = serve_profile(1, false);
    assert!(!baseline.truncated);
    assert!(baseline.spans > 0);
    // The canonical stages this workload exercises, with real weights.
    assert_eq!(baseline.stage("view_build").unwrap().count, 16);
    assert!(baseline.stage("view_build").unwrap().bytes > 0);
    assert_eq!(baseline.stage("predict").unwrap().count, 16);
    assert_eq!(
        baseline.stage("fit").unwrap().count,
        8,
        "second batch hits the cache"
    );
    // The elided per-worker frames never appear as stack nodes.
    assert!(baseline
        .nodes
        .iter()
        .all(|n| !n.stack.contains("executor_worker")));

    let want = shape(&baseline);
    for threads in [1, 2, 4] {
        for live_registry in [false, true] {
            let profile = serve_profile(threads, live_registry);
            assert_eq!(
                shape(&profile),
                want,
                "shape diverged at threads={threads} live_registry={live_registry}"
            );
        }
    }
}

/// Streams a small fleet into a commit log and profiles its replay.
fn replay_profile(dir: &std::path::Path, threads: usize) -> Profile {
    let fleet = Fleet::generate(FleetConfig::small(3, 2024));
    let tracer = Tracer::new();
    let (log, _) = CommitLog::open(
        Box::new(DiskBackend),
        dir,
        LogOptions::default(),
        &Registry::disabled(),
        &tracer,
    )
    .unwrap();
    let records = log.records().unwrap();
    assert!(!records.is_empty());
    let config = ReplayConfig::new(small_pipeline(), MonitorConfig::default(), threads);
    replay(&records, &fleet, &config, &Registry::disabled(), &tracer).unwrap();
    Profile::from_snapshot(&tracer.snapshot())
}

#[test]
fn replay_profile_shape_is_invariant_across_threads() {
    let fleet = Fleet::generate(FleetConfig::small(3, 2024));
    let dir = temp_dir("replay");
    {
        let (mut log, _) = CommitLog::open(
            Box::new(DiskBackend),
            &dir,
            LogOptions::default(),
            &Registry::disabled(),
            &Tracer::disabled(),
        )
        .unwrap();
        let stream = StreamConfig {
            start_offset: 0,
            days: 60,
            dropout: vup_fleetsim::dropout::DropoutConfig::none(),
            shift: None,
        };
        ingest_stream(&mut log, &fleet, &stream).unwrap();
    }

    let baseline = replay_profile(&dir, 1);
    assert!(!baseline.truncated);
    // Replay exercises the streaming stages: log recovery (persist) and
    // sealing, both with byte weights from real payload sizes.
    assert!(baseline.stage("persist").unwrap().bytes > 0);
    assert!(baseline.stage("ingest_seal").unwrap().count > 0);
    assert!(baseline.stage("ingest_seal").unwrap().bytes > 0);

    let want = shape(&baseline);
    for threads in [2, 4] {
        assert_eq!(
            shape(&replay_profile(&dir, threads)),
            want,
            "replay shape diverged at threads={threads}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_tracer_keeps_the_whole_layer_a_no_op() {
    let fleet = Fleet::generate(FleetConfig::small(4, 11));
    let tracer = Tracer::disabled();
    let service =
        PredictionService::new_observed(&fleet, small_pipeline(), 2, &Registry::disabled())
            .unwrap()
            .with_tracer(tracer.clone());
    let requests: Vec<BatchRequest> = (0..4)
        .map(|id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon: 2,
        })
        .collect();
    service.serve_batch(&requests, None);
    let snapshot = tracer.snapshot();
    assert!(snapshot.events.is_empty());
    assert_eq!(snapshot.dropped, 0);
    let profile = Profile::from_snapshot(&snapshot);
    assert_eq!(profile.spans, 0);
    assert!(profile.nodes.is_empty());
    assert!(profile.stages.is_empty());
    assert!(!profile.truncated);
    assert_eq!(profile.to_collapsed(ProfileWeight::Count), "");

    // Publishing trace health off a disabled tracer still registers the
    // metrics (at zero) so dashboards keep their series.
    let registry = Registry::new();
    tracer.publish_metrics(&registry);
    let text = registry.snapshot().to_prometheus_text();
    assert!(text.contains("vup_trace_dropped_total 0"));
    assert!(text.contains("vup_trace_ring_capacity 0"));
}

#[test]
fn saturated_ring_truncates_the_profile_and_counts_drops() {
    let tracer = Tracer::with_capacity(4);
    let service_like_load = 16;
    for _ in 0..service_like_load {
        tracer.root("view_build").end();
    }
    let profile = Profile::from_snapshot(&tracer.snapshot());
    assert!(profile.truncated);
    assert_eq!(profile.dropped, service_like_load - 4);
    // The drop surfaces through the metrics registry too — and only
    // once, no matter how often it is published.
    let registry = Registry::new();
    tracer.publish_metrics(&registry);
    tracer.publish_metrics(&registry);
    let samples = vehicle_usage_prediction::obs::parse_prometheus_text(
        &registry.snapshot().to_prometheus_text(),
    )
    .unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap()
    };
    assert_eq!(
        value("vup_trace_dropped_total"),
        (service_like_load - 4) as f64
    );
    assert_eq!(value("vup_trace_ring_high_watermark"), 4.0);
    assert_eq!(value("vup_trace_ring_capacity"), 4.0);
}
