//! Gradient boosting over regression trees (Friedman's TreeBoost).
//!
//! The paper's configuration is `learning_rate = 0.1, n_estimators = 100,
//! max_depth = 1, loss = lad` — an ensemble of decision stumps minimizing
//! absolute deviation. For LAD the algorithm is Friedman's LAD TreeBoost:
//! the stage-`m` tree structure is grown on the *sign* of the residuals and
//! each leaf's value is the *median* of the raw residuals it holds, which
//! is the exact line-search step for L1 loss. Least-squares boosting is
//! provided for comparison.

use serde::{Deserialize, Serialize};

use crate::tree::{RegressionTree, TreeParams};
use crate::{Dataset, MlError, Regressor, Result};

/// Boosting loss function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Least absolute deviation (the paper's `loss = lad`).
    Lad,
    /// Squared error.
    LeastSquares,
}

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbmParams {
    /// Number of boosting stages; the paper uses `100`.
    pub n_estimators: usize,
    /// Shrinkage applied to each stage; the paper uses `0.1`.
    pub learning_rate: f64,
    /// Depth of each base tree; the paper uses `1` (stumps).
    pub max_depth: usize,
    /// Minimum samples per leaf in the base trees.
    pub min_samples_leaf: usize,
    /// Loss function; the paper uses LAD.
    pub loss: Loss,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_estimators: 100,
            learning_rate: 0.1,
            max_depth: 1,
            min_samples_leaf: 1,
            loss: Loss::Lad,
        }
    }
}

impl GbmParams {
    fn validate(&self) -> Result<()> {
        if self.n_estimators == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_estimators",
                reason: "must be positive".into(),
            });
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: format!("must be in (0, 1], got {}", self.learning_rate),
            });
        }
        if self.max_depth == 0 {
            return Err(MlError::InvalidParameter {
                name: "max_depth",
                reason: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Gradient-boosted regression trees (the paper's "GB").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    params: GbmParams,
    fitted: Option<FittedGbm>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FittedGbm {
    initial: f64,
    trees: Vec<RegressionTree>,
    n_features: usize,
    /// Training loss after each stage (for monotonicity diagnostics).
    stage_losses: Vec<f64>,
}

fn median_of(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    values.sort_by(|a, b| a.partial_cmp(b).expect("non-finite residual"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

impl GradientBoosting {
    /// Creates an unfitted ensemble with the given hyperparameters.
    pub fn new(params: GbmParams) -> Self {
        GradientBoosting {
            params,
            fitted: None,
        }
    }

    /// Creates the paper's configuration
    /// (`lr = 0.1, 100 stumps, LAD loss`).
    pub fn paper() -> Self {
        GradientBoosting::new(GbmParams::default())
    }

    /// Number of fitted boosting stages.
    pub fn n_stages(&self) -> Option<usize> {
        self.fitted.as_ref().map(|f| f.trees.len())
    }

    /// Training loss recorded after each stage.
    pub fn stage_losses(&self) -> Option<&[f64]> {
        self.fitted.as_ref().map(|f| f.stage_losses.as_slice())
    }

    /// Per-feature importances: summed split gains over all stages,
    /// normalized to sum to 1 (all-zero when no stage found a split).
    pub fn feature_importances(&self) -> Option<Vec<f64>> {
        let f = self.fitted.as_ref()?;
        let mut out = vec![0.0; f.n_features];
        for tree in &f.trees {
            for (o, g) in out.iter_mut().zip(tree.feature_importances(f.n_features)) {
                *o += g;
            }
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for v in &mut out {
                *v /= total;
            }
        }
        Some(out)
    }

    fn loss_of(&self, residuals: &[f64]) -> f64 {
        match self.params.loss {
            Loss::Lad => residuals.iter().map(|r| r.abs()).sum::<f64>() / residuals.len() as f64,
            Loss::LeastSquares => {
                residuals.iter().map(|r| r * r).sum::<f64>() / residuals.len() as f64
            }
        }
    }
}

impl Regressor for GradientBoosting {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        self.params.validate()?;
        if data.len() < 2 {
            return Err(MlError::NotEnoughSamples {
                required: 2,
                actual: data.len(),
            });
        }
        let x = data.x();
        let y = data.y();
        let n = y.len();

        let initial = match self.params.loss {
            Loss::Lad => median_of(y.to_vec()),
            Loss::LeastSquares => y.iter().sum::<f64>() / n as f64,
        };
        let mut current: Vec<f64> = vec![initial; n];
        let mut residuals: Vec<f64> = y.iter().zip(&current).map(|(&t, &f)| t - f).collect();

        let tree_params = TreeParams {
            max_depth: self.params.max_depth,
            min_samples_leaf: self.params.min_samples_leaf,
        };
        let mut trees = Vec::with_capacity(self.params.n_estimators);
        let mut stage_losses = Vec::with_capacity(self.params.n_estimators);

        for _ in 0..self.params.n_estimators {
            // Pseudo-residuals: negative gradient of the loss at F.
            let pseudo: Vec<f64> = match self.params.loss {
                Loss::Lad => residuals.iter().map(|&r| r.signum()).collect(),
                Loss::LeastSquares => residuals.clone(),
            };
            let mut tree = RegressionTree::new(tree_params.clone());
            tree.fit_structure(x, &pseudo)?;
            // Exact leaf-wise line search: LAD -> median of raw residuals,
            // LS -> mean of raw residuals (equal to the structural value
            // since pseudo == residuals, but recomputed for clarity).
            match self.params.loss {
                Loss::Lad => tree.override_leaf_values(|samples| {
                    median_of(samples.iter().map(|&i| residuals[i]).collect())
                }),
                Loss::LeastSquares => tree.override_leaf_values(|samples| {
                    samples.iter().map(|&i| residuals[i]).sum::<f64>() / samples.len() as f64
                }),
            }
            let lr = self.params.learning_rate;
            for (i, (f, r)) in current.iter_mut().zip(&mut residuals).enumerate() {
                let step = lr * tree.predict_value(x.row(i))?;
                *f += step;
                *r -= step;
            }
            stage_losses.push(self.loss_of(&residuals));
            trees.push(tree);
        }

        self.fitted = Some(FittedGbm {
            initial,
            trees,
            n_features: x.cols(),
            stage_losses,
        });
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> Result<f64> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != f.n_features {
            return Err(MlError::FeatureMismatch {
                expected: f.n_features,
                actual: row.len(),
            });
        }
        let mut acc = f.initial;
        for tree in &f.trees {
            acc += self.params.learning_rate * tree.predict_value(row)?;
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "GB"
    }

    fn clone_box(&self) -> Box<dyn Regressor + Send + Sync> {
        Box::new(self.clone())
    }

    fn save(&self) -> crate::SavedModel {
        crate::SavedModel::Gbm(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_linalg::Matrix;

    fn dataset_1d(xs: &[f64], y: &[f64]) -> Dataset {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs).unwrap(), y.to_vec()).unwrap()
    }

    #[test]
    fn median_helper() {
        assert_eq!(median_of(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_of(vec![7.0]), 7.0);
    }

    #[test]
    fn fits_step_function_with_stumps() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 10.0 { 1.0 } else { 6.0 })
            .collect();
        let mut gb = GradientBoosting::paper();
        gb.fit(&dataset_1d(&xs, &y)).unwrap();
        assert!((gb.predict_row(&[3.0]).unwrap() - 1.0).abs() < 0.2);
        assert!((gb.predict_row(&[15.0]).unwrap() - 6.0).abs() < 0.2);
    }

    #[test]
    fn lad_training_loss_is_nonincreasing() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 / 4.0).collect();
        let y: Vec<f64> = xs.iter().map(|&x| x.sin() * 3.0 + x).collect();
        let mut gb = GradientBoosting::paper();
        gb.fit(&dataset_1d(&xs, &y)).unwrap();
        let losses = gb.stage_losses().unwrap();
        for w in losses.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {w:?}");
        }
        // And it actually learned something.
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn least_squares_variant_converges_on_linear_data() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 0.5 * x).collect();
        let mut gb = GradientBoosting::new(GbmParams {
            loss: Loss::LeastSquares,
            n_estimators: 300,
            max_depth: 2,
            ..GbmParams::default()
        });
        gb.fit(&dataset_1d(&xs, &y)).unwrap();
        // Interior points should be close; trees can't extrapolate.
        assert!((gb.predict_row(&[15.0]).unwrap() - 7.5).abs() < 0.6);
    }

    #[test]
    fn lad_is_robust_to_a_gross_outlier() {
        let xs: Vec<f64> = (0..21).map(|i| i as f64).collect();
        let mut y: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 10.0 { 2.0 } else { 5.0 })
            .collect();
        y[3] = 500.0; // corrupted day
        let data = dataset_1d(&xs, &y);

        let mut lad = GradientBoosting::paper();
        lad.fit(&data).unwrap();
        let mut ls = GradientBoosting::new(GbmParams {
            loss: Loss::LeastSquares,
            ..GbmParams::default()
        });
        ls.fit(&data).unwrap();

        // LAD prediction near the clean level; LS dragged by the outlier.
        let p_lad = lad.predict_row(&[5.0]).unwrap();
        let p_ls = ls.predict_row(&[5.0]).unwrap();
        assert!((p_lad - 2.0).abs() < 1.0, "lad {p_lad}");
        assert!(
            (p_ls - 2.0).abs() > (p_lad - 2.0).abs(),
            "ls {p_ls} vs lad {p_lad}"
        );
    }

    #[test]
    fn stage_count_matches_configuration() {
        let mut gb = GradientBoosting::new(GbmParams {
            n_estimators: 17,
            ..GbmParams::default()
        });
        gb.fit(&dataset_1d(&[0.0, 1.0, 2.0, 3.0], &[0.0, 1.0, 2.0, 3.0]))
            .unwrap();
        assert_eq!(gb.n_stages(), Some(17));
    }

    #[test]
    fn parameter_validation() {
        let data = dataset_1d(&[0.0, 1.0], &[0.0, 1.0]);
        for bad in [
            GbmParams {
                n_estimators: 0,
                ..GbmParams::default()
            },
            GbmParams {
                learning_rate: 0.0,
                ..GbmParams::default()
            },
            GbmParams {
                learning_rate: 1.5,
                ..GbmParams::default()
            },
            GbmParams {
                max_depth: 0,
                ..GbmParams::default()
            },
        ] {
            assert!(GradientBoosting::new(bad).fit(&data).is_err());
        }
        let gb = GradientBoosting::paper();
        assert!(matches!(gb.predict_row(&[1.0]), Err(MlError::NotFitted)));
    }

    #[test]
    fn importances_concentrate_on_the_signal_feature() {
        // y depends on feature 0 only; feature 1 is a constant.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 3.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 20.0 { 1.0 } else { 5.0 })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let data = Dataset::new(Matrix::from_rows(&refs).unwrap(), y).unwrap();
        let mut gb = GradientBoosting::paper();
        gb.fit(&data).unwrap();
        let imp = gb.feature_importances().unwrap();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.99, "importances {imp:?}");
        assert!(GradientBoosting::paper().feature_importances().is_none());
    }

    #[test]
    fn constant_targets_predict_constant() {
        let mut gb = GradientBoosting::paper();
        gb.fit(&dataset_1d(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]))
            .unwrap();
        assert_eq!(gb.predict_row(&[2.0]).unwrap(), 4.0);
    }

    #[test]
    fn feature_mismatch_detected() {
        let mut gb = GradientBoosting::paper();
        gb.fit(&dataset_1d(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0]))
            .unwrap();
        assert!(matches!(
            gb.predict_row(&[1.0, 2.0]),
            Err(MlError::FeatureMismatch { .. })
        ));
    }
}
