//! Paper-faithful evaluation spot checks.
//!
//! The fast experiment binaries amortize retraining (`retrain_every = 7`)
//! and bound the evaluated period (`eval_tail`). These tests run the
//! *unamortized* procedure — retrain on every window slide over the whole
//! usable period, exactly as §4.1 describes — on a couple of vehicles and
//! assert the same orderings. They are `#[ignore]`d because they take
//! minutes in debug builds; run them with
//! `cargo test --release --test paper_faithful -- --ignored`.

use vehicle_usage_prediction::core::evaluate::evaluate_vehicle;
use vehicle_usage_prediction::prelude::*;

fn faithful_config(model: ModelSpec) -> PipelineConfig {
    PipelineConfig {
        model,
        // The paper's procedure: refit at every slide, evaluate the whole
        // period after the first window.
        retrain_every: 1,
        eval_tail: None,
        ..PipelineConfig::default()
    }
}

/// Fast, always-on variant of the faithful ordering check: the same
/// retrain-every-slide procedure, but the evaluated period is bounded to
/// the last 60 days so it completes in seconds even in debug builds. The
/// `#[ignore]`d tests below keep covering the unbounded period.
#[test]
fn faithful_tail_preserves_orderings_and_retrains_every_slide() {
    let fleet = Fleet::generate(FleetConfig::small(10, 2019));
    let mut lasso_nwd = 0.0;
    let mut lv_nwd = 0.0;
    let mut n = 0;
    for id in (0..3).map(VehicleId) {
        let view = VehicleView::build(&fleet, id, Scenario::NextWorkingDay);

        let mut cfg = faithful_config(ModelSpec::Learned(RegressorSpec::lasso_paper()));
        cfg.eval_tail = Some(60);
        let Ok(lasso) = evaluate_vehicle(&view, &cfg) else {
            continue;
        };
        cfg.model = ModelSpec::Baseline(BaselineSpec::LastValue);
        let Ok(lv) = evaluate_vehicle(&view, &cfg) else {
            continue;
        };
        lasso_nwd += lasso.percentage_error;
        lv_nwd += lv.percentage_error;
        n += 1;

        // Unamortized: every evaluated slide refits the model.
        assert_eq!(lasso.retrain_count, lasso.points.len());
        assert!(lasso.points.len() <= 60);
    }
    assert!(n >= 2, "too few evaluable vehicles");
    assert!(lasso_nwd < lv_nwd, "lasso {lasso_nwd:.1} vs LV {lv_nwd:.1}");
}

#[test]
#[ignore = "paper-faithful full-period evaluation; run with --ignored (release recommended)"]
fn faithful_orderings_hold_without_amortization() {
    let fleet = Fleet::generate(FleetConfig::small(10, 2019));
    let mut lasso_nwd = 0.0;
    let mut lv_nwd = 0.0;
    let mut lasso_nd = 0.0;
    let mut n = 0;
    for id in (0..3).map(VehicleId) {
        let nwd = VehicleView::build(&fleet, id, Scenario::NextWorkingDay);
        let nd = VehicleView::build(&fleet, id, Scenario::NextDay);

        let mut cfg = faithful_config(ModelSpec::Learned(RegressorSpec::lasso_paper()));
        let Ok(e1) = evaluate_vehicle(&nwd, &cfg) else {
            continue;
        };
        cfg.model = ModelSpec::Baseline(BaselineSpec::LastValue);
        let Ok(e2) = evaluate_vehicle(&nwd, &cfg) else {
            continue;
        };
        let mut nd_cfg = faithful_config(ModelSpec::Learned(RegressorSpec::lasso_paper()));
        nd_cfg.scenario = Scenario::NextDay;
        let Ok(e3) = evaluate_vehicle(&nd, &nd_cfg) else {
            continue;
        };
        lasso_nwd += e1.percentage_error;
        lv_nwd += e2.percentage_error;
        lasso_nd += e3.percentage_error;
        n += 1;

        // Every slide retrains: retrain count equals evaluated days.
        assert_eq!(e1.retrain_count, e1.points.len());
    }
    assert!(n >= 2, "too few evaluable vehicles");
    // Same orderings as the amortized experiments (EXPERIMENTS.md):
    // ML beats LV in the next-working-day scenario...
    assert!(lasso_nwd < lv_nwd, "lasso {lasso_nwd:.1} vs LV {lv_nwd:.1}");
    // ...and the next-day problem is substantially harder.
    assert!(
        lasso_nd > 1.4 * lasso_nwd,
        "next-day {lasso_nd:.1} vs next-working-day {lasso_nwd:.1}"
    );
}

#[test]
#[ignore = "paper-faithful amortization equivalence; run with --ignored (release recommended)"]
fn amortized_evaluation_approximates_the_faithful_one() {
    let fleet = Fleet::generate(FleetConfig::small(6, 7));
    let view = VehicleView::build(&fleet, VehicleId(0), Scenario::NextWorkingDay);
    let faithful = evaluate_vehicle(
        &view,
        &faithful_config(ModelSpec::Learned(RegressorSpec::lasso_paper())),
    )
    .expect("evaluable");
    let mut amortized_cfg = faithful_config(ModelSpec::Learned(RegressorSpec::lasso_paper()));
    amortized_cfg.retrain_every = 7;
    let amortized = evaluate_vehicle(&view, &amortized_cfg).expect("evaluable");
    // Weekly retraining costs a little accuracy but must stay close
    // (relative PE difference within 15 %).
    let rel =
        (amortized.percentage_error - faithful.percentage_error).abs() / faithful.percentage_error;
    assert!(
        rel < 0.15,
        "faithful {:.1}% vs amortized {:.1}% (rel {rel:.2})",
        faithful.percentage_error,
        amortized.percentage_error
    );
}
