use std::fmt;

/// Errors produced by the relational engine and preparation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepError {
    /// A referenced column does not exist in the schema.
    UnknownColumn {
        /// The missing column name.
        name: String,
    },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Declared column type.
        expected: &'static str,
        /// Type of the offending value.
        actual: &'static str,
    },
    /// A row has the wrong number of values for the schema.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// Two tables disagree on schema where agreement is required.
    SchemaMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A row index is out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// CSV text could not be parsed.
    CsvParse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// An operation that requires rows got an empty table.
    EmptyTable,
    /// A requested operation is invalid for the column's type.
    UnsupportedType {
        /// The operation attempted.
        op: &'static str,
        /// The column's type name.
        dtype: &'static str,
    },
}

impl fmt::Display for PrepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepError::UnknownColumn { name } => write!(f, "unknown column '{name}'"),
            PrepError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in column '{column}': expected {expected}, got {actual}"
            ),
            PrepError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row has {actual} values but schema has {expected} columns"
                )
            }
            PrepError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            PrepError::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (table has {len} rows)")
            }
            PrepError::CsvParse { line, detail } => {
                write!(f, "CSV parse error at line {line}: {detail}")
            }
            PrepError::EmptyTable => write!(f, "operation requires a non-empty table"),
            PrepError::UnsupportedType { op, dtype } => {
                write!(f, "operation {op} is not supported for {dtype} columns")
            }
        }
    }
}

impl std::error::Error for PrepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(PrepError::UnknownColumn { name: "x".into() }
            .to_string()
            .contains("'x'"));
        assert!(PrepError::TypeMismatch {
            column: "hours".into(),
            expected: "float",
            actual: "str"
        }
        .to_string()
        .contains("hours"));
        assert!(PrepError::ArityMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains("3"));
        assert!(PrepError::CsvParse {
            line: 7,
            detail: "bad".into()
        }
        .to_string()
        .contains("line 7"));
        assert!(PrepError::RowOutOfBounds { row: 9, len: 3 }
            .to_string()
            .contains("9"));
    }
}
