//! Batched fleet prediction service.
//!
//! [`PredictionService::serve_batch`] answers a batch of
//! `(vehicle, horizon)` requests in two phases, both dispatched on the
//! lock-free [`vup_core::executor`]:
//!
//! 1. **Prepare** — the distinct vehicles of the batch get their scenario
//!    views built in parallel; the coordinating thread then consults the
//!    [`ModelStore`] and schedules a parallel (re)training pass for every
//!    vehicle whose model is missing or has aged past `retrain_every`.
//!    Freshly trained models are inserted back into the store in one pass
//!    on the coordinating thread.
//! 2. **Serve** — every request rolls its vehicle's model forward with
//!    [`vup_core::forecast::forecast_horizon`], reading only `Arc`
//!    snapshots. No lock of any kind is taken inside executor workers.
//!
//! The serve path degrades instead of failing. Each (re)train runs as a
//! *fit episode* under the service's [`ResilienceConfig`]: bounded
//! retries with deterministic virtual-time backoff, an optional
//! virtual-nanosecond deadline budget, and a per-vehicle
//! [`CircuitBreaker`] that sheds a repeatedly failing primary. When the
//! primary path fails terminally (or the breaker rejects it), the
//! serde-saved baseline fallback fits on the same view and serves a
//! [`ServePath::Degraded`] forecast; only when no fallback is configured
//! (or it fails too) does the request end as [`ServeOutcome::Failed`].
//! A panic while training is captured by the executor and handled like
//! any other failed attempt; a panic while serving surfaces as that
//! request's [`ServeOutcome::Failed`]. The rest of the batch is
//! unaffected either way. [`ServeOutcome::Skipped`] is reserved for
//! requests that never reach the model path (unknown vehicle, zero
//! horizon, view-build panic).
//!
//! Every outcome — served, degraded, skipped, or failed — carries a
//! [`Provenance`] record
//! answering "which model produced this number and why": the config
//! fingerprint, the path through the cache ([`ServePath`]), the training
//! window bounds, the selected lags, and per-stage wall-clock nanos.
//! [`ServeJournal`] collects a batch's records for serialization.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use serde::{Deserialize, Serialize};
use vup_core::forecast::forecast_horizon;
use vup_core::{
    executor, FittedPredictor, ModelSpec, PipelineConfig, Scenario, Strategy, VehicleView,
};
use vup_fleetsim::fleet::{Fleet, VehicleId};
use vup_ml::baseline::BaselineSpec;
use vup_ml::instrument::MlTimers;
use vup_obs::{Buckets, Counter, Gauge, Histogram, Registry, SpanCtx, Tracer};

use crate::faults::{FaultInjector, FaultPlan, FitFault};
use crate::persist::RecoveryStats;
use crate::resilience::{
    BreakerDecision, BreakerState, BreakerTransition, CircuitBreaker, ResilienceConfig,
};
use crate::store::{Lookup, ModelStore, StoredModel};

/// Registry handles for the service's own metrics. All no-ops for a
/// service built with [`PredictionService::new`].
struct ServeMetrics {
    /// `vup_serve_batches_total` — `serve_batch` calls.
    batches: Counter,
    /// `vup_serve_requests_total` — individual requests across batches.
    requests: Counter,
    /// `vup_serve_outcomes_total{outcome="served"}` — cache-hit serves.
    served: Counter,
    /// `vup_serve_outcomes_total{outcome="retrained"}` — retrain-then-serve.
    retrained: Counter,
    /// `vup_serve_outcomes_total{outcome="skipped"}` — requests that
    /// never reached the model path.
    skipped: Counter,
    /// `vup_serve_outcomes_total{outcome="degraded"}` — requests served
    /// by the baseline fallback after the primary path failed.
    degraded: Counter,
    /// `vup_serve_outcomes_total{outcome="failed"}` — requests whose
    /// primary path failed with no (working) fallback.
    failed: Counter,
    /// `vup_serve_retries_total` — fit attempts beyond each episode's
    /// first.
    retries: Counter,
    /// `vup_serve_deadline_exceeded_total` — fit episodes stopped by the
    /// virtual-time deadline budget.
    deadline_exceeded: Counter,
    /// `vup_serve_faults_injected_total` — injected faults that fired
    /// (errors, panics, delays, store poisonings).
    faults_injected: Counter,
    /// `vup_serve_breaker_transitions_total{to="open"}`.
    breaker_to_open: Counter,
    /// `vup_serve_breaker_transitions_total{to="half_open"}`.
    breaker_to_half_open: Counter,
    /// `vup_serve_breaker_transitions_total{to="closed"}`.
    breaker_to_closed: Counter,
    /// `vup_serve_breaker_rejections_total` — primary paths shed by an
    /// open breaker.
    breaker_rejections: Counter,
    /// `vup_serve_breaker_open` — vehicles whose breaker is currently
    /// open.
    breaker_open: Gauge,
    /// `vup_serve_stage_nanos{stage="view_build"}` — per-vehicle scenario
    /// view construction (the feature-build stage).
    stage_view: Histogram,
    /// `vup_serve_stage_nanos{stage="fit"}` — per-vehicle (re)training.
    stage_fit: Histogram,
    /// `vup_serve_stage_nanos{stage="predict"}` — per-request horizon
    /// roll-forward.
    stage_predict: Histogram,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> ServeMetrics {
        registry.describe(
            "vup_serve_batches_total",
            "Batches answered by PredictionService::serve_batch.",
        );
        registry.describe(
            "vup_serve_requests_total",
            "Individual prediction requests across all batches.",
        );
        registry.describe(
            "vup_serve_outcomes_total",
            "Request outcomes by kind; the series sum to the request count.",
        );
        registry.describe(
            "vup_serve_stage_nanos",
            "Serve pipeline stage latency (view_build, fit, predict).",
        );
        registry.describe(
            "vup_serve_retries_total",
            "Fit attempts beyond each episode's first.",
        );
        registry.describe(
            "vup_serve_deadline_exceeded_total",
            "Fit episodes stopped by the virtual-time deadline budget.",
        );
        registry.describe(
            "vup_serve_faults_injected_total",
            "Injected chaos faults that fired (errors, panics, delays, poisonings).",
        );
        registry.describe(
            "vup_serve_breaker_transitions_total",
            "Circuit-breaker state transitions by target state.",
        );
        registry.describe(
            "vup_serve_breaker_rejections_total",
            "Primary fit paths shed by an open circuit breaker.",
        );
        registry.describe(
            "vup_serve_breaker_open",
            "Vehicles whose circuit breaker is currently open.",
        );
        let transition = |to: &'static str| {
            registry.counter_with("vup_serve_breaker_transitions_total", &[("to", to)])
        };
        let stage = |name: &'static str| {
            registry.histogram_with(
                "vup_serve_stage_nanos",
                &[("stage", name)],
                Buckets::latency(),
            )
        };
        ServeMetrics {
            batches: registry.counter("vup_serve_batches_total"),
            requests: registry.counter("vup_serve_requests_total"),
            served: registry.counter_with("vup_serve_outcomes_total", &[("outcome", "served")]),
            retrained: registry
                .counter_with("vup_serve_outcomes_total", &[("outcome", "retrained")]),
            skipped: registry.counter_with("vup_serve_outcomes_total", &[("outcome", "skipped")]),
            degraded: registry.counter_with("vup_serve_outcomes_total", &[("outcome", "degraded")]),
            failed: registry.counter_with("vup_serve_outcomes_total", &[("outcome", "failed")]),
            retries: registry.counter("vup_serve_retries_total"),
            deadline_exceeded: registry.counter("vup_serve_deadline_exceeded_total"),
            faults_injected: registry.counter("vup_serve_faults_injected_total"),
            breaker_to_open: transition("open"),
            breaker_to_half_open: transition("half_open"),
            breaker_to_closed: transition("closed"),
            breaker_rejections: registry.counter("vup_serve_breaker_rejections_total"),
            breaker_open: registry.gauge("vup_serve_breaker_open"),
            stage_view: stage("view_build"),
            stage_fit: stage("fit"),
            stage_predict: stage("predict"),
        }
    }
}

/// One prediction request: the next `horizon` scenario days of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRequest {
    /// The vehicle to predict for.
    pub vehicle_id: VehicleId,
    /// How many scenario days ahead to predict (≥ 1).
    pub horizon: usize,
}

/// Which path a request took through the model cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServePath {
    /// Served from a model already fresh in the [`ModelStore`].
    CacheHit,
    /// No cached model existed; the vehicle was trained this batch.
    RetrainedAbsent,
    /// A cached model existed but had aged past `retrain_every`; the
    /// vehicle was retrained this batch.
    RetrainedStale,
    /// The primary path failed (or the circuit breaker rejected it) and
    /// the baseline fallback served instead.
    Degraded,
    /// The request produced no forecast.
    Failed,
}

impl ServePath {
    /// Stable lowercase label (journal summaries, CLI output).
    pub fn as_str(&self) -> &'static str {
        match self {
            ServePath::CacheHit => "cache_hit",
            ServePath::RetrainedAbsent => "retrained_absent",
            ServePath::RetrainedStale => "retrained_stale",
            ServePath::Degraded => "degraded",
            ServePath::Failed => "failed",
        }
    }
}

/// Wall-clock nanoseconds a request spent in each serve stage.
///
/// All zero when the service was built without a live registry (the
/// disabled path never reads the clock). Stages shared by several
/// requests of one vehicle (view build, fit) repeat the per-vehicle cost
/// in each request's record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageNanos {
    /// Scenario view construction for the request's vehicle.
    pub view_build: u64,
    /// Model (re)training for the request's vehicle (0 on a cache hit).
    pub fit: u64,
    /// Horizon roll-forward for this request.
    pub predict: u64,
}

/// Where a forecast came from: the full decision trail of one request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Provenance {
    /// The vehicle the request was for.
    pub vehicle_id: u32,
    /// Requested horizon.
    pub horizon: usize,
    /// FNV-1a fingerprint of the serving [`PipelineConfig`]
    /// ([`ModelStore::fingerprint`]) — ties the record to the exact
    /// model/feature/window configuration.
    pub config_fingerprint: u64,
    /// Display label of the model family (`"LR"`, `"RF"`, `"LV"`, …).
    pub model_label: String,
    /// How the request travelled through the cache.
    pub path: ServePath,
    /// Slot the serving model's training window ended at (exclusive);
    /// `None` when no model served the request.
    pub trained_at: Option<usize>,
    /// Slot the training window started at; `None` when no model served
    /// the request.
    pub train_from: Option<usize>,
    /// Autocorrelation lags the serving model selected (empty for
    /// baselines and failed requests).
    pub selected_lags: Vec<usize>,
    /// Failure reason for [`ServePath::Failed`] records.
    pub reason: Option<String>,
    /// Per-stage wall-clock cost (zeros without a live registry).
    pub stage_nanos: StageNanos,
}

impl Provenance {
    fn failed(
        vehicle_id: u32,
        horizon: usize,
        config_fingerprint: u64,
        model_label: &str,
        reason: String,
        stage_nanos: StageNanos,
    ) -> Provenance {
        Provenance {
            vehicle_id,
            horizon,
            config_fingerprint,
            model_label: model_label.to_string(),
            path: ServePath::Failed,
            trained_at: None,
            train_from: None,
            selected_lags: Vec::new(),
            reason: Some(reason),
            stage_nanos,
        }
    }
}

/// Equality ignores `stage_nanos`: wall-clock timings are machine noise,
/// not forecast semantics, so observed and unobserved runs of the same
/// batch compare equal.
impl PartialEq for Provenance {
    fn eq(&self, other: &Provenance) -> bool {
        self.vehicle_id == other.vehicle_id
            && self.horizon == other.horizon
            && self.config_fingerprint == other.config_fingerprint
            && self.model_label == other.model_label
            && self.path == other.path
            && self.trained_at == other.trained_at
            && self.train_from == other.train_from
            && self.selected_lags == other.selected_lags
            && self.reason == other.reason
    }
}

/// A batch's provenance records in request order, ready to serialize.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeJournal {
    /// One record per request, in request order.
    pub records: Vec<Provenance>,
    /// Startup recovery of the durable store this batch served from, if
    /// the service warm-started from disk ([`crate::ModelStore::open`]).
    pub recovery: Option<RecoveryStats>,
}

impl ServeJournal {
    /// Collects the provenance of every outcome (served and skipped) in
    /// request order.
    pub fn from_outcomes(outcomes: &[ServeOutcome]) -> ServeJournal {
        ServeJournal {
            records: outcomes.iter().map(|o| o.provenance().clone()).collect(),
            recovery: None,
        }
    }

    /// Attaches the durable store's startup [`RecoveryStats`] so the
    /// journal records not just what was served but what survived the
    /// last crash.
    pub fn with_recovery(mut self, recovery: Option<RecoveryStats>) -> ServeJournal {
        self.recovery = recovery;
        self
    }

    /// Pretty-printed JSON of the journal.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("journal serialization cannot fail")
    }

    /// Parses a journal back from [`ServeJournal::to_json`] output.
    pub fn from_json(text: &str) -> Result<ServeJournal, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// A served multi-step forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The vehicle the forecast is for.
    pub vehicle_id: u32,
    /// Requested horizon.
    pub horizon: usize,
    /// Predicted utilization hours, nearest scenario day first.
    pub hours: Vec<f64>,
    /// Slot the serving model's training window ended at.
    pub trained_at: usize,
    /// Where the forecast came from.
    pub provenance: Provenance,
}

/// Per-request outcome of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// Served from a model already cached in the [`ModelStore`].
    Served(Forecast),
    /// The cached model was absent or stale; the vehicle was retrained
    /// during this batch, then served.
    RetrainedThenServed(Forecast),
    /// The primary model path failed (fit error, deadline, open breaker)
    /// and the baseline fallback served this forecast instead. The
    /// provenance path is [`ServePath::Degraded`] and its `reason` holds
    /// the primary failure.
    Degraded(Forecast),
    /// The request never reached the model path (unknown vehicle, zero
    /// horizon, view-build panic).
    Skipped {
        /// The vehicle of the unserveable request.
        vehicle_id: u32,
        /// Why it was skipped.
        reason: String,
        /// Provenance of the failure (path is [`ServePath::Failed`]).
        provenance: Provenance,
    },
    /// The primary path failed and no fallback was configured (or the
    /// fallback failed too); the request produced no forecast.
    Failed {
        /// The vehicle of the failed request.
        vehicle_id: u32,
        /// The underlying error, preserved verbatim for the CLI table
        /// and the [`ServeJournal`].
        error: String,
        /// Provenance of the failure (path is [`ServePath::Failed`],
        /// `reason` repeats the error).
        provenance: Provenance,
    },
}

impl ServeOutcome {
    /// The forecast, if one was produced (degraded serves included).
    pub fn forecast(&self) -> Option<&Forecast> {
        match self {
            ServeOutcome::Served(f)
            | ServeOutcome::RetrainedThenServed(f)
            | ServeOutcome::Degraded(f) => Some(f),
            ServeOutcome::Skipped { .. } | ServeOutcome::Failed { .. } => None,
        }
    }

    /// Whether this outcome was served straight from the cache.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self, ServeOutcome::Served(_))
    }

    /// Whether the baseline fallback served this request.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServeOutcome::Degraded(_))
    }

    /// The provenance record — present on every outcome, failed or not.
    pub fn provenance(&self) -> &Provenance {
        match self {
            ServeOutcome::Served(f)
            | ServeOutcome::RetrainedThenServed(f)
            | ServeOutcome::Degraded(f) => &f.provenance,
            ServeOutcome::Skipped { provenance, .. } | ServeOutcome::Failed { provenance, .. } => {
                provenance
            }
        }
    }
}

/// How a vehicle left the prepare phase.
enum Prepared {
    /// A model (primary or fallback) is ready to serve. `path` is
    /// [`ServePath::Degraded`] exactly when `degraded_reason` is set.
    Ready {
        view: Arc<VehicleView>,
        model: Arc<StoredModel>,
        path: ServePath,
        view_nanos: u64,
        fit_nanos: u64,
        degraded_reason: Option<String>,
    },
    /// The request never reached the model path → [`ServeOutcome::Skipped`].
    Invalid { reason: String, view_nanos: u64 },
    /// The model path failed with no working fallback
    /// → [`ServeOutcome::Failed`].
    Failed {
        reason: String,
        view_nanos: u64,
        fit_nanos: u64,
    },
}

/// How one vehicle's fit episode (all retry attempts) ended.
enum FitEpisode {
    /// Some attempt produced a model (boxed: a fitted predictor dwarfs
    /// the failure variants).
    Fitted {
        predictor: Box<FittedPredictor>,
        attempts: u32,
        injected: u64,
    },
    /// Every attempt failed; `error` is the last attempt's.
    Failed {
        error: String,
        attempts: u32,
        injected: u64,
    },
    /// The virtual-time budget ran out before the attempts did.
    DeadlineExceeded {
        error: String,
        attempts: u32,
        injected: u64,
    },
}

/// Where the service gets a vehicle's scenario view from. The default
/// ([`FleetViews`]) regenerates the full synthetic history on every
/// build; a streaming deployment substitutes a source backed by
/// incrementally aggregated telemetry (see `vup-ingest`), which serves
/// the same views without re-reading history.
///
/// Implementations must be deterministic: the same `(fleet, id,
/// scenario)` and underlying data must yield the same view bit for
/// bit, because views are built in parallel and the serve path's
/// reproducibility contract rests on them.
pub trait ViewSource: Send + Sync {
    /// Builds the full scenario view for `id`, or `None` if the
    /// vehicle is unknown to this source.
    fn build_view(&self, fleet: &Fleet, id: VehicleId, scenario: Scenario) -> Option<VehicleView>;

    /// Whether a vehicle's full view is immutable for the source's
    /// lifetime. Static sources let the service memoize built views
    /// across batches (the dominant cost of a warm cache hit); live
    /// sources — e.g. telemetry aggregation that appends sealed days —
    /// must keep the default `false` so every batch sees fresh data.
    fn is_static(&self) -> bool {
        false
    }
}

/// The default [`ViewSource`]: regenerate each view from the synthetic
/// fleet history.
#[derive(Debug, Default, Clone, Copy)]
pub struct FleetViews;

impl ViewSource for FleetViews {
    fn build_view(&self, fleet: &Fleet, id: VehicleId, scenario: Scenario) -> Option<VehicleView> {
        fleet.vehicle(id)?;
        Some(VehicleView::build(fleet, id, scenario))
    }

    /// Synthetic histories are a pure function of `(fleet, id,
    /// scenario)`, so memoization is exact.
    fn is_static(&self) -> bool {
        true
    }
}

/// Batched per-vehicle prediction over one fleet.
pub struct PredictionService<'f> {
    fleet: &'f Fleet,
    config: PipelineConfig,
    views: Arc<dyn ViewSource>,
    store: ModelStore,
    n_threads: usize,
    metrics: ServeMetrics,
    ml_timers: MlTimers,
    executor_metrics: executor::ExecutorMetrics,
    tracer: Tracer,
    resilience: ResilienceConfig,
    /// The fallback spec as serialized at configuration time; parsed
    /// back on every degradation, so what serves degraded requests is
    /// provably the *saved* predictor.
    fallback_json: Option<String>,
    faults: FaultInjector,
    breaker: CircuitBreaker,
    /// Monotone batch index — the breaker's and fault injector's notion
    /// of time.
    batch_counter: AtomicU64,
    /// Memoized full views, populated only when the source
    /// [`ViewSource::is_static`]; `as_of` truncation happens per batch on
    /// top of the cached full view.
    view_cache: RwLock<HashMap<VehicleId, Arc<VehicleView>>>,
    /// Per-vehicle [`TrainArena`]s reused across a vehicle's fit
    /// episodes; taken out for the duration of an episode, so the lock is
    /// only held for the map operations. Scratch only — contents never
    /// influence what is fitted.
    fit_scratch: Mutex<HashMap<VehicleId, vup_ml::TrainArena>>,
}

impl<'f> PredictionService<'f> {
    /// Creates a service for `fleet` under `config`. `n_threads` caps the
    /// executor workers (0 = available parallelism).
    pub fn new(
        fleet: &'f Fleet,
        config: PipelineConfig,
        n_threads: usize,
    ) -> vup_core::Result<PredictionService<'f>> {
        Self::new_observed(fleet, config, n_threads, &Registry::disabled())
    }

    /// [`PredictionService::new`] with observability: batch/request and
    /// per-outcome counters, per-stage latency histograms
    /// (`vup_serve_stage_nanos{stage="view_build"|"fit"|"predict"}`),
    /// model-store cache counters, ML fit/predict timing, and executor
    /// worker stats under `pool="serve"` — all recorded into `registry`.
    /// With a disabled registry this is exactly [`PredictionService::new`]:
    /// forecasts are bit-identical and no clock is read.
    pub fn new_observed(
        fleet: &'f Fleet,
        config: PipelineConfig,
        n_threads: usize,
        registry: &Registry,
    ) -> vup_core::Result<PredictionService<'f>> {
        config.validate()?;
        Ok(PredictionService {
            fleet,
            config,
            views: Arc::new(FleetViews),
            store: ModelStore::observed(registry),
            n_threads,
            metrics: ServeMetrics::register(registry),
            ml_timers: MlTimers::register(registry),
            executor_metrics: executor::ExecutorMetrics::register(registry, "serve"),
            tracer: Tracer::disabled(),
            resilience: ResilienceConfig::default(),
            fallback_json: None,
            faults: FaultInjector::default(),
            breaker: CircuitBreaker::default(),
            batch_counter: AtomicU64::new(0),
            view_cache: RwLock::new(HashMap::new()),
            fit_scratch: Mutex::new(HashMap::new()),
        })
    }

    /// Installs a resilience profile: bounded retries with deterministic
    /// virtual-time backoff for fit episodes, an optional
    /// virtual-nanosecond deadline budget, a per-vehicle circuit
    /// breaker, and a baseline fallback that serves
    /// [`ServePath::Degraded`] forecasts when the primary path fails.
    /// The fallback spec is serialized here and re-parsed at degradation
    /// time (the saved-predictor contract). The default config
    /// reproduces the legacy single-attempt behaviour exactly.
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> PredictionService<'f> {
        self.fallback_json = resilience
            .fallback
            .map(|spec| serde_json::to_string(&spec).expect("fallback spec serializes"));
        self.breaker = CircuitBreaker::new(resilience.breaker);
        self.resilience = resilience;
        self
    }

    /// Installs a seeded chaos plan: every injection decision is a pure
    /// hash of `(seed, vehicle, batch, attempt)`, so a chaos run repeats
    /// bit for bit at any thread count.
    pub fn with_faults(mut self, plan: FaultPlan) -> PredictionService<'f> {
        self.faults = FaultInjector::new(plan);
        self
    }

    /// The active resilience configuration.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// The per-vehicle circuit breaker (disabled under the default
    /// resilience config).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Attaches a tracer: every batch records a `serve_batch` span tree
    /// (prepare → per-vehicle `view_build`/`fit`, serve → per-request
    /// `predict`, plus `executor_worker` and nested `ml_fit` spans).
    /// A disabled tracer keeps the span path clock-free; forecasts are
    /// bit-identical either way.
    pub fn with_tracer(mut self, tracer: Tracer) -> PredictionService<'f> {
        self.tracer = tracer;
        self
    }

    /// Replaces the service's model cache — the way to serve from a
    /// durable, warm-started store ([`ModelStore::open`] /
    /// [`ModelStore::open_with`]): recovered models serve as cache hits,
    /// and every retrain is written through to disk with a
    /// `store_persist` span under the batch's prepare phase. Build the
    /// store against the same registry as the service so its metrics
    /// land in one place.
    pub fn with_store(mut self, store: ModelStore) -> PredictionService<'f> {
        self.store = store;
        self
    }

    /// Replaces where views come from (default: [`FleetViews`]). A
    /// streaming deployment points this at incrementally aggregated
    /// telemetry so serving never regenerates history.
    pub fn with_views(mut self, views: Arc<dyn ViewSource>) -> PredictionService<'f> {
        self.views = views;
        // Memoized views belong to the previous source.
        self.view_cache.get_mut().expect("view cache lock").clear();
        self
    }

    /// The service's model cache.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The configuration every request is served under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Serves a batch of requests, returning one outcome per request in
    /// request order.
    ///
    /// `as_of` bounds each vehicle's series to its first `as_of` slots,
    /// replaying the service "as of" an earlier day (`None` = the full
    /// observed series). Models are cached across calls: a vehicle whose
    /// cached model is still within `retrain_every` slots of the series
    /// end is served without retraining.
    pub fn serve_batch(
        &self,
        requests: &[BatchRequest],
        as_of: Option<usize>,
    ) -> Vec<ServeOutcome> {
        let batch = self.batch_counter.fetch_add(1, Ordering::Relaxed);
        self.metrics.batches.inc();
        self.metrics.requests.add(requests.len() as u64);
        let mut batch_span = self.tracer.root("serve_batch");
        batch_span.arg("requests", requests.len());
        batch_span.arg("batch", batch);

        let fingerprint = ModelStore::fingerprint(&self.config);
        let config_label = self.config.model.label();

        let mut vehicles: Vec<VehicleId> = requests.iter().map(|r| r.vehicle_id).collect();
        vehicles.sort_unstable();
        vehicles.dedup();

        let prepared = self.prepare(&vehicles, as_of, &batch_span.ctx(), batch);

        // Phase 2: serve every request from the prepared snapshots.
        let serve_span = batch_span.child("serve");
        let serve_ctx = serve_span.ctx();
        let (outcomes, _) = executor::run_tasks_traced(
            requests.len(),
            self.n_threads,
            |i| {
                let request = &requests[i];
                let id = request.vehicle_id.0;
                let mut span = serve_ctx.child("predict");
                span.arg("vehicle", id);
                span.arg("horizon", request.horizon);
                if request.horizon == 0 {
                    let reason = "horizon must be at least 1".to_string();
                    return ServeOutcome::Skipped {
                        vehicle_id: id,
                        reason: reason.clone(),
                        provenance: Provenance::failed(
                            id,
                            0,
                            fingerprint,
                            config_label,
                            reason,
                            StageNanos::default(),
                        ),
                    };
                }
                match prepared.get(&request.vehicle_id) {
                    Some(Prepared::Ready {
                        view,
                        model,
                        path,
                        view_nanos,
                        fit_nanos,
                        degraded_reason,
                    }) => {
                        let timer = self.metrics.stage_predict.start_timer();
                        let rolled =
                            forecast_horizon(&model.predictor, view, self.fleet, request.horizon);
                        let stage_nanos = StageNanos {
                            view_build: *view_nanos,
                            fit: *fit_nanos,
                            predict: timer.stop(),
                        };
                        match rolled {
                            Ok(hours) => {
                                let provenance = Provenance {
                                    vehicle_id: id,
                                    horizon: request.horizon,
                                    config_fingerprint: fingerprint,
                                    model_label: model.predictor.label().to_string(),
                                    path: *path,
                                    trained_at: Some(model.trained_at),
                                    train_from: Some(self.train_window_start(model.trained_at)),
                                    selected_lags: model.predictor.selected_lags().to_vec(),
                                    reason: degraded_reason.clone(),
                                    stage_nanos,
                                };
                                let forecast = Forecast {
                                    vehicle_id: id,
                                    horizon: request.horizon,
                                    hours,
                                    trained_at: model.trained_at,
                                    provenance,
                                };
                                match path {
                                    ServePath::CacheHit => ServeOutcome::Served(forecast),
                                    ServePath::Degraded => ServeOutcome::Degraded(forecast),
                                    _ => ServeOutcome::RetrainedThenServed(forecast),
                                }
                            }
                            Err(e) => {
                                let error = e.to_string();
                                ServeOutcome::Failed {
                                    vehicle_id: id,
                                    error: error.clone(),
                                    provenance: Provenance::failed(
                                        id,
                                        request.horizon,
                                        fingerprint,
                                        model.predictor.label(),
                                        error,
                                        stage_nanos,
                                    ),
                                }
                            }
                        }
                    }
                    Some(Prepared::Invalid { reason, view_nanos }) => ServeOutcome::Skipped {
                        vehicle_id: id,
                        reason: reason.clone(),
                        provenance: Provenance::failed(
                            id,
                            request.horizon,
                            fingerprint,
                            config_label,
                            reason.clone(),
                            StageNanos {
                                view_build: *view_nanos,
                                fit: 0,
                                predict: 0,
                            },
                        ),
                    },
                    Some(Prepared::Failed {
                        reason,
                        view_nanos,
                        fit_nanos,
                    }) => ServeOutcome::Failed {
                        vehicle_id: id,
                        error: reason.clone(),
                        provenance: Provenance::failed(
                            id,
                            request.horizon,
                            fingerprint,
                            config_label,
                            reason.clone(),
                            StageNanos {
                                view_build: *view_nanos,
                                fit: *fit_nanos,
                                predict: 0,
                            },
                        ),
                    },
                    None => unreachable!("every request vehicle was prepared"),
                }
            },
            &self.executor_metrics,
            &serve_ctx,
        );
        drop(serve_span);

        let outcomes: Vec<ServeOutcome> = outcomes
            .into_iter()
            .zip(requests)
            .map(|(result, request)| {
                result.unwrap_or_else(|message| {
                    let error = format!("worker panicked: {message}");
                    ServeOutcome::Failed {
                        vehicle_id: request.vehicle_id.0,
                        error: error.clone(),
                        provenance: Provenance::failed(
                            request.vehicle_id.0,
                            request.horizon,
                            fingerprint,
                            config_label,
                            error,
                            StageNanos::default(),
                        ),
                    }
                })
            })
            .collect();

        // One counting pass on the coordinating thread; every request
        // lands in exactly one outcome series, so the five series sum to
        // the request count.
        let (mut served, mut retrained, mut degraded, mut skipped, mut failed) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for outcome in &outcomes {
            match outcome {
                ServeOutcome::Served(_) => served += 1,
                ServeOutcome::RetrainedThenServed(_) => retrained += 1,
                ServeOutcome::Degraded(_) => degraded += 1,
                ServeOutcome::Skipped { .. } => skipped += 1,
                ServeOutcome::Failed { .. } => failed += 1,
            }
        }
        self.metrics.served.add(served);
        self.metrics.retrained.add(retrained);
        self.metrics.degraded.add(degraded);
        self.metrics.skipped.add(skipped);
        self.metrics.failed.add(failed);
        batch_span.arg("served", served);
        batch_span.arg("retrained", retrained);
        batch_span.arg("degraded", degraded);
        batch_span.arg("skipped", skipped);
        batch_span.arg("failed", failed);
        outcomes
    }

    /// Phase 1: builds views for the distinct vehicles, reuses fresh
    /// cached models, retrains the rest in parallel, and records the new
    /// models in the store.
    fn prepare(
        &self,
        vehicles: &[VehicleId],
        as_of: Option<usize>,
        parent: &SpanCtx,
        batch: u64,
    ) -> HashMap<VehicleId, Prepared> {
        let mut prepare_span = parent.child("prepare");
        prepare_span.arg("vehicles", vehicles.len());
        let prepare_ctx = prepare_span.ctx();

        // Fault hook: poison cached models before the lookups, in
        // vehicle-sorted order on the coordinating thread.
        if self.faults.plan().is_active() {
            for &id in vehicles {
                if self.faults.poisons_store(id.0, batch) && self.store.poison(id, &self.config) {
                    self.metrics.faults_injected.inc();
                }
            }
        }

        // 1a: resolve the scenario views in parallel (the expensive part
        // of a cache hit when the source cannot be memoized). The
        // `view_build` span is emitted — with the same byte weight — on
        // memoized resolutions too, so profile shapes and counts are
        // independent of the cache's warmth.
        let (views, _) = executor::run_tasks_traced(
            vehicles.len(),
            self.n_threads,
            |i| {
                let id = vehicles[i];
                let mut span = prepare_ctx.child("view_build");
                span.arg("vehicle", id.0);
                let timer = self.metrics.stage_view.start_timer();
                let view = self.resolve_view(id).map(|full| match as_of {
                    Some(n) => Arc::new(full.truncated(n)),
                    None => full,
                });
                if let Some(view) = &view {
                    // Wall-free workload weight for the profile layer:
                    // slots materialized, in bytes.
                    span.add_bytes(
                        (view.len() * std::mem::size_of::<vup_core::view::Slot>()) as u64,
                    );
                }
                (view, timer.stop())
            },
            &self.executor_metrics,
            &prepare_ctx,
        );

        // 1b: consult the cache and the circuit breaker on the
        // coordinating thread, in vehicle-sorted order, so the breaker's
        // transition stream is deterministic at every thread count. The
        // lookup keeps the miss cause (absent vs stale) for provenance.
        let mut prepared: HashMap<VehicleId, Prepared> = HashMap::with_capacity(vehicles.len());
        let mut to_train: Vec<(VehicleId, Arc<VehicleView>, u64, ServePath)> = Vec::new();
        for (&id, result) in vehicles.iter().zip(views) {
            match result {
                Ok((Some(view), view_nanos)) => {
                    let now = view.len();
                    match self.store.lookup(id, &self.config, now) {
                        Lookup::Hit(model) => {
                            prepared.insert(
                                id,
                                Prepared::Ready {
                                    view,
                                    model,
                                    path: ServePath::CacheHit,
                                    view_nanos,
                                    fit_nanos: 0,
                                    degraded_reason: None,
                                },
                            );
                        }
                        miss => {
                            let path = if matches!(miss, Lookup::Stale(_)) {
                                ServePath::RetrainedStale
                            } else {
                                ServePath::RetrainedAbsent
                            };
                            let (decision, transition) = self.breaker.admit(id.0, batch);
                            if let Some(t) = transition {
                                self.publish_transition(t, &prepare_ctx);
                            }
                            if decision == BreakerDecision::Reject {
                                self.metrics.breaker_rejections.inc();
                                let entry = self.degrade(
                                    id,
                                    view,
                                    format!("circuit breaker open for vehicle {}", id.0),
                                    view_nanos,
                                    0,
                                    &prepare_ctx,
                                );
                                prepared.insert(id, entry);
                            } else {
                                to_train.push((id, view, view_nanos, path));
                            }
                        }
                    }
                }
                Ok((None, view_nanos)) => {
                    prepared.insert(
                        id,
                        Prepared::Invalid {
                            reason: format!("vehicle {} not in fleet", id.0),
                            view_nanos,
                        },
                    );
                }
                Err(message) => {
                    prepared.insert(
                        id,
                        Prepared::Invalid {
                            reason: format!("worker panicked: {message}"),
                            view_nanos: 0,
                        },
                    );
                }
            }
        }

        // 1c: (re)train the misses in parallel, one retrying fit
        // episode per vehicle.
        let retrains = to_train.len();
        let (trained, _) = executor::run_tasks_traced(
            to_train.len(),
            self.n_threads,
            |i| {
                let (id, view, _, _) = &to_train[i];
                let mut span = prepare_ctx.child("fit");
                span.arg("vehicle", id.0);
                let timers = self.ml_timers.for_span(&span.ctx());
                let timer = self.metrics.stage_fit.start_timer();
                let episode = self.fit_episode(view, id.0, batch, &timers);
                (episode, timer.stop())
            },
            &self.executor_metrics,
            &prepare_ctx,
        );

        // 1d: publish episode outcomes (store inserts, breaker records,
        // fallback fits) on the coordinating thread, vehicle-sorted.
        for ((id, view, view_nanos, path), result) in to_train.into_iter().zip(trained) {
            let entry = match result {
                Ok((
                    FitEpisode::Fitted {
                        predictor,
                        attempts,
                        injected,
                    },
                    fit_nanos,
                )) => {
                    self.metrics
                        .retries
                        .add(u64::from(attempts.saturating_sub(1)));
                    self.metrics.faults_injected.add(injected);
                    if let Some(t) = self.breaker.record(id.0, batch, true) {
                        self.publish_transition(t, &prepare_ctx);
                    }
                    let trained_at = view.len();
                    let model = self.store.insert_traced(
                        id,
                        &self.config,
                        *predictor,
                        trained_at,
                        &prepare_ctx,
                    );
                    Prepared::Ready {
                        view,
                        model,
                        path,
                        view_nanos,
                        fit_nanos,
                        degraded_reason: None,
                    }
                }
                Ok((
                    FitEpisode::Failed {
                        error,
                        attempts,
                        injected,
                    },
                    fit_nanos,
                )) => {
                    self.metrics
                        .retries
                        .add(u64::from(attempts.saturating_sub(1)));
                    self.metrics.faults_injected.add(injected);
                    self.finish_failed_episode(
                        id,
                        view,
                        error,
                        view_nanos,
                        fit_nanos,
                        batch,
                        &prepare_ctx,
                    )
                }
                Ok((
                    FitEpisode::DeadlineExceeded {
                        error,
                        attempts,
                        injected,
                    },
                    fit_nanos,
                )) => {
                    self.metrics
                        .retries
                        .add(u64::from(attempts.saturating_sub(1)));
                    self.metrics.faults_injected.add(injected);
                    self.metrics.deadline_exceeded.inc();
                    self.finish_failed_episode(
                        id,
                        view,
                        error,
                        view_nanos,
                        fit_nanos,
                        batch,
                        &prepare_ctx,
                    )
                }
                Err(message) => {
                    if message.contains("injected panic") {
                        self.metrics.faults_injected.inc();
                    }
                    self.finish_failed_episode(
                        id,
                        view,
                        format!("worker panicked: {message}"),
                        view_nanos,
                        0,
                        batch,
                        &prepare_ctx,
                    )
                }
            };
            prepared.insert(id, entry);
        }
        self.metrics
            .breaker_open
            .set(self.breaker.open_count() as f64);
        prepare_span.arg("retrained", retrains);
        prepared
    }

    /// One vehicle's (re)train under the retry policy, deadline budget,
    /// and fault plan. Runs inside an executor worker; all time here is
    /// *virtual* (injected delays + backoffs), so the episode is a pure
    /// function of `(vehicle, batch)` and the view. An injected panic
    /// unwinds to the executor's per-slot capture — the episode ends
    /// without in-task retries, by design (a panicking fit stage is not
    /// presumed retry-safe).
    fn fit_episode(
        &self,
        view: &VehicleView,
        vehicle: u32,
        batch: u64,
        timers: &MlTimers,
    ) -> FitEpisode {
        // Borrow the vehicle's training arena for the episode; the lock
        // guards only the map operations, never the fit itself. A panic
        // mid-episode drops the arena — the next episode starts fresh.
        let mut arena = self
            .fit_scratch
            .lock()
            .expect("fit scratch lock")
            .remove(&VehicleId(vehicle))
            .unwrap_or_default();
        let episode = self.fit_episode_inner(view, vehicle, batch, timers, &mut arena);
        self.fit_scratch
            .lock()
            .expect("fit scratch lock")
            .insert(VehicleId(vehicle), arena);
        episode
    }

    fn fit_episode_inner(
        &self,
        view: &VehicleView,
        vehicle: u32,
        batch: u64,
        timers: &MlTimers,
        arena: &mut vup_ml::TrainArena,
    ) -> FitEpisode {
        let policy = &self.resilience.retry;
        let deadline = self.resilience.deadline_nanos;
        let mut virtual_nanos: u64 = 0;
        let mut injected: u64 = 0;
        let mut attempt: u32 = 1;
        loop {
            let delay = self.faults.fit_delay_nanos(vehicle, batch, attempt);
            if delay > 0 {
                injected += 1;
                virtual_nanos = virtual_nanos.saturating_add(delay);
            }
            if let Some(budget) = deadline.filter(|&b| virtual_nanos > b) {
                return FitEpisode::DeadlineExceeded {
                    error: format!(
                        "deadline exceeded before attempt {attempt}: \
                         {virtual_nanos} virtual ns > {budget} ns budget"
                    ),
                    attempts: attempt - 1,
                    injected,
                };
            }
            let result = match self.faults.fit_fault(vehicle, batch, attempt) {
                Some(FitFault::Panic) => {
                    panic!("injected panic (vehicle {vehicle}, batch {batch}, attempt {attempt})")
                }
                Some(FitFault::Error) => {
                    injected += 1;
                    Err(format!(
                        "injected fit error (batch {batch}, attempt {attempt})"
                    ))
                }
                None => self.train(view, timers, arena).map_err(|e| e.to_string()),
            };
            match result {
                Ok(predictor) => {
                    return FitEpisode::Fitted {
                        predictor: Box::new(predictor),
                        attempts: attempt,
                        injected,
                    }
                }
                Err(error) => {
                    if attempt >= policy.max_attempts.max(1) {
                        return FitEpisode::Failed {
                            error,
                            attempts: attempt,
                            injected,
                        };
                    }
                    virtual_nanos = virtual_nanos.saturating_add(policy.backoff_nanos(attempt));
                    if let Some(budget) = deadline.filter(|&b| virtual_nanos > b) {
                        return FitEpisode::DeadlineExceeded {
                            error: format!(
                                "{error}; deadline exceeded after attempt {attempt}: \
                                 {virtual_nanos} virtual ns > {budget} ns budget"
                            ),
                            attempts: attempt,
                            injected,
                        };
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Records a failed episode with the breaker, then degrades (or
    /// fails) the vehicle. Coordinator-thread only.
    #[allow(clippy::too_many_arguments)]
    fn finish_failed_episode(
        &self,
        id: VehicleId,
        view: Arc<VehicleView>,
        error: String,
        view_nanos: u64,
        fit_nanos: u64,
        batch: u64,
        ctx: &SpanCtx,
    ) -> Prepared {
        if let Some(t) = self.breaker.record(id.0, batch, false) {
            self.publish_transition(t, ctx);
        }
        self.degrade(id, view, error, view_nanos, fit_nanos, ctx)
    }

    /// Fits the serde-saved fallback baseline (if one is configured) on
    /// the same view and readies it under [`ServePath::Degraded`]. The
    /// fallback model is deliberately *not* inserted into the store: the
    /// next batch retries the primary. Coordinator-thread only.
    fn degrade(
        &self,
        id: VehicleId,
        view: Arc<VehicleView>,
        reason: String,
        view_nanos: u64,
        fit_nanos: u64,
        ctx: &SpanCtx,
    ) -> Prepared {
        let Some(json) = &self.fallback_json else {
            return Prepared::Failed {
                reason,
                view_nanos,
                fit_nanos,
            };
        };
        let spec: BaselineSpec = serde_json::from_str(json).expect("saved fallback spec parses");
        let mut fallback = self.config.clone();
        fallback.model = ModelSpec::Baseline(spec);
        let now = view.len();
        // Unlike the primary, the fallback window clamps instead of
        // erroring on short series — degradation should absorb exactly
        // the failures the primary cannot.
        let train_from = match fallback.strategy {
            Strategy::Sliding => now.saturating_sub(fallback.train_window),
            Strategy::Expanding => 0,
        };
        let mut span = ctx.child("fallback_fit");
        span.arg("vehicle", id.0);
        let timers = self.ml_timers.for_span(&span.ctx());
        match FittedPredictor::fit_observed(&view, &fallback, train_from, now, &timers) {
            Ok(predictor) => Prepared::Ready {
                view,
                model: Arc::new(StoredModel {
                    predictor,
                    trained_at: now,
                }),
                path: ServePath::Degraded,
                view_nanos,
                fit_nanos,
                degraded_reason: Some(reason),
            },
            Err(e) => Prepared::Failed {
                reason: format!("{reason}; fallback fit failed: {e}"),
                view_nanos,
                fit_nanos,
            },
        }
    }

    /// Publishes a breaker transition as a counter bump and an instant
    /// trace event.
    fn publish_transition(&self, transition: BreakerTransition, ctx: &SpanCtx) {
        let counter = match transition.to {
            BreakerState::Open => &self.metrics.breaker_to_open,
            BreakerState::HalfOpen => &self.metrics.breaker_to_half_open,
            BreakerState::Closed => &self.metrics.breaker_to_closed,
        };
        counter.inc();
        let mut event = ctx.instant("breaker_transition");
        event.arg("vehicle", transition.vehicle_id);
        event.arg("to", transition.to.as_str());
    }

    /// Fits a model on the window ending at the view's last slot,
    /// recording into `timers` (a per-span clone of the service timers).
    /// The arena is the vehicle's reusable fit scratch — successive
    /// retrains of one vehicle recover the overlapping window rows.
    fn train(
        &self,
        view: &VehicleView,
        timers: &MlTimers,
        arena: &mut vup_ml::TrainArena,
    ) -> vup_core::Result<FittedPredictor> {
        let now = view.len();
        let train_from = match self.config.strategy {
            Strategy::Sliding => {
                if now < self.config.train_window {
                    return Err(vup_ml::MlError::NotEnoughSamples {
                        required: self.config.train_window,
                        actual: now,
                    });
                }
                now - self.config.train_window
            }
            Strategy::Expanding => 0,
        };
        FittedPredictor::fit_arena_observed(view, &self.config, train_from, now, timers, arena)
    }

    /// Resolves a vehicle's *full* view, memoizing it when the source is
    /// static. Sources are deterministic (trait contract), so concurrent
    /// fills of the same vehicle insert identical views and first-insert
    /// wins; live sources bypass the cache entirely.
    fn resolve_view(&self, id: VehicleId) -> Option<Arc<VehicleView>> {
        let memoize = self.views.is_static();
        if memoize {
            if let Some(view) = self.view_cache.read().expect("view cache lock").get(&id) {
                return Some(Arc::clone(view));
            }
        }
        let built = Arc::new(
            self.views
                .build_view(self.fleet, id, self.config.scenario)?,
        );
        if memoize {
            return Some(Arc::clone(
                self.view_cache
                    .write()
                    .expect("view cache lock")
                    .entry(id)
                    .or_insert(built),
            ));
        }
        Some(built)
    }

    /// Aggregated allocation/reuse counters over the per-vehicle fit
    /// arenas — the observable the allocation-budget test harness
    /// asserts on (flat `grows` across warm batches = steady-state fits
    /// allocate no design-matrix storage).
    pub fn scratch_stats(&self) -> vup_ml::ArenaStats {
        self.fit_scratch
            .lock()
            .expect("fit scratch lock")
            .values()
            .fold(vup_ml::ArenaStats::default(), |acc, arena| {
                acc.merged(arena.stats())
            })
    }

    /// First slot of the training window that ended at `trained_at`,
    /// mirroring [`PredictionService::train`]'s window arithmetic.
    fn train_window_start(&self, trained_at: usize) -> usize {
        match self.config.strategy {
            Strategy::Sliding => trained_at.saturating_sub(self.config.train_window),
            Strategy::Expanding => 0,
        }
    }
}

/// Truncates `text` to at most `max_chars` characters, replacing the
/// tail with `…` when anything was cut. Counts characters, not bytes,
/// so multibyte text (fault-injection reasons carry `→` and friends)
/// is never split mid-code-point.
pub fn ellipsize(text: &str, max_chars: usize) -> String {
    if text.chars().count() <= max_chars {
        return text.to_string();
    }
    let keep = max_chars.saturating_sub(1);
    let mut out: String = text.chars().take(keep).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_core::ModelSpec;
    use vup_fleetsim::fleet::FleetConfig;
    use vup_ml::baseline::BaselineSpec;
    use vup_ml::RegressorSpec;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            model: ModelSpec::Learned(RegressorSpec::Linear),
            train_window: 120,
            max_lag: 30,
            k: 10,
            retrain_every: 7,
            ..PipelineConfig::default()
        }
    }

    fn requests(ids: &[u32], horizon: usize) -> Vec<BatchRequest> {
        ids.iter()
            .map(|&id| BatchRequest {
                vehicle_id: VehicleId(id),
                horizon,
            })
            .collect()
    }

    #[test]
    fn first_batch_retrains_second_batch_serves_from_cache() {
        let fleet = Fleet::generate(FleetConfig::small(4, 11));
        let service = PredictionService::new(&fleet, fast_config(), 0).unwrap();
        let batch = requests(&[0, 1, 2, 3], 2);

        let first = service.serve_batch(&batch, None);
        assert_eq!(first.len(), 4);
        for outcome in &first {
            assert!(
                matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
                "{outcome:?}"
            );
        }
        assert_eq!(service.store().len(), 4);

        let second = service.serve_batch(&batch, None);
        for (a, b) in first.iter().zip(&second) {
            assert!(b.is_cache_hit(), "{b:?}");
            let (fa, fb) = (a.forecast().unwrap(), b.forecast().unwrap());
            assert_eq!(fa.hours.len(), 2);
            let bits = |f: &Forecast| f.hours.iter().map(|h| h.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(fa), bits(fb), "cached serve must match fresh serve");
            assert_eq!(fa.trained_at, fb.trained_at);
        }
    }

    #[test]
    fn duplicate_vehicles_in_one_batch_train_once() {
        let fleet = Fleet::generate(FleetConfig::small(2, 12));
        let service = PredictionService::new(&fleet, fast_config(), 2).unwrap();
        // Same vehicle four times with different horizons.
        let batch = vec![
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 3,
            },
            BatchRequest {
                vehicle_id: VehicleId(1),
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 2,
            },
        ];
        let outcomes = service.serve_batch(&batch, None);
        assert_eq!(service.store().len(), 2);
        for (request, outcome) in batch.iter().zip(&outcomes) {
            let forecast = outcome.forecast().unwrap();
            assert_eq!(forecast.vehicle_id, request.vehicle_id.0);
            assert_eq!(forecast.hours.len(), request.horizon);
        }
        // Shared-model consistency: the horizon-3 forecast starts with
        // the horizon-1 forecast.
        let h1 = outcomes[0].forecast().unwrap();
        let h3 = outcomes[1].forecast().unwrap();
        assert_eq!(h1.hours[0].to_bits(), h3.hours[0].to_bits());
    }

    #[test]
    fn bad_requests_are_skipped_with_reasons() {
        let fleet = Fleet::generate(FleetConfig::small(2, 13));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        let batch = vec![
            // Unknown vehicle.
            BatchRequest {
                vehicle_id: VehicleId(99),
                horizon: 1,
            },
            // Zero horizon.
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 0,
            },
            // Fine.
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 1,
            },
        ];
        let outcomes = service.serve_batch(&batch, None);
        match &outcomes[0] {
            ServeOutcome::Skipped {
                vehicle_id, reason, ..
            } => {
                assert_eq!(*vehicle_id, 99);
                assert!(reason.contains("not in fleet"), "{reason}");
            }
            other => panic!("expected skip, got {other:?}"),
        }
        assert!(matches!(&outcomes[1], ServeOutcome::Skipped { .. }));
        assert!(outcomes[2].forecast().is_some());
    }

    #[test]
    fn too_short_series_fails_with_the_error_not_fatal() {
        let fleet = Fleet::generate(FleetConfig::small(1, 14));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        // as_of smaller than the training window; no fallback configured
        // under the default resilience profile, so the fit error is a
        // Failed outcome carrying the underlying error.
        let outcomes = service.serve_batch(&requests(&[0], 1), Some(50));
        match &outcomes[0] {
            ServeOutcome::Failed {
                error, provenance, ..
            } => {
                assert!(error.contains("need at least"), "{error}");
                assert_eq!(provenance.path, ServePath::Failed);
                assert_eq!(provenance.reason.as_deref(), Some(error.as_str()));
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(service.store().is_empty());
    }

    #[test]
    fn fallback_degrades_a_failing_primary() {
        let fleet = Fleet::generate(FleetConfig::small(1, 14));
        let resilience = ResilienceConfig {
            fallback: Some(BaselineSpec::LastValue),
            ..ResilienceConfig::default()
        };
        let service = PredictionService::new(&fleet, fast_config(), 1)
            .unwrap()
            .with_resilience(resilience);
        // Same too-short series as above, but now the saved last-value
        // baseline absorbs the failure.
        let outcomes = service.serve_batch(&requests(&[0], 2), Some(50));
        match &outcomes[0] {
            ServeOutcome::Degraded(f) => {
                assert_eq!(f.hours.len(), 2);
                assert_eq!(f.provenance.path, ServePath::Degraded);
                assert_eq!(f.provenance.model_label, "LV");
                let reason = f.provenance.reason.as_deref().unwrap();
                assert!(reason.contains("need at least"), "{reason}");
            }
            other => panic!("expected degraded serve, got {other:?}"),
        }
        // The fallback never enters the cache: the next batch retries
        // the primary.
        assert!(service.store().is_empty());
    }

    #[test]
    fn injected_errors_retry_then_degrade_deterministically() {
        let fleet = Fleet::generate(FleetConfig::small(2, 31));
        let registry = Registry::new();
        let plan = FaultPlan {
            fail_vehicles: vec![0],
            ..FaultPlan::default()
        };
        let resilience = ResilienceConfig {
            retry: crate::resilience::RetryPolicy::with_attempts(2),
            fallback: Some(BaselineSpec::LastValue),
            ..ResilienceConfig::default()
        };
        let service = PredictionService::new_observed(&fleet, fast_config(), 2, &registry)
            .unwrap()
            .with_resilience(resilience)
            .with_faults(plan);
        let outcomes = service.serve_batch(&requests(&[0, 1], 1), None);
        assert!(outcomes[0].is_degraded(), "{:?}", outcomes[0]);
        assert!(
            matches!(&outcomes[1], ServeOutcome::RetrainedThenServed(_)),
            "{:?}",
            outcomes[1]
        );
        let counter = |name: &str| registry.counter(name).get();
        assert_eq!(
            counter("vup_serve_retries_total"),
            1,
            "one retry for vehicle 0"
        );
        assert_eq!(
            counter("vup_serve_faults_injected_total"),
            2,
            "both attempts faulted"
        );
        assert_eq!(
            registry
                .counter_with("vup_serve_outcomes_total", &[("outcome", "degraded")])
                .get(),
            1
        );
        // Only the healthy vehicle's model was cached.
        assert_eq!(service.store().len(), 1);
    }

    #[test]
    fn breaker_sheds_a_persistently_failing_vehicle() {
        let fleet = Fleet::generate(FleetConfig::small(2, 32));
        let registry = Registry::new();
        let plan = FaultPlan {
            fail_vehicles: vec![0],
            ..FaultPlan::default()
        };
        let resilience = ResilienceConfig {
            breaker: crate::resilience::BreakerConfig {
                failure_threshold: 2,
                cooldown_batches: 2,
            },
            fallback: Some(BaselineSpec::LastValue),
            ..ResilienceConfig::default()
        };
        let config = PipelineConfig {
            retrain_every: 1, // every batch is a fresh episode
            ..fast_config()
        };
        let service = PredictionService::new_observed(&fleet, config, 1, &registry)
            .unwrap()
            .with_resilience(resilience)
            .with_faults(plan);
        let batch = requests(&[0, 1], 1);
        // Batches 0,1 fail vehicle 0's episodes; the second opens the
        // breaker. Batch 2 is rejected outright (cooldown), batch 3
        // half-opens, probes, fails, and re-opens.
        for as_of in [200, 201, 202, 203] {
            let outcomes = service.serve_batch(&batch, Some(as_of));
            assert!(
                outcomes[0].is_degraded(),
                "as_of {as_of}: {:?}",
                outcomes[0]
            );
            assert!(outcomes[1].forecast().is_some());
        }
        assert_eq!(service.breaker().state(0), BreakerState::Open);
        assert_eq!(service.breaker().state(1), BreakerState::Closed);
        let transitions = |to: &str| {
            registry
                .counter_with("vup_serve_breaker_transitions_total", &[("to", to)])
                .get()
        };
        assert_eq!(transitions("open"), 2, "opened at batch 1, re-opened at 3");
        assert_eq!(transitions("half_open"), 1, "probed at batch 3");
        assert_eq!(transitions("closed"), 0);
        assert_eq!(
            registry.counter("vup_serve_breaker_rejections_total").get(),
            1
        );
        assert_eq!(registry.gauge("vup_serve_breaker_open").get(), 1.0);
    }

    #[test]
    fn virtual_deadline_stops_retry_episodes() {
        let fleet = Fleet::generate(FleetConfig::small(1, 33));
        let registry = Registry::new();
        let plan = FaultPlan {
            seed: 5,
            slow_rate: 1.0,
            slow_fit_nanos: 10_000,
            fail_vehicles: vec![0],
            ..FaultPlan::default()
        };
        let resilience = ResilienceConfig {
            retry: crate::resilience::RetryPolicy::with_attempts(5),
            deadline_nanos: Some(5_000),
            fallback: None,
            ..ResilienceConfig::default()
        };
        let service = PredictionService::new_observed(&fleet, fast_config(), 1, &registry)
            .unwrap()
            .with_resilience(resilience)
            .with_faults(plan);
        let outcomes = service.serve_batch(&requests(&[0], 1), None);
        match &outcomes[0] {
            ServeOutcome::Failed { error, .. } => {
                assert!(error.contains("deadline exceeded"), "{error}");
            }
            other => panic!("expected deadline failure, got {other:?}"),
        }
        assert_eq!(
            registry.counter("vup_serve_deadline_exceeded_total").get(),
            1
        );
    }

    #[test]
    fn advancing_as_of_past_retrain_every_retrains() {
        let fleet = Fleet::generate(FleetConfig::small(1, 15));
        let mut config = fast_config();
        config.model = ModelSpec::Baseline(BaselineSpec::LastValue);
        let retrain_every = config.retrain_every;
        let service = PredictionService::new(&fleet, config, 1).unwrap();
        let batch = requests(&[0], 1);

        let t0 = 200;
        assert!(!service.serve_batch(&batch, Some(t0))[0].is_cache_hit());
        // Within the cadence: cache hits.
        for dt in 1..retrain_every {
            assert!(
                service.serve_batch(&batch, Some(t0 + dt))[0].is_cache_hit(),
                "dt = {dt}"
            );
        }
        // At the cadence boundary: retrained.
        let outcome = &service.serve_batch(&batch, Some(t0 + retrain_every))[0];
        assert!(
            matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
            "{outcome:?}"
        );
        assert_eq!(
            outcome.forecast().unwrap().trained_at,
            t0 + retrain_every,
            "retrained on the advanced window"
        );
    }

    #[test]
    fn batches_are_deterministic_across_thread_counts() {
        let fleet = Fleet::generate(FleetConfig::small(6, 16));
        let batch = requests(&[0, 1, 2, 3, 4, 5], 3);
        let reference: Vec<ServeOutcome> = {
            let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
            service.serve_batch(&batch, None)
        };
        for threads in [2usize, 4, 0] {
            let service = PredictionService::new(&fleet, fast_config(), threads).unwrap();
            let outcomes = service.serve_batch(&batch, None);
            assert_eq!(outcomes, reference, "threads = {threads}");
        }
    }

    #[test]
    fn observed_service_counts_outcomes_and_stages() {
        let fleet = Fleet::generate(FleetConfig::small(3, 21));
        let registry = Registry::new();
        let service = PredictionService::new_observed(&fleet, fast_config(), 2, &registry).unwrap();
        let batch = vec![
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 2,
            },
            BatchRequest {
                vehicle_id: VehicleId(1),
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(99), // skipped: not in fleet
                horizon: 1,
            },
        ];
        service.serve_batch(&batch, None); // all misses → retrains
        service.serve_batch(&batch, None); // vehicles 0 and 1 → cache hits

        let counter =
            |name: &str, labels: &[(&str, &str)]| registry.counter_with(name, labels).get();
        assert_eq!(counter("vup_serve_batches_total", &[]), 2);
        assert_eq!(counter("vup_serve_requests_total", &[]), 6);
        let outcome = |o: &str| counter("vup_serve_outcomes_total", &[("outcome", o)]);
        assert_eq!(outcome("retrained"), 2);
        assert_eq!(outcome("served"), 2);
        assert_eq!(outcome("skipped"), 2);
        // The three outcome series always sum to the requests served.
        assert_eq!(
            registry
                .snapshot()
                .counter_total("vup_serve_outcomes_total"),
            counter("vup_serve_requests_total", &[])
        );

        // Stage histograms saw work: one view build per known vehicle per
        // batch, one fit per miss, one predict per resolvable request.
        let stage = |s: &str| {
            registry
                .histogram_with("vup_serve_stage_nanos", &[("stage", s)], Buckets::latency())
                .count()
        };
        assert_eq!(stage("view_build"), 6);
        assert_eq!(stage("fit"), 2);
        assert_eq!(stage("predict"), 4);
        // ML timers fired underneath the fit/predict stages.
        assert_eq!(
            registry
                .histogram("vup_ml_fit_nanos", Buckets::latency())
                .count(),
            2
        );
        assert!(
            registry
                .histogram("vup_ml_predict_nanos", Buckets::latency())
                .count()
                >= 4
        );
        // Store counters: 2 retrains, 2 hits, 2 absent misses.
        assert_eq!(counter("vup_store_retrains_total", &[]), 2);
        assert_eq!(counter("vup_store_hits_total", &[]), 2);
        assert_eq!(registry.gauge("vup_store_models").get(), 2.0);
    }

    #[test]
    fn observed_service_forecasts_match_unobserved_bitwise() {
        let fleet = Fleet::generate(FleetConfig::small(4, 22));
        let batch = requests(&[0, 1, 2, 3], 3);
        let plain = PredictionService::new(&fleet, fast_config(), 2).unwrap();
        let registry = Registry::new();
        let observed =
            PredictionService::new_observed(&fleet, fast_config(), 2, &registry).unwrap();
        for round in 0..2 {
            let a = plain.serve_batch(&batch, None);
            let b = observed.serve_batch(&batch, None);
            assert_eq!(
                a, b,
                "round {round}: instrumentation must not perturb forecasts"
            );
        }
        assert!(registry.counter("vup_serve_requests_total").get() > 0);
    }

    #[test]
    fn invalidation_forces_a_retrain() {
        let fleet = Fleet::generate(FleetConfig::small(1, 17));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        let batch = requests(&[0], 1);
        service.serve_batch(&batch, None);
        assert!(service.serve_batch(&batch, None)[0].is_cache_hit());
        service.store().invalidate(VehicleId(0));
        assert!(!service.serve_batch(&batch, None)[0].is_cache_hit());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let fleet = Fleet::generate(FleetConfig::small(1, 18));
        let mut config = fast_config();
        config.retrain_every = 0;
        assert!(PredictionService::new(&fleet, config, 1).is_err());
    }

    #[test]
    fn provenance_distinguishes_cache_paths_and_window_bounds() {
        let fleet = Fleet::generate(FleetConfig::small(1, 23));
        let config = fast_config();
        let (train_window, retrain_every) = (config.train_window, config.retrain_every);
        let fingerprint = ModelStore::fingerprint(&config);
        let service = PredictionService::new(&fleet, config, 1).unwrap();
        let batch = requests(&[0], 2);

        let t0 = 200;
        // First sight of the vehicle: the cache has no entry.
        let first = &service.serve_batch(&batch, Some(t0))[0];
        let p = first.provenance();
        assert_eq!(p.path, ServePath::RetrainedAbsent);
        assert_eq!(p.vehicle_id, 0);
        assert_eq!(p.horizon, 2);
        assert_eq!(p.config_fingerprint, fingerprint);
        assert_eq!(p.model_label, "LR");
        assert_eq!(p.trained_at, Some(t0));
        assert_eq!(p.train_from, Some(t0 - train_window));
        assert_eq!(p.selected_lags.len(), 10);
        assert_eq!(p.reason, None);

        // Same day again: fresh model, straight cache hit.
        let second = &service.serve_batch(&batch, Some(t0))[0];
        assert_eq!(second.provenance().path, ServePath::CacheHit);
        assert_eq!(second.provenance().trained_at, Some(t0));

        // Past the cadence: the entry exists but aged out.
        let third = &service.serve_batch(&batch, Some(t0 + retrain_every))[0];
        let p3 = third.provenance();
        assert_eq!(p3.path, ServePath::RetrainedStale);
        assert_eq!(p3.trained_at, Some(t0 + retrain_every));
        assert_eq!(p3.train_from, Some(t0 + retrain_every - train_window));
    }

    #[test]
    fn skipped_outcomes_carry_failed_provenance() {
        let fleet = Fleet::generate(FleetConfig::small(2, 24));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        let batch = vec![
            BatchRequest {
                vehicle_id: VehicleId(99), // not in fleet
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(0), // zero horizon
                horizon: 0,
            },
            BatchRequest {
                vehicle_id: VehicleId(1),
                horizon: 1,
            },
        ];
        let outcomes = service.serve_batch(&batch, None);

        let p0 = outcomes[0].provenance();
        assert_eq!(p0.path, ServePath::Failed);
        assert_eq!(p0.vehicle_id, 99);
        assert!(p0.reason.as_deref().unwrap().contains("not in fleet"));
        assert_eq!(p0.trained_at, None);
        assert_eq!(p0.train_from, None);
        assert!(p0.selected_lags.is_empty());

        let p1 = outcomes[1].provenance();
        assert_eq!(p1.path, ServePath::Failed);
        assert!(p1.reason.is_some());

        // The journal covers every request, failures included, in order.
        let journal = ServeJournal::from_outcomes(&outcomes);
        assert_eq!(journal.records.len(), outcomes.len());
        assert_eq!(
            journal
                .records
                .iter()
                .map(|r| r.vehicle_id)
                .collect::<Vec<_>>(),
            vec![99, 0, 1]
        );
        let failed = journal
            .records
            .iter()
            .filter(|r| r.path == ServePath::Failed)
            .count();
        assert_eq!(failed, 2);
    }

    #[test]
    fn journal_round_trips_through_json() {
        let fleet = Fleet::generate(FleetConfig::small(2, 25));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        let batch = vec![
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 2,
            },
            BatchRequest {
                vehicle_id: VehicleId(42), // skipped
                horizon: 1,
            },
        ];
        let journal = ServeJournal::from_outcomes(&service.serve_batch(&batch, None));
        let text = journal.to_json();
        assert!(text.contains("\"config_fingerprint\""));
        assert!(text.contains("\"RetrainedAbsent\""));
        assert!(text.contains("\"Failed\""));
        let parsed = ServeJournal::from_json(&text).unwrap();
        assert_eq!(parsed, journal);
    }

    #[test]
    fn traced_batches_match_untraced_and_record_a_span_tree() {
        let fleet = Fleet::generate(FleetConfig::small(3, 26));
        let batch = requests(&[0, 1, 2], 2);
        let plain = PredictionService::new(&fleet, fast_config(), 2).unwrap();
        let reference = plain.serve_batch(&batch, None);

        let tracer = Tracer::new();
        let traced = PredictionService::new(&fleet, fast_config(), 2)
            .unwrap()
            .with_tracer(tracer.clone());
        let outcomes = traced.serve_batch(&batch, None);
        assert_eq!(outcomes, reference, "tracing must not perturb forecasts");

        let snapshot = tracer.snapshot();
        let count = |name: &str| snapshot.events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("serve_batch"), 1);
        assert_eq!(count("prepare"), 1);
        assert_eq!(count("serve"), 1);
        assert_eq!(count("view_build"), 3);
        assert_eq!(count("fit"), 3);
        assert_eq!(count("predict"), 3);
        assert_eq!(count("ml_fit"), 3, "ml fits nest under the fit spans");

        // Parent linkage: every view_build/fit hangs off the prepare
        // span; every predict hangs off the serve span.
        let id_of = |name: &str| {
            snapshot
                .events
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.id)
                .unwrap()
        };
        let (prepare_id, serve_id) = (id_of("prepare"), id_of("serve"));
        for event in &snapshot.events {
            match event.name {
                "view_build" | "fit" => assert_eq!(event.parent, prepare_id, "{event:?}"),
                "predict" => assert_eq!(event.parent, serve_id, "{event:?}"),
                _ => {}
            }
        }

        // The tree renders and exports without panicking.
        assert!(snapshot.to_text_tree().contains("serve_batch"));
        assert!(snapshot.to_chrome_json().contains("\"traceEvents\""));
    }

    #[test]
    fn disabled_tracer_service_records_nothing() {
        let fleet = Fleet::generate(FleetConfig::small(1, 27));
        let tracer = Tracer::disabled();
        let service = PredictionService::new(&fleet, fast_config(), 1)
            .unwrap()
            .with_tracer(tracer.clone());
        let outcomes = service.serve_batch(&requests(&[0], 1), None);
        assert!(outcomes[0].forecast().is_some());
        assert!(tracer.snapshot().is_empty());
        // Without a live registry every stage reads as zero: the disabled
        // path never touched the clock.
        assert_eq!(outcomes[0].provenance().stage_nanos, StageNanos::default());
    }

    #[test]
    fn with_store_serves_through_a_durable_store_across_restarts() {
        let dir = std::env::temp_dir().join(format!("vup-serve-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fleet = Fleet::generate(FleetConfig::small(3, 28));
        let batch = requests(&[0, 1, 2], 2);

        // First "process": train, serve, persist.
        let first = {
            let service = PredictionService::new(&fleet, fast_config(), 1)
                .unwrap()
                .with_store(ModelStore::open(&dir).unwrap());
            let outcomes = service.serve_batch(&batch, None);
            for outcome in &outcomes {
                assert!(
                    matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
                    "{outcome:?}"
                );
            }
            outcomes
        };

        // Second "process": warm start — every request is a cache hit
        // and the forecasts are bit-identical to the pre-crash ones.
        let store = ModelStore::open(&dir).unwrap();
        let recovery = store.recovery().cloned();
        assert_eq!(recovery.as_ref().unwrap().recovered, 3);
        let service = PredictionService::new(&fleet, fast_config(), 1)
            .unwrap()
            .with_store(store);
        let second = service.serve_batch(&batch, None);
        for (a, b) in first.iter().zip(&second) {
            assert!(b.is_cache_hit(), "warm-started model must serve: {b:?}");
            let bits = |f: &Forecast| f.hours.iter().map(|h| h.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(a.forecast().unwrap()),
                bits(b.forecast().unwrap()),
                "recovered model must reproduce pre-crash forecasts"
            );
        }

        // The journal can carry the recovery report alongside the records.
        let journal = ServeJournal::from_outcomes(&second).with_recovery(recovery);
        let parsed = ServeJournal::from_json(&journal.to_json()).unwrap();
        assert_eq!(parsed, journal);
        assert_eq!(parsed.recovery.unwrap().recovered, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journals_without_recovery_omit_it_and_round_trip() {
        let journal = ServeJournal::default();
        assert!(journal.recovery.is_none());
        let parsed = ServeJournal::from_json(&journal.to_json()).unwrap();
        assert!(parsed.recovery.is_none());
    }

    #[test]
    fn ellipsize_cuts_on_char_boundaries() {
        // ASCII: short strings pass through, long ones end in `…`.
        assert_eq!(ellipsize("short", 10), "short");
        assert_eq!(ellipsize("exactly-10", 10), "exactly-10");
        assert_eq!(ellipsize("elevenchars", 10), "elevencha…");

        // Multibyte: the cut lands between characters, never inside one.
        // "breaker open → shed vehicle №7" has 2- and 3-byte characters.
        let reason = "breaker open → shed vehicle №7";
        let cut = ellipsize(reason, 16);
        assert_eq!(cut, "breaker open → …");
        assert_eq!(cut.chars().count(), 16);
        // The result is valid UTF-8 by construction; also check we keep
        // whole multibyte chars when the boundary lands right after one.
        assert_eq!(ellipsize("№№№№", 3), "№№…");
        assert_eq!(ellipsize("№№№№", 4), "№№№№");
        assert_eq!(ellipsize("", 0), "");
        assert_eq!(ellipsize("ab", 0), "…");
    }
}
