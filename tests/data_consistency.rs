//! Consistency between the two data-generation paths and the preparation
//! pipeline: the daily fast path and the 10-minute full-fidelity path
//! must tell the same story after cleaning and aggregation.

use vehicle_usage_prediction::dataprep::pipeline::{self, CAN_CHANNEL_NAMES};
use vehicle_usage_prediction::dataprep::Value;
use vehicle_usage_prediction::fleetsim::calendar::Date;
use vehicle_usage_prediction::fleetsim::dropout::DropoutConfig;
use vehicle_usage_prediction::fleetsim::generator;
use vehicle_usage_prediction::prelude::*;
use vehicle_usage_prediction::tseries::DailySeries;

#[test]
fn raw_path_recovers_fast_path_hours_over_a_fortnight() {
    let fleet = Fleet::generate(FleetConfig::small(6, 4242));
    let id = VehicleId(3);
    let start = Date::new(2016, 5, 2).expect("valid");
    let prepared = pipeline::prepare_vehicle_days(&fleet, id, start, 14, &DropoutConfig::none())
        .expect("pipeline runs");
    let reference = generator::generate_history(&fleet, id);
    let offset = (start.day_index() - reference.start_day()) as usize;
    for (got, want) in prepared
        .records
        .iter()
        .zip(&reference.records[offset..offset + 14])
    {
        assert_eq!(got.date, want.date);
        // Hours are recovered from report counts: exact to one report.
        assert!(
            (got.hours - want.hours).abs() <= 0.4,
            "{}: {} vs {}",
            got.date,
            got.hours,
            want.hours
        );
        // Activity flags must agree exactly.
        assert_eq!(got.hours > 0.0, want.hours > 0.0);
    }
}

#[test]
fn prepared_table_matches_view_slots() {
    // The relational table (dataprep) and the model view (core) are two
    // projections of the same records; their hour columns must agree.
    let fleet = Fleet::generate(FleetConfig::small(6, 31337));
    let id = VehicleId(1);
    let history = generator::generate_history(&fleet, id);
    let table = pipeline::daily_records_to_table(&fleet, id, &history.records[..200])
        .expect("transformable");
    let view = VehicleView::from_history(&fleet, &history, Scenario::NextDay);
    let hours = table.float_column("hours").expect("column exists");
    for (i, h) in hours.iter().enumerate() {
        assert_eq!(h.expect("hours never null"), view.slot(i).hours);
    }
    // Calendar flags in the table match the view's encoding.
    let mon = table.float_column("dow_mon").expect("column exists");
    for (i, m) in mon.iter().enumerate().take(200) {
        assert_eq!(m.expect("flag never null"), view.slot(i).calendar[0]);
    }
}

#[test]
fn utilization_series_roundtrips_through_tseries() {
    let fleet = Fleet::generate(FleetConfig::small(4, 808));
    let history = generator::generate_history(&fleet, VehicleId(0));
    let series = DailySeries::new(history.start_day(), history.hours_series());
    assert_eq!(series.len(), fleet.config().n_days());
    // Weekly totals cover the whole period.
    let weekly = series.weekly_totals();
    assert_eq!(weekly.len(), fleet.config().n_days().div_ceil(7));
    let total: f64 = weekly.iter().sum();
    let direct: f64 = history.hours_series().iter().sum();
    assert!((total - direct).abs() < 1e-9);
}

#[test]
fn dropout_does_not_create_usage_from_nothing() {
    // Whatever the defects, a day the vehicle never worked must aggregate
    // to zero hours (dropout only removes/corrupts, never invents engine
    // time).
    let fleet = Fleet::generate(FleetConfig::small(4, 99));
    let id = VehicleId(2);
    let history = generator::generate_history(&fleet, id);
    let idle = history
        .records
        .iter()
        .find(|r| r.hours == 0.0)
        .expect("idle day exists");
    let noisy = DropoutConfig {
        outage_prob: 0.5,
        field_missing_prob: 0.3,
        corrupt_prob: 0.2,
        duplicate_prob: 0.2,
    };
    let prepared =
        pipeline::prepare_vehicle_days(&fleet, id, idle.date, 1, &noisy).expect("pipeline runs");
    assert_eq!(prepared.records[0].hours, 0.0);
}

#[test]
fn relational_table_schema_is_complete() {
    let fleet = Fleet::generate(FleetConfig::small(4, 5));
    let id = VehicleId(0);
    let history = generator::generate_history(&fleet, id);
    let table = pipeline::daily_records_to_table(&fleet, id, &history.records[..30]).expect("ok");
    for name in CAN_CHANNEL_NAMES {
        assert!(
            table.schema().index_of(name).is_ok(),
            "missing CAN column {name}"
        );
    }
    assert_eq!(table.get(0, "vehicle_id").expect("cell"), Value::Int(0));
    // Dates format as ISO strings.
    match table.get(0, "date").expect("cell") {
        Value::Str(s) => assert_eq!(s, "2015-01-01"),
        other => panic!("unexpected date cell {other:?}"),
    }
}

#[test]
fn fleet_statistics_hold_at_scale() {
    // Fig. 1a calibration targets on a mid-size fleet: refuse compactors
    // used a paper-reported ~36 % of days (2017), graders > 6 h median on
    // active days, coring machines < 1 h.
    let fleet = Fleet::generate(FleetConfig::small(300, 2019));
    let mut compactor_days = 0usize;
    let mut compactor_active = 0usize;
    let mut grader_hours = Vec::new();
    let mut coring_hours = Vec::new();
    for v in fleet.vehicles() {
        match v.vtype {
            VehicleType::RefuseCompactor => {
                let h = generator::generate_history(&fleet, v.id);
                // 2017 only (paper: "used 36 % of the days in 2017").
                for r in &h.records {
                    if r.date.year == 2017 {
                        compactor_days += 1;
                        compactor_active += (r.hours > 0.0) as usize;
                    }
                }
            }
            VehicleType::Grader => {
                let h = generator::generate_history(&fleet, v.id);
                grader_hours.extend(h.hours_series().into_iter().filter(|&x| x > 0.0));
            }
            VehicleType::CoringMachine => {
                let h = generator::generate_history(&fleet, v.id);
                coring_hours.extend(h.hours_series().into_iter().filter(|&x| x > 0.0));
            }
            _ => {}
        }
    }
    let rate = compactor_active as f64 / compactor_days as f64;
    assert!(
        (0.25..0.5).contains(&rate),
        "refuse-compactor 2017 usage rate {rate:.2} (paper: 0.36)"
    );
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs[xs.len() / 2]
    };
    assert!(median(&mut grader_hours) > 4.5);
    assert!(median(&mut coring_hours) < 1.5);
}
