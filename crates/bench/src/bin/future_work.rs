//! §5 future-work experiments: weather context and discrete usage levels.
//!
//! The paper's conclusions name two future developments; both are
//! implemented and evaluated here:
//!
//! **A. Weather enrichment** — on a fleet generated with
//! `weather_effects = true` (rained-out / frozen sites stand down), the
//! next-day pipeline is evaluated with and without the target day's
//! weather-forecast features. The weather features must buy accuracy on
//! the weather-driven fleet and be neutral on the baseline fleet.
//!
//! **B. Usage-level classification** — a softmax classifier on the same
//! windowed features predicts the next day's discrete usage level
//! (idle / low / medium / high), compared against discretized regression
//! and the majority-class baseline.
//!
//! Run with: `cargo run --release -p vup-bench --bin future_work`

use serde::Serialize;
use vup_bench::{evaluable_ids, print_header, write_json, EXPERIMENT_SEED};
use vup_core::evaluate::evaluate_vehicle;
use vup_core::levels::{compare_level_predictors, UsageLevel};
use vup_core::{ModelSpec, PipelineConfig, Scenario, VehicleView};
use vup_fleetsim::{Fleet, FleetConfig};
use vup_ml::RegressorSpec;

const N_VEHICLES: usize = 20;
const EVAL_TAIL: usize = 300;

#[derive(Serialize)]
struct FutureWorkOutput {
    weather_fleet_pe_without: f64,
    weather_fleet_pe_with: f64,
    baseline_fleet_pe_without: f64,
    baseline_fleet_pe_with: f64,
    classifier_accuracy: f64,
    discretized_regression_accuracy: f64,
    majority_accuracy: f64,
    classifier_macro_f1: f64,
}

fn base_config() -> PipelineConfig {
    PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::lasso_paper()),
        scenario: Scenario::NextDay,
        retrain_every: 7,
        eval_tail: Some(EVAL_TAIL),
        ..PipelineConfig::default()
    }
}

fn mean_pe(fleet: &Fleet, cfg: &PipelineConfig) -> f64 {
    let ids = evaluable_ids(fleet, cfg, cfg.scenario, N_VEHICLES);
    let pes: Vec<f64> = ids
        .iter()
        .filter_map(|&id| {
            let view = VehicleView::build(fleet, id, cfg.scenario);
            evaluate_vehicle(&view, cfg)
                .ok()
                .map(|e| e.percentage_error)
        })
        .collect();
    pes.iter().sum::<f64>() / pes.len() as f64
}

fn main() {
    // ---------------------------------------------- A. weather enrichment
    println!("== Future work A: weather-forecast features (paper §5) ==\n");
    let weather_fleet = Fleet::generate(FleetConfig {
        n_vehicles: 200,
        seed: EXPERIMENT_SEED,
        weather_effects: true,
        ..FleetConfig::default()
    });
    let baseline_fleet = Fleet::generate(FleetConfig {
        n_vehicles: 200,
        seed: EXPERIMENT_SEED,
        weather_effects: false,
        ..FleetConfig::default()
    });

    let without = base_config();
    let mut with = base_config();
    with.features.target_weather = true;

    let weather_without = mean_pe(&weather_fleet, &without);
    let weather_with = mean_pe(&weather_fleet, &with);
    let plain_without = mean_pe(&baseline_fleet, &without);
    let plain_with = mean_pe(&baseline_fleet, &with);

    print_header(&[("fleet", 16), ("no-weather", 12), ("with-weather", 13)]);
    println!(
        "{:>16} {:>11.1}% {:>12.1}%",
        "weather-driven", weather_without, weather_with
    );
    println!(
        "{:>16} {:>11.1}% {:>12.1}%",
        "baseline", plain_without, plain_with
    );
    println!(
        "\nOn the weather-driven fleet the forecast features cut mean PE by {:.1} pp;\n\
         on the baseline fleet they are neutral (uninformative features, regularized away).\n",
        weather_without - weather_with
    );

    // ------------------------------------- B. usage-level classification
    println!("== Future work B: discrete usage-level classification (paper §5) ==\n");
    let cfg = base_config();
    let ids = evaluable_ids(&baseline_fleet, &cfg, cfg.scenario, N_VEHICLES);
    let mut acc = [0.0_f64; 3]; // classifier, discretized regression, majority
    let mut f1 = 0.0_f64;
    let mut n = 0usize;
    let mut pooled_confusion = [[0usize; 4]; 4];
    for &id in &ids {
        let view = VehicleView::build(&baseline_fleet, id, cfg.scenario);
        let train_to = view.len().saturating_sub(EVAL_TAIL);
        if train_to < cfg.train_window {
            continue;
        }
        match compare_level_predictors(&view, &cfg, train_to - cfg.train_window, train_to) {
            Ok(cmp) => {
                acc[0] += cmp.classifier.accuracy;
                acc[1] += cmp.discretized_regression.accuracy;
                acc[2] += cmp.majority.accuracy;
                f1 += cmp.classifier.macro_f1;
                for (pooled_row, cmp_row) in
                    pooled_confusion.iter_mut().zip(&cmp.classifier.confusion)
                {
                    for (pooled, &count) in pooled_row.iter_mut().zip(cmp_row) {
                        *pooled += count;
                    }
                }
                n += 1;
            }
            Err(e) => eprintln!("vehicle {}: skipped ({e})", id.0),
        }
    }
    let n_f = n as f64;
    print_header(&[("method", 24), ("accuracy", 10), ("macro-F1", 10)]);
    println!(
        "{:>24} {:>9.1}% {:>9.2}",
        "softmax classifier",
        100.0 * acc[0] / n_f,
        f1 / n_f
    );
    println!(
        "{:>24} {:>9.1}% {:>10}",
        "discretized regression",
        100.0 * acc[1] / n_f,
        "-"
    );
    println!(
        "{:>24} {:>9.1}% {:>10}",
        "majority baseline",
        100.0 * acc[2] / n_f,
        "-"
    );

    println!("\nPooled confusion matrix (rows = actual, cols = predicted):");
    print!("{:>8}", "");
    for l in UsageLevel::ALL {
        print!("{:>8}", l.label());
    }
    println!();
    for (l, row) in UsageLevel::ALL.iter().zip(&pooled_confusion) {
        print!("{:>8}", l.label());
        for count in row {
            print!("{count:>8}");
        }
        println!();
    }

    let output = FutureWorkOutput {
        weather_fleet_pe_without: weather_without,
        weather_fleet_pe_with: weather_with,
        baseline_fleet_pe_without: plain_without,
        baseline_fleet_pe_with: plain_with,
        classifier_accuracy: acc[0] / n_f,
        discretized_regression_accuracy: acc[1] / n_f,
        majority_accuracy: acc[2] / n_f,
        classifier_macro_f1: f1 / n_f,
    };
    let path = write_json("future_work", &output);
    println!("\nFull data written to {}", path.display());
}
