//! Bounded MPMC queue — the admission-control primitive.
//!
//! The server's acceptor pushes accepted connections here and the fixed
//! worker pool pops them; the bound is the backpressure contract: when
//! the queue is full the acceptor *sheds* (answers `503 Retry-After`)
//! instead of buffering without limit. A `Mutex<VecDeque>` + `Condvar`
//! is deliberately boring — admission control is a cold path next to
//! request handling, and the tier-1 property is the invariant (never
//! over capacity, shed iff full at push time), pinned by a shadow-model
//! proptest in `tests/admission.rs`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a [`Bounded::try_push`] was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue held `capacity` items; the caller should shed.
    Full(T),
    /// The queue was closed; no further work is admitted.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` if the queue has room, never blocking. Returns the
    /// item back on a full or closed queue so the caller can shed it.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next item, blocking up to `patience` at a time.
    ///
    /// Returns `None` when the queue is closed *and* drained — the
    /// worker-pool exit condition. Spurious `None`s never happen: a
    /// timeout just re-waits unless the queue has been closed.
    pub fn pop_wait(&self, patience: Duration) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, _timeout) = self
                .ready
                .wait_timeout(inner, patience)
                .expect("queue lock");
            inner = guard;
        }
    }

    /// Pops without blocking (drain helper).
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().expect("queue lock").items.pop_front()
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and poppers drain the remaining items then get `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_respects_capacity_and_returns_the_item() {
        let queue = Bounded::new(2);
        assert!(queue.try_push(1).is_ok());
        assert!(queue.try_push(2).is_ok());
        assert_eq!(queue.try_push(3), Err(PushError::Full(3)));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.try_pop(), Some(1));
        assert!(queue.try_push(3).is_ok(), "room after a pop");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let queue = Bounded::new(4);
        queue.try_push('a').unwrap();
        queue.close();
        assert_eq!(queue.try_push('b'), Err(PushError::Closed('b')));
        assert_eq!(queue.pop_wait(Duration::from_millis(1)), Some('a'));
        assert_eq!(queue.pop_wait(Duration::from_millis(1)), None);
    }

    #[test]
    fn pop_wait_wakes_on_push_across_threads() {
        let queue = Arc::new(Bounded::new(1));
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                queue.try_push(42u64).unwrap();
            })
        };
        let got = queue.pop_wait(Duration::from_secs(5));
        producer.join().unwrap();
        assert_eq!(got, Some(42));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let queue = Bounded::new(0);
        assert_eq!(queue.capacity(), 1);
        assert!(queue.try_push(()).is_ok());
    }
}
