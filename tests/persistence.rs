//! Crash-and-recover chaos tests for the durable snapshot store: a
//! seeded disk-fault plan (torn writes, bit flips, transient io errors)
//! applied across a persist → "kill" → recover → serve cycle must be
//! bit-identical at every thread count, must quarantine exactly the
//! files an independent read-only audit condemns, and must account for
//! every file ever written as either recovered or quarantined. A full
//! disk degrades persistence — never serving.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use vehicle_usage_prediction::prelude::*;
use vehicle_usage_prediction::serve::{audit, DiskFaultPlan, ModelStore, RecoveryStats};

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        model: ModelSpec::Learned(RegressorSpec::Linear),
        train_window: 120,
        max_lag: 30,
        k: 10,
        retrain_every: 7,
        ..PipelineConfig::default()
    }
}

fn requests(ids: &[u32], horizon: usize) -> Vec<BatchRequest> {
    ids.iter()
        .map(|&id| BatchRequest {
            vehicle_id: VehicleId(id),
            horizon,
        })
        .collect()
}

fn forecast_bits(outcomes: &[ServeOutcome]) -> Vec<Vec<u64>> {
    outcomes
        .iter()
        .map(|o| {
            o.forecast()
                .map(|f| f.hours.iter().map(|h| h.to_bits()).collect())
                .unwrap_or_default()
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vup-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The issue's chaos plan: torn writes, bit flips and transient io
/// errors together. `io_error_attempts` stays below the store's retry
/// budget, so transient errors cost retries — never data.
fn disk_plan() -> DiskFaultPlan {
    DiskFaultPlan {
        torn_write_rate: 0.3,
        torn_write_byte: 24,
        bit_flip_rate: 0.25,
        io_error_rate: 0.3,
        io_error_attempts: 2,
        full_disk_after_bytes: None,
    }
}

const CHAOS_SEED: u64 = 77;

fn faulty_disk(seed: u64, plan: DiskFaultPlan) -> Box<FaultyBackend> {
    Box::new(FaultyBackend::new(Box::new(DiskBackend), seed, plan))
}

/// `.snap` files currently in `dir` (ground truth via the real fs).
fn snapshots_on_disk(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".snap"))
        .collect();
    names.sort();
    names
}

/// What one full persist → kill → recover → serve cycle produced.
#[derive(Debug, PartialEq)]
struct CycleReport {
    bits_before: Vec<Vec<u64>>,
    bits_after: Vec<Vec<u64>>,
    files_written: usize,
    expected_bad: BTreeMap<String, &'static str>,
    quarantined: BTreeMap<String, String>,
    recovered: usize,
    files_seen: usize,
}

/// Runs the cycle at one thread count; every fault decision comes from
/// the seeded plan, so the report must not depend on `threads`.
fn chaos_cycle(threads: usize) -> CycleReport {
    let dir = temp_dir(&format!("cycle-t{threads}"));
    let fleet = Fleet::generate(FleetConfig::small(8, 4242));
    let batch = requests(&[0, 1, 2, 3, 4, 5, 6, 7], 2);

    // Phase A — first process: retrain everything, persist through the
    // faulty disk, then "kill -9" (drop without any shutdown protocol).
    let registry_a = Registry::new();
    let store = ModelStore::open_with(
        faulty_disk(CHAOS_SEED, disk_plan()),
        &dir,
        &registry_a,
        &Tracer::disabled(),
    )
    .unwrap();
    let service = PredictionService::new(&fleet, fast_config(), threads)
        .unwrap()
        .with_store(store);
    let before = service.serve_batch(&batch, None);
    for outcome in &before {
        assert!(
            matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
            "{outcome:?}"
        );
    }
    // Transient errors stay below the store's retry budget: every
    // snapshot reaches disk (some of them torn).
    assert_eq!(
        registry_a.counter("vup_store_persisted_total").get(),
        batch.len() as u64
    );
    assert_eq!(
        registry_a.counter("vup_store_persist_failed_total").get(),
        0
    );
    let bits_before = forecast_bits(&before);
    drop(service);
    let files_written = snapshots_on_disk(&dir).len();
    assert_eq!(files_written, batch.len(), "one snapshot per vehicle");

    // Independent expectation: a read-only audit through an identically
    // seeded faulty disk condemns exactly the files recovery must
    // quarantine (torn prefixes on disk, bit flips on read).
    let auditor = faulty_disk(CHAOS_SEED, disk_plan());
    let expected_bad: BTreeMap<String, &'static str> = audit(auditor.as_ref(), &dir)
        .unwrap()
        .into_iter()
        .filter_map(|e| e.verdict.err().map(|d| (e.file, d.as_str())))
        .collect();

    // Phase B — second process: recover through a fresh faulty disk,
    // then serve the same batch.
    let registry_b = Registry::new();
    let store = ModelStore::open_with(
        faulty_disk(CHAOS_SEED, disk_plan()),
        &dir,
        &registry_b,
        &Tracer::disabled(),
    )
    .unwrap();
    let stats: RecoveryStats = store.recovery().unwrap().clone();
    let quarantined: BTreeMap<String, String> = stats
        .quarantined
        .iter()
        .map(|q| (q.file.clone(), q.reason.clone()))
        .collect();
    assert_eq!(
        registry_b.counter("vup_store_recovered_total").get(),
        stats.recovered as u64
    );

    let service = PredictionService::new(&fleet, fast_config(), threads)
        .unwrap()
        .with_store(store);
    let after = service.serve_batch(&batch, None);
    // Never crashes, never serves a corrupt model: quarantined vehicles
    // retrain, recovered vehicles serve their warm-started model as a
    // cache hit, and every forecast matches the pre-crash run bit for
    // bit either way.
    for (request, outcome) in batch.iter().zip(&after) {
        let file_prefix = format!("v{:08}-", request.vehicle_id.0);
        let was_quarantined = quarantined.keys().any(|f| f.starts_with(&file_prefix));
        if was_quarantined {
            assert!(
                matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
                "vehicle {}: lost snapshot must retrain, got {outcome:?}",
                request.vehicle_id.0
            );
        } else {
            assert!(
                outcome.is_cache_hit(),
                "vehicle {}: recovered snapshot must serve, got {outcome:?}",
                request.vehicle_id.0
            );
        }
    }
    let bits_after = forecast_bits(&after);
    assert_eq!(bits_after, bits_before, "recovery must not change a number");

    let _ = std::fs::remove_dir_all(&dir);
    CycleReport {
        bits_before,
        bits_after,
        files_written,
        expected_bad,
        quarantined,
        recovered: stats.recovered,
        files_seen: stats.files_seen,
    }
}

#[test]
fn disk_chaos_cycle_is_deterministic_and_accounts_for_every_file() {
    let reference = chaos_cycle(1);

    // The plan actually bites, in both directions.
    assert!(
        !reference.quarantined.is_empty(),
        "no corruption under the chaos plan: {reference:?}"
    );
    assert!(
        reference.recovered > 0,
        "nothing survived the chaos plan: {reference:?}"
    );

    // Exactly the planned corrupt entries are quarantined …
    let expected: BTreeMap<String, String> = reference
        .expected_bad
        .iter()
        .map(|(f, d)| (f.clone(), d.to_string()))
        .collect();
    assert_eq!(reference.quarantined, expected);

    // … and every file ever written is accounted for.
    assert_eq!(reference.files_seen, reference.files_written);
    assert_eq!(
        reference.recovered + reference.quarantined.len(),
        reference.files_written
    );

    // Bit-reproducible at every thread count.
    for threads in [2usize, 4] {
        let other = chaos_cycle(threads);
        assert_eq!(other, reference, "threads = {threads}");
    }
}

#[test]
fn a_full_disk_degrades_persistence_but_never_serving() {
    let dir = temp_dir("full-disk");
    let fleet = Fleet::generate(FleetConfig::small(6, 9000));
    let batch = requests(&[0, 1, 2, 3, 4, 5], 2);
    let plan = DiskFaultPlan {
        // Roughly: the manifest plus two ~2 KiB snapshots fit.
        full_disk_after_bytes: Some(5_000),
        ..DiskFaultPlan::default()
    };

    let registry = Registry::new();
    let store =
        ModelStore::open_with(faulty_disk(1, plan), &dir, &registry, &Tracer::disabled()).unwrap();
    let service = PredictionService::new(&fleet, fast_config(), 2)
        .unwrap()
        .with_store(store);
    let outcomes = service.serve_batch(&batch, None);
    // Every request is still served from memory …
    for outcome in &outcomes {
        assert!(
            matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
            "{outcome:?}"
        );
    }
    // … while the full disk split the batch into persisted and failed.
    let persisted = registry.counter("vup_store_persisted_total").get();
    let failed = registry.counter("vup_store_persist_failed_total").get();
    assert!(persisted > 0, "budget admits at least one snapshot");
    assert!(failed > 0, "budget must run out mid-batch");
    assert_eq!(persisted + failed, batch.len() as u64);
    drop(service);

    // No half-written temp files are left behind, and a clean-disk
    // reopen warm-starts exactly the snapshots that fit.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert_eq!(leftovers, Vec::<String>::new());
    assert_eq!(snapshots_on_disk(&dir).len() as u64, persisted);
    let reopened = ModelStore::open(&dir).unwrap();
    let stats = reopened.recovery().unwrap();
    assert_eq!(stats.recovered as u64, persisted);
    assert_eq!(stats.quarantined, vec![]);
    let _ = std::fs::remove_dir_all(&dir);
}
