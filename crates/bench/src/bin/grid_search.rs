//! §4.2 — the per-algorithm grid search.
//!
//! The paper reports running "a grid search to fit the model to the
//! analyzed data distribution" and lists the winners (Lasso α = 0.1;
//! SVR C = 10, ε = 0.1, γ = 1; GB lr = 0.1, 100 estimators, depth 1;
//! MA period 30). This binary re-runs the search on the synthetic fleet
//! with `vup_ml::grid::GridSearch`: per vehicle, candidates are scored on
//! a time-ordered hold-out; per algorithm, the candidate with the best
//! mean PE across vehicles wins. SVR's γ axis is expressed in multiples
//! of `1/p` (p = feature count) because a raw γ is only comparable within
//! one feature dimensionality — see `SvrParams::paper_scaled`.
//!
//! Run with: `cargo run --release -p vup-bench --bin grid_search`

use std::collections::BTreeMap;

use serde::Serialize;
use vup_bench::{evaluable_ids, print_header, small_fleet, write_json};
use vup_core::select::select_lags;
use vup_core::window::build_dataset;
use vup_core::{PipelineConfig, Scenario, VehicleView};
use vup_ml::baseline::{MovingAverage, SeriesForecaster};
use vup_ml::gbm::GbmParams;
use vup_ml::grid::GridSearch;
use vup_ml::kernel::Kernel;
use vup_ml::lasso::LassoParams;
use vup_ml::metrics;
use vup_ml::scaler::StandardScaler;
use vup_ml::svr::SvrParams;
use vup_ml::{Dataset, RegressorSpec};

const N_VEHICLES: usize = 10;

#[derive(Serialize)]
struct GridWinner {
    algorithm: String,
    winner: String,
    paper_choice: String,
    mean_pe: f64,
}

/// Builds the standardized per-vehicle grid-search dataset (most recent
/// 300 working days, K = 20 selected lags).
fn vehicle_dataset(view: &VehicleView, cfg: &PipelineConfig) -> Option<Dataset> {
    let span = 300.min(view.len());
    let from = view.len() - span;
    if span < cfg.max_lag + 40 {
        return None;
    }
    let hours = view.hours_range(from, view.len());
    let lags = select_lags(&hours, cfg.effective_k(), cfg.max_lag);
    let ds = build_dataset(view, from + cfg.max_lag, view.len(), &lags, &cfg.features).ok()?;
    let (_, x) = StandardScaler::fit_transform(ds.x()).ok()?;
    Dataset::new(x, ds.y().to_vec()).ok()
}

/// Runs one candidate family over all vehicle datasets; returns each
/// candidate's mean PE keyed by its display string.
fn run_family(
    datasets: &[Dataset],
    candidates: Vec<(String, RegressorSpec)>,
) -> BTreeMap<String, f64> {
    let specs: Vec<RegressorSpec> = candidates.iter().map(|(_, s)| s.clone()).collect();
    let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for ds in datasets {
        let search = GridSearch::new(specs.clone()).expect("non-empty grid");
        let Ok((_, scores)) = search.run(ds) else {
            continue;
        };
        for ((name, _), score) in candidates.iter().zip(&scores) {
            if let Some(pe) = score.pe {
                let e = sums.entry(name.clone()).or_insert((0.0, 0));
                e.0 += pe;
                e.1 += 1;
            }
        }
    }
    sums.into_iter()
        .map(|(name, (total, n))| (name, total / n.max(1) as f64))
        .collect()
}

fn print_family(
    label: &str,
    paper_choice: &str,
    scores: &BTreeMap<String, f64>,
    winners: &mut Vec<GridWinner>,
) {
    println!("-- {label} (paper selected: {paper_choice}) --");
    print_header(&[("candidate", 28), ("mean PE", 9)]);
    let mut rows: Vec<(&String, &f64)> = scores.iter().collect();
    rows.sort_by(|a, b| a.1.partial_cmp(b.1).expect("finite"));
    for (name, pe) in &rows {
        println!("{name:>28} {pe:>8.1}%");
    }
    if let Some((name, pe)) = rows.first() {
        println!("winner: {name}\n");
        winners.push(GridWinner {
            algorithm: label.to_owned(),
            winner: (*name).clone(),
            paper_choice: paper_choice.to_owned(),
            mean_pe: **pe,
        });
    }
}

fn main() {
    let fleet = small_fleet(300);
    let cfg = PipelineConfig {
        scenario: Scenario::NextWorkingDay,
        ..PipelineConfig::default()
    };
    let ids = evaluable_ids(&fleet, &cfg, cfg.scenario, N_VEHICLES);
    let views: Vec<VehicleView> = ids
        .iter()
        .map(|&id| VehicleView::build(&fleet, id, cfg.scenario))
        .collect();
    let datasets: Vec<Dataset> = views
        .iter()
        .filter_map(|v| vehicle_dataset(v, &cfg))
        .collect();
    let p = cfg.features.n_features(cfg.effective_k());
    println!(
        "§4.2 grid search — {} vehicles, {} features per record, 25% time-ordered hold-out\n",
        datasets.len(),
        p
    );
    let mut winners = Vec::new();

    // Lasso: α grid.
    let lasso: Vec<(String, RegressorSpec)> = [0.01, 0.1, 1.0, 10.0]
        .into_iter()
        .map(|alpha| {
            (
                format!("alpha={alpha}"),
                RegressorSpec::Lasso(LassoParams {
                    alpha,
                    ..LassoParams::default()
                }),
            )
        })
        .collect();
    print_family(
        "Lasso",
        "alpha=0.1",
        &run_family(&datasets, lasso),
        &mut winners,
    );

    // SVR: C × γ (in units of 1/p) × ε.
    let mut svr = Vec::new();
    for c in [1.0, 10.0, 100.0] {
        for gamma_scale in [0.3, 1.0, 3.0] {
            for epsilon in [0.01, 0.1, 0.5] {
                svr.push((
                    format!("C={c} gamma={gamma_scale}/p eps={epsilon}"),
                    RegressorSpec::Svr(SvrParams {
                        c,
                        epsilon,
                        kernel: Kernel::Rbf {
                            gamma: gamma_scale / p as f64,
                        },
                        ..SvrParams::default()
                    }),
                ));
            }
        }
    }
    print_family(
        "SVR",
        "C=10 gamma=1 (their feature space) eps=0.1",
        &run_family(&datasets, svr),
        &mut winners,
    );

    // GB: estimators × depth.
    let mut gb = Vec::new();
    for n_estimators in [50, 100, 200] {
        for max_depth in [1, 2, 3] {
            gb.push((
                format!("n={n_estimators} depth={max_depth}"),
                RegressorSpec::Gbm(GbmParams {
                    n_estimators,
                    max_depth,
                    ..GbmParams::default()
                }),
            ));
        }
    }
    print_family(
        "Gradient Boosting",
        "n=100 depth=1 lr=0.1 loss=lad",
        &run_family(&datasets, gb),
        &mut winners,
    );

    // MA: period grid, scored directly on the series.
    println!("-- Moving Average baseline (paper selected: period=30) --");
    print_header(&[("candidate", 28), ("mean PE", 9)]);
    let mut ma_scores: Vec<(usize, f64)> = Vec::new();
    for period in [7usize, 14, 30, 60] {
        let ma = MovingAverage::new(period).expect("positive period");
        let mut pes = Vec::new();
        for view in &views {
            let hours = view.hours();
            let start = hours.len().saturating_sub(200);
            let mut pred = Vec::new();
            let mut actual = Vec::new();
            for t in start.max(period)..hours.len() {
                pred.push(ma.forecast(&hours[..t]).expect("non-empty history"));
                actual.push(hours[t]);
            }
            if let Ok(pe) = metrics::percentage_error(&pred, &actual) {
                pes.push(pe);
            }
        }
        let mean = pes.iter().sum::<f64>() / pes.len().max(1) as f64;
        ma_scores.push((period, mean));
    }
    ma_scores.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (period, pe) in &ma_scores {
        println!("{:>28} {pe:>8.1}%", format!("period={period}"));
    }
    if let Some((period, pe)) = ma_scores.first() {
        println!("winner: period={period}\n");
        winners.push(GridWinner {
            algorithm: "Moving Average".into(),
            winner: format!("period={period}"),
            paper_choice: "period=30".into(),
            mean_pe: *pe,
        });
    }

    println!("Paper shape check: the winning regions match the paper's — small-alpha Lasso,");
    println!("C=10 SVR (with gamma in the dimension-scaled regime), GB configs all within a");
    println!("few pp of each other; near-ties shift the exact winners with the substrate.");
    let path = write_json("grid_search", &winners);
    println!("\nFull data written to {}", path.display());
}
