//! ε-insensitive support-vector regression solved with SMO.
//!
//! Implements the standard dual formulation (Smola & Schölkopf) in the
//! LibSVM 2n-variable layout: variables `a = [α; α*]` with constraint signs
//! `s = [+1…; −1…]`, box `0 ≤ a ≤ C`, equality `Σ s_p a_p = 0`, objective
//! `½ aᵀQa + pᵀa` where `Q_pq = s_p s_q K(x_p, x_q)` and
//! `p = [ε − y; ε + y]`. The solver uses maximal-violating-pair working-set
//! selection and the two-variable analytic update, i.e. classic SMO.
//!
//! The paper's grid search selected `kernel = rbf, C = 10, ε = 0.1, γ = 1`
//! ([`SvrParams::default`]). SVR assumes comparable feature scales; the
//! `vup-core` pipeline standardizes features before fitting.

use serde::{Deserialize, Serialize};
use vup_linalg::Matrix;

use crate::kernel::Kernel;
use crate::{Dataset, MlError, Regressor, Result};

/// Guard against a non-positive curvature denominator in the two-variable
/// update (LibSVM's `TAU`).
const TAU: f64 = 1e-12;

/// Hyperparameters for [`Svr`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint `C` (> 0); the paper uses `10`.
    pub c: f64,
    /// Width of the ε-insensitive tube (≥ 0); the paper uses `0.1`.
    pub epsilon: f64,
    /// Kernel; the paper uses RBF with `γ = 1`.
    pub kernel: Kernel,
    /// KKT-violation stopping tolerance (LibSVM default `1e-3`).
    pub tol: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 10.0,
            epsilon: 0.1,
            kernel: Kernel::paper(),
            tol: 1e-3,
            max_iter: 100_000,
        }
    }
}

impl SvrParams {
    /// The paper's hyperparameters with the RBF bandwidth rescaled to the
    /// feature dimensionality: `γ = 1/p`.
    ///
    /// The paper's grid search selected `γ = 1` *for its own feature
    /// space*; with `p` standardized features the expected squared
    /// distance between two points is `≈ 2p`, so a fixed `γ = 1` drives
    /// every off-diagonal kernel entry to ~0 once `p` grows past a
    /// handful, leaving SVR able to predict only its bias. `γ = 1/p`
    /// (scikit-learn's `gamma="scale"` on unit-variance features) keeps
    /// the kernel informative at any dimensionality — this mirrors
    /// re-running the paper's §4.2 grid search on our feature space.
    pub fn paper_scaled(n_features: usize) -> SvrParams {
        SvrParams {
            kernel: Kernel::Rbf {
                gamma: 1.0 / n_features.max(1) as f64,
            },
            ..SvrParams::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.c > 0.0 && self.c.is_finite()) {
            return Err(MlError::InvalidParameter {
                name: "c",
                reason: format!("must be positive and finite, got {}", self.c),
            });
        }
        if !self.epsilon.is_finite() || self.epsilon < 0.0 {
            return Err(MlError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be non-negative and finite, got {}", self.epsilon),
            });
        }
        if let Kernel::Rbf { gamma } = self.kernel {
            if !(gamma > 0.0 && gamma.is_finite()) {
                return Err(MlError::InvalidParameter {
                    name: "gamma",
                    reason: format!("must be positive and finite, got {gamma}"),
                });
            }
        }
        if self.tol.is_nan() || self.tol <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "tol",
                reason: "must be positive".into(),
            });
        }
        if self.max_iter == 0 {
            return Err(MlError::InvalidParameter {
                name: "max_iter",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// ε-support-vector regression (the paper's "SVR").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Svr {
    params: SvrParams,
    fitted: Option<FittedSvr>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct FittedSvr {
    /// Support rows (training samples with non-zero dual coefficient).
    support: Matrix,
    /// Dual coefficients `β_i = α_i − α*_i` aligned with `support` rows.
    beta: Vec<f64>,
    bias: f64,
    n_features: usize,
    iterations: usize,
    converged: bool,
}

impl Svr {
    /// Creates an unfitted model with the given hyperparameters.
    pub fn new(params: SvrParams) -> Self {
        Svr {
            params,
            fitted: None,
        }
    }

    /// Creates the paper's configuration (`rbf, C = 10, ε = 0.1, γ = 1`).
    pub fn paper() -> Self {
        Svr::new(SvrParams::default())
    }

    /// Number of support vectors, or `None` before fitting.
    pub fn n_support(&self) -> Option<usize> {
        self.fitted.as_ref().map(|f| f.beta.len())
    }

    /// SMO iterations performed by the last fit.
    pub fn iterations(&self) -> Option<usize> {
        self.fitted.as_ref().map(|f| f.iterations)
    }

    /// Whether the last fit reached the KKT tolerance before the iteration
    /// cap.
    pub fn converged(&self) -> Option<bool> {
        self.fitted.as_ref().map(|f| f.converged)
    }

    /// Fitted bias term `b`, or `None` before fitting.
    pub fn bias(&self) -> Option<f64> {
        self.fitted.as_ref().map(|f| f.bias)
    }
}

struct SmoState<'a> {
    k: Matrix,
    /// 2n dual variables: `a[p]` for p < n is α, for p ≥ n is α*.
    a: Vec<f64>,
    /// Gradient of the dual objective.
    g: Vec<f64>,
    n: usize,
    c: f64,
    _targets: &'a [f64],
}

impl SmoState<'_> {
    /// Constraint sign of variable `p`.
    #[inline]
    fn sign(&self, p: usize) -> f64 {
        if p < self.n {
            1.0
        } else {
            -1.0
        }
    }

    /// `Q_pq = s_p s_q K(x_p, x_q)`.
    #[inline]
    fn q(&self, p: usize, q: usize) -> f64 {
        self.sign(p) * self.sign(q) * self.k[(p % self.n, q % self.n)]
    }

    /// Maximal-violating-pair selection. Returns `None` at optimality.
    fn select_pair(&self, tol: f64) -> Option<(usize, usize)> {
        let two_n = 2 * self.n;
        let mut i = usize::MAX;
        let mut m_up = f64::NEG_INFINITY;
        let mut j = usize::MAX;
        let mut m_low = f64::INFINITY;
        for p in 0..two_n {
            let s = self.sign(p);
            let v = -s * self.g[p];
            let in_up = (s > 0.0 && self.a[p] < self.c) || (s < 0.0 && self.a[p] > 0.0);
            let in_low = (s < 0.0 && self.a[p] < self.c) || (s > 0.0 && self.a[p] > 0.0);
            if in_up && v > m_up {
                m_up = v;
                i = p;
            }
            if in_low && v < m_low {
                m_low = v;
                j = p;
            }
        }
        if i == usize::MAX || j == usize::MAX || m_up - m_low < tol {
            None
        } else {
            Some((i, j))
        }
    }

    /// Analytic two-variable update (LibSVM `Solver::solve` inner step).
    fn update_pair(&mut self, i: usize, j: usize) {
        let c = self.c;
        let (old_i, old_j) = (self.a[i], self.a[j]);
        if self.sign(i) != self.sign(j) {
            let quad = (self.q(i, i) + self.q(j, j) + 2.0 * self.q(i, j)).max(TAU);
            let delta = (-self.g[i] - self.g[j]) / quad;
            let diff = old_i - old_j;
            self.a[i] += delta;
            self.a[j] += delta;
            if diff > 0.0 {
                if self.a[j] < 0.0 {
                    self.a[j] = 0.0;
                    self.a[i] = diff;
                }
            } else if self.a[i] < 0.0 {
                self.a[i] = 0.0;
                self.a[j] = -diff;
            }
            if diff > 0.0 {
                if self.a[i] > c {
                    self.a[i] = c;
                    self.a[j] = c - diff;
                }
            } else if self.a[j] > c {
                self.a[j] = c;
                self.a[i] = c + diff;
            }
        } else {
            let quad = (self.q(i, i) + self.q(j, j) - 2.0 * self.q(i, j)).max(TAU);
            let delta = (self.g[i] - self.g[j]) / quad;
            let sum = old_i + old_j;
            self.a[i] -= delta;
            self.a[j] += delta;
            if sum > c {
                if self.a[i] > c {
                    self.a[i] = c;
                    self.a[j] = sum - c;
                }
            } else if self.a[j] < 0.0 {
                self.a[j] = 0.0;
                self.a[i] = sum;
            }
            if sum > c {
                if self.a[j] > c {
                    self.a[j] = c;
                    self.a[i] = sum - c;
                }
            } else if self.a[i] < 0.0 {
                self.a[i] = 0.0;
                self.a[j] = sum;
            }
        }
        // Rank-two gradient update.
        let (di, dj) = (self.a[i] - old_i, self.a[j] - old_j);
        if di == 0.0 && dj == 0.0 {
            return;
        }
        let two_n = 2 * self.n;
        for p in 0..two_n {
            self.g[p] += self.q(p, i) * di + self.q(p, j) * dj;
        }
    }

    /// LibSVM-style bias recovery: average `s_p G_p` over free variables,
    /// falling back to the midpoint of the KKT interval.
    fn compute_bias(&self) -> f64 {
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        let mut sum_free = 0.0;
        let mut n_free = 0usize;
        for p in 0..2 * self.n {
            let s = self.sign(p);
            let yg = s * self.g[p];
            if self.a[p] >= self.c {
                if s < 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else if self.a[p] <= 0.0 {
                if s > 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else {
                n_free += 1;
                sum_free += yg;
            }
        }
        let rho = if n_free > 0 {
            sum_free / n_free as f64
        } else {
            (ub + lb) / 2.0
        };
        -rho
    }
}

impl Regressor for Svr {
    fn fit(&mut self, data: &Dataset) -> Result<()> {
        self.params.validate()?;
        let n = data.len();
        if n < 2 {
            return Err(MlError::NotEnoughSamples {
                required: 2,
                actual: n,
            });
        }
        let x = data.x();
        let y = data.y();
        let k = self.params.kernel.matrix(x);

        // At a = 0 the gradient is just the linear term p = [ε − y; ε + y].
        let mut g = Vec::with_capacity(2 * n);
        g.extend(y.iter().map(|&t| self.params.epsilon - t));
        g.extend(y.iter().map(|&t| self.params.epsilon + t));

        let mut state = SmoState {
            k,
            a: vec![0.0; 2 * n],
            g,
            n,
            c: self.params.c,
            _targets: y,
        };

        let mut iterations = 0usize;
        let mut converged = false;
        while iterations < self.params.max_iter {
            match state.select_pair(self.params.tol) {
                Some((i, j)) => state.update_pair(i, j),
                None => {
                    converged = true;
                    break;
                }
            }
            iterations += 1;
        }

        let bias = state.compute_bias();

        // Collect support vectors: β_i = α_i − α*_i ≠ 0.
        let mut support_rows: Vec<&[f64]> = Vec::new();
        let mut beta = Vec::new();
        for i in 0..n {
            let b = state.a[i] - state.a[n + i];
            if b != 0.0 {
                support_rows.push(x.row(i));
                beta.push(b);
            }
        }
        let support = if support_rows.is_empty() {
            Matrix::zeros(0, x.cols())
        } else {
            Matrix::from_rows(&support_rows)?
        };

        self.fitted = Some(FittedSvr {
            support,
            beta,
            bias,
            n_features: x.cols(),
            iterations,
            converged,
        });
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> Result<f64> {
        let f = self.fitted.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != f.n_features {
            return Err(MlError::FeatureMismatch {
                expected: f.n_features,
                actual: row.len(),
            });
        }
        let mut acc = f.bias;
        for (sv, &b) in f.support.iter_rows().zip(&f.beta) {
            acc += b * self.params.kernel.eval(sv, row);
        }
        Ok(acc)
    }

    fn name(&self) -> &'static str {
        "SVR"
    }

    fn clone_box(&self) -> Box<dyn Regressor + Send + Sync> {
        Box::new(self.clone())
    }

    fn save(&self) -> crate::SavedModel {
        crate::SavedModel::Svr(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_1d(xs: &[f64], y: &[f64]) -> Dataset {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&v| vec![v]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs).unwrap(), y.to_vec()).unwrap()
    }

    #[test]
    fn fits_linear_function_within_epsilon_band() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 / 29.0).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 * x - 0.5).collect();
        let mut svr = Svr::paper();
        svr.fit(&dataset_1d(&xs, &y)).unwrap();
        assert_eq!(svr.converged(), Some(true));
        for (&x, &t) in xs.iter().zip(&y) {
            let p = svr.predict_row(&[x]).unwrap();
            // Training-point error bounded by the ε-tube plus slack.
            assert!((p - t).abs() < 0.15, "x={x}: pred {p} vs {t}");
        }
    }

    #[test]
    fn fits_nonlinear_function_better_than_linear_model() {
        use crate::linear::LinearRegression;
        let xs: Vec<f64> = (0..60).map(|i| -2.0 + 4.0 * i as f64 / 59.0).collect();
        let y: Vec<f64> = xs.iter().map(|&x| (2.0 * x).sin() + 0.5 * x).collect();
        let data = dataset_1d(&xs, &y);

        let mut svr = Svr::paper();
        svr.fit(&data).unwrap();
        let mut lr = LinearRegression::new();
        lr.fit(&data).unwrap();

        let svr_pred: Vec<f64> = xs.iter().map(|&x| svr.predict_row(&[x]).unwrap()).collect();
        let lr_pred: Vec<f64> = xs.iter().map(|&x| lr.predict_row(&[x]).unwrap()).collect();
        let svr_err = crate::metrics::rmse(&svr_pred, &y).unwrap();
        let lr_err = crate::metrics::rmse(&lr_pred, &y).unwrap();
        assert!(
            svr_err < lr_err / 2.0,
            "svr {svr_err} should beat lr {lr_err}"
        );
    }

    #[test]
    fn constant_targets_inside_tube_need_no_support_vectors() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = vec![3.0; 10];
        let mut svr = Svr::paper();
        svr.fit(&dataset_1d(&xs, &y)).unwrap();
        // A constant fits entirely inside the ε-tube via the bias alone.
        assert_eq!(svr.n_support(), Some(0));
        let p = svr.predict_row(&[100.0]).unwrap();
        assert!((p - 3.0).abs() <= 0.1 + 1e-9);
    }

    #[test]
    fn dual_feasibility_holds() {
        let xs: Vec<f64> = (0..25).map(|i| i as f64 / 5.0).collect();
        let y: Vec<f64> = xs.iter().map(|&x| x * x * 0.3 - x).collect();
        let params = SvrParams::default();
        let mut svr = Svr::new(params.clone());
        svr.fit(&dataset_1d(&xs, &y)).unwrap();
        let f = svr.fitted.as_ref().unwrap();
        // |β_i| ≤ C and Σ β_i = 0 (equality constraint).
        for &b in &f.beta {
            assert!(b.abs() <= params.c + 1e-9);
        }
        let total: f64 = f.beta.iter().sum();
        assert!(total.abs() < 1e-6, "sum beta = {total}");
    }

    #[test]
    fn linear_kernel_recovers_line() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 4.0).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 1.5 * x + 2.0).collect();
        let mut svr = Svr::new(SvrParams {
            kernel: Kernel::Linear,
            ..SvrParams::default()
        });
        svr.fit(&dataset_1d(&xs, &y)).unwrap();
        let p = svr.predict_row(&[2.0]).unwrap();
        assert!((p - 5.0).abs() < 0.2, "pred {p}");
    }

    #[test]
    fn parameter_validation() {
        let data = dataset_1d(&[0.0, 1.0], &[0.0, 1.0]);
        for bad in [
            SvrParams {
                c: 0.0,
                ..SvrParams::default()
            },
            SvrParams {
                c: -1.0,
                ..SvrParams::default()
            },
            SvrParams {
                epsilon: -0.1,
                ..SvrParams::default()
            },
            SvrParams {
                kernel: Kernel::Rbf { gamma: 0.0 },
                ..SvrParams::default()
            },
            SvrParams {
                tol: 0.0,
                ..SvrParams::default()
            },
            SvrParams {
                max_iter: 0,
                ..SvrParams::default()
            },
        ] {
            assert!(Svr::new(bad).fit(&data).is_err());
        }
    }

    #[test]
    fn unfitted_and_mismatched_predictions_error() {
        let svr = Svr::paper();
        assert!(matches!(svr.predict_row(&[1.0]), Err(MlError::NotFitted)));
        let mut fitted = Svr::paper();
        fitted
            .fit(&dataset_1d(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0]))
            .unwrap();
        assert!(matches!(
            fitted.predict_row(&[1.0, 2.0]),
            Err(MlError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn needs_two_samples() {
        let mut svr = Svr::paper();
        assert!(matches!(
            svr.fit(&dataset_1d(&[1.0], &[1.0])),
            Err(MlError::NotEnoughSamples { .. })
        ));
    }
}
