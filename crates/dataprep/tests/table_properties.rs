//! Property tests of the relational operators against reference
//! implementations and algebraic laws.

use proptest::prelude::*;
use vup_dataprep::table::Aggregate;
use vup_dataprep::{DataType, Schema, Table, Value};

/// Strategy: a small usage-like table with nullable hours.
fn usage_table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(
        (
            0_i64..5,                            // vehicle id
            proptest::option::of(0.0_f64..24.0), // hours (nullable)
            0_i64..3,                            // country code
        ),
        0..40,
    )
    .prop_map(|rows| {
        let mut t = Table::new(Schema::of(&[
            ("vid", DataType::Int),
            ("hours", DataType::Float),
            ("country", DataType::Int),
        ]));
        for (vid, hours, country) in rows {
            t.push_row(vec![
                Value::Int(vid),
                hours.map(Value::Float).unwrap_or(Value::Null),
                Value::Int(country),
            ])
            .expect("valid row");
        }
        t
    })
}

proptest! {
    #[test]
    fn filter_then_project_equals_project_then_filter(t in usage_table_strategy()) {
        let a = t
            .filter("vid", |v| v.as_int().is_some_and(|x| x >= 2))
            .unwrap()
            .project(&["vid", "hours"])
            .unwrap();
        let b = t
            .project(&["vid", "hours"])
            .unwrap()
            .filter("vid", |v| v.as_int().is_some_and(|x| x >= 2))
            .unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn group_by_counts_partition_the_rows(t in usage_table_strategy()) {
        if t.is_empty() {
            return Ok(());
        }
        let g = t.group_by("vid", &[("vid", Aggregate::Count)]).unwrap();
        let total: i64 = (0..g.n_rows())
            .map(|i| g.get(i, "vid_count").unwrap().as_int().unwrap())
            .sum();
        // vid is never null, so the group counts must sum to the row count.
        prop_assert_eq!(total as usize, t.n_rows());
    }

    #[test]
    fn group_by_sum_matches_column_total(t in usage_table_strategy()) {
        if t.is_empty() {
            return Ok(());
        }
        let g = t.group_by("country", &[("hours", Aggregate::Sum)]).unwrap();
        let grouped: f64 = (0..g.n_rows())
            .filter_map(|i| g.get(i, "hours_sum").unwrap().as_float())
            .sum();
        let direct: f64 = t
            .float_column("hours")
            .unwrap()
            .into_iter()
            .flatten()
            .sum();
        prop_assert!((grouped - direct).abs() < 1e-9);
    }

    #[test]
    fn sort_is_a_permutation_with_ordered_keys(t in usage_table_strategy()) {
        let s = t.sort_by("hours").unwrap();
        prop_assert_eq!(s.n_rows(), t.n_rows());
        // Non-null keys ascend; nulls trail.
        let col = s.float_column("hours").unwrap();
        let mut seen_null = false;
        let mut prev = f64::NEG_INFINITY;
        for v in &col {
            match v {
                Some(x) => {
                    prop_assert!(!seen_null, "non-null after null");
                    prop_assert!(*x >= prev - 1e-12);
                    prev = *x;
                }
                None => seen_null = true,
            }
        }
        // Multisets of values agree.
        let mut a: Vec<String> = (0..t.n_rows()).map(|i| format!("{:?}", t.row(i).unwrap())).collect();
        let mut b: Vec<String> = (0..s.n_rows()).map(|i| format!("{:?}", s.row(i).unwrap())).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn join_matches_nested_loop_reference(
        left in usage_table_strategy(),
        right in usage_table_strategy(),
    ) {
        let joined = left.join(&right, "country", "country").unwrap();
        // Reference: count matching pairs with non-null keys.
        let mut expected = 0usize;
        for i in 0..left.n_rows() {
            let lk = left.get(i, "country").unwrap();
            if lk.is_null() {
                continue;
            }
            for j in 0..right.n_rows() {
                if right.get(j, "country").unwrap() == lk {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(joined.n_rows(), expected);
    }

    #[test]
    fn csv_roundtrip_preserves_rows(t in usage_table_strategy()) {
        let text = vup_dataprep::csv::to_csv(&t);
        let back = vup_dataprep::csv::from_csv(&text).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        // Hours survive as floats/nulls (ints may re-infer, so compare the
        // float views, which coerce).
        // An all-null column re-infers as Str (no cells to type); skip the
        // value comparison in that degenerate case.
        let all_null = t.float_column("hours").unwrap().iter().all(Option::is_none);
        if !t.is_empty() && !all_null {
            let a = t.float_column("hours").unwrap();
            let b = back.float_column("hours").unwrap();
            for (x, y) in a.iter().zip(&b) {
                match (x, y) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                    (None, None) => {}
                    other => prop_assert!(false, "null mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn take_out_of_order_reads_consistently(t in usage_table_strategy()) {
        if t.n_rows() < 2 {
            return Ok(());
        }
        let indices: Vec<usize> = (0..t.n_rows()).rev().collect();
        let r = t.take(&indices);
        for (new_i, &old_i) in indices.iter().enumerate() {
            prop_assert_eq!(r.row(new_i).unwrap(), t.row(old_i).unwrap());
        }
    }
}
