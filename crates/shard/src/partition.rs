//! Rendezvous-hash vehicle partitioning.
//!
//! Every vehicle is assigned to the shard with the **highest random
//! weight** for the pair `(vehicle, shard)` — Thaler & Ravishankar's
//! rendezvous hashing. The weight is a pure [`splitmix64`] chain, so
//! the assignment is a pure function of `(vehicle id, shard count)`:
//! no ring state, no stored table, identical on every machine and at
//! every thread count.
//!
//! The property the rebalancer leans on: growing the fleet from `N` to
//! `N + 1` shards only ever moves a vehicle **to the new shard** —
//! the relative order of the surviving weights is untouched, so a
//! vehicle either keeps its argmax or switches to shard `N`. In
//! expectation that is `K / (N + 1)` of `K` vehicles, the
//! consistent-hashing minimum.

use vup_fleetsim::VehicleId;
use vup_serve::splitmix64;

/// Salt separating partition weights from every other splitmix64
/// stream in the workspace (fault injection, roster hashing).
const SALT_PARTITION: u64 = 0x53_48_52_44; // "SHRD"

/// Rendezvous weight of `(vehicle, shard)`.
#[inline]
fn weight(vehicle: u32, shard: u32) -> u64 {
    splitmix64(splitmix64(SALT_PARTITION ^ u64::from(vehicle)) ^ u64::from(shard))
}

/// The shard owning `vehicle` in a fleet partitioned over `shards`
/// shards. Pure function of its arguments; `shards` must be ≥ 1.
///
/// Ties break toward the lower shard index (strict `>` argmax), which
/// keeps the N→N+1 stability argument exact even in the astronomically
/// unlikely event of equal weights.
pub fn shard_of(vehicle: VehicleId, shards: u32) -> u32 {
    assert!(shards > 0, "at least one shard");
    let mut best = 0u32;
    let mut best_weight = weight(vehicle.0, 0);
    for shard in 1..shards {
        let w = weight(vehicle.0, shard);
        if w > best_weight {
            best = shard;
            best_weight = w;
        }
    }
    best
}

/// A fixed shard count with assignment and census helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    shards: u32,
}

impl Partitioner {
    /// A partitioner over `shards` shards (≥ 1).
    pub fn new(shards: u32) -> Partitioner {
        assert!(shards > 0, "at least one shard");
        Partitioner { shards }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `vehicle` ([`shard_of`]).
    pub fn shard_of(&self, vehicle: VehicleId) -> u32 {
        shard_of(vehicle, self.shards)
    }

    /// Per-shard vehicle counts over ids `0..n_vehicles` — the balance
    /// census `vup shard-eval` prints.
    pub fn census(&self, n_vehicles: u32) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards as usize];
        for id in 0..n_vehicles {
            counts[self.shard_of(VehicleId(id)) as usize] += 1;
        }
        counts
    }
}

/// The vehicles (of ids `0..n_vehicles`) whose shard changes when the
/// shard count moves `from → to`, as `(vehicle, old shard, new shard)`
/// in id order. This is exactly the set [`rebalance`](crate::rebalance)
/// must move.
pub fn remapped(n_vehicles: u32, from: u32, to: u32) -> Vec<(VehicleId, u32, u32)> {
    assert!(from > 0 && to > 0, "at least one shard");
    (0..n_vehicles)
        .filter_map(|raw| {
            let id = VehicleId(raw);
            let old = shard_of(id, from);
            let new = shard_of(id, to);
            (old != new).then_some((id, old, new))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_pure_and_in_range() {
        for shards in [1u32, 2, 3, 8] {
            for id in 0..500u32 {
                let s = shard_of(VehicleId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(VehicleId(id), shards));
            }
        }
        assert_eq!(shard_of(VehicleId(42), 1), 0);
    }

    #[test]
    fn growing_by_one_shard_only_moves_vehicles_to_the_new_shard() {
        for n in 1u32..8 {
            for (_, _, new) in remapped(5_000, n, n + 1) {
                assert_eq!(new, n, "N→N+1 movers land on the new shard only");
            }
        }
    }

    #[test]
    fn census_sums_and_balances() {
        let p = Partitioner::new(4);
        let counts = p.census(10_000);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // Rendezvous balance: each shard within ±20 % of fair share.
        assert!(
            min as f64 > 2500.0 * 0.8 && (max as f64) < 2500.0 * 1.2,
            "{counts:?}"
        );
    }
}
