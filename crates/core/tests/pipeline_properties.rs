//! Property tests of the core pipeline invariants: windowing arithmetic,
//! prediction bounds, and lag-selection guarantees under randomized
//! configurations.

use proptest::prelude::*;
use vup_core::config::CanChannels;
use vup_core::select::select_lags;
use vup_core::window::{build_dataset, feature_row};
use vup_core::{FeatureConfig, FittedPredictor, ModelSpec, PipelineConfig, Scenario, VehicleView};
use vup_fleetsim::fleet::{Fleet, FleetConfig, VehicleId};
use vup_ml::RegressorSpec;

fn shared_view() -> &'static VehicleView {
    use std::sync::OnceLock;
    static VIEW: OnceLock<VehicleView> = OnceLock::new();
    VIEW.get_or_init(|| {
        let fleet = Fleet::generate(FleetConfig::small(3, 777));
        VehicleView::build(&fleet, VehicleId(0), Scenario::NextDay)
    })
}

fn feature_config_strategy() -> impl Strategy<Value = FeatureConfig> {
    (
        any::<bool>(),
        prop_oneof![
            Just(CanChannels::None),
            Just(CanChannels::Subset(vec![0])),
            Just(CanChannels::Subset(vec![0, 4, 6])),
            Just(CanChannels::All),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(lag_hours, can_channels, target_calendar, target_weather)| FeatureConfig {
                // At least one feature source must be on for a valid model.
                lag_hours: lag_hours || matches!(can_channels, CanChannels::None),
                can_channels,
                target_calendar,
                target_weather,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_shape_matches_the_paper_arithmetic(
        max_lag in 2_usize..30,
        k in 1_usize..30,
        window in 50_usize..150,
        features in feature_config_strategy(),
    ) {
        let view = shared_view();
        let k = k.min(max_lag);
        let from = max_lag;
        let to = (from + window).min(view.len());
        let hours = view.hours_range(0, to);
        let lags = select_lags(&hours, k, max_lag);
        prop_assert_eq!(lags.len(), k);
        let ds = build_dataset(view, from, to, &lags, &features).unwrap();
        // |TW| − max_lag records, exactly as §3's counting argument.
        prop_assert_eq!(ds.len(), to - from);
        prop_assert_eq!(ds.n_features(), features.n_features(k));
        // Every feature value is finite.
        prop_assert!(ds.x().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn feature_rows_agree_with_dataset_rows(
        max_lag in 2_usize..20,
        features in feature_config_strategy(),
    ) {
        let view = shared_view();
        let lags: Vec<usize> = (1..=max_lag).collect();
        let from = max_lag;
        let to = from + 30;
        let ds = build_dataset(view, from, to, &lags, &features).unwrap();
        for (i, t) in (from..to).enumerate() {
            let row = feature_row(view, t, &lags, &features);
            prop_assert_eq!(row.as_slice(), ds.x().row(i));
        }
    }

    #[test]
    fn predictions_stay_physical_under_random_configs(
        k in 1_usize..25,
        max_lag in 25_usize..40,
        train_window in 80_usize..140,
        features in feature_config_strategy(),
    ) {
        let view = shared_view();
        let cfg = PipelineConfig {
            model: ModelSpec::Learned(RegressorSpec::Linear),
            scenario: Scenario::NextDay,
            k,
            max_lag,
            train_window,
            features,
            ..PipelineConfig::default()
        };
        prop_assume!(cfg.validate().is_ok());
        let train_to = view.len() - 10;
        let fitted =
            FittedPredictor::fit(view, &cfg, train_to - train_window, train_to).unwrap();
        for t in train_to..view.len() {
            let p = fitted.predict(view, t).unwrap();
            prop_assert!((0.0..=24.0).contains(&p), "prediction {p} out of range");
        }
    }

    #[test]
    fn selected_lags_are_a_subset_of_the_allowed_range(
        k in 1_usize..40,
        max_lag in 1_usize..40,
        offset in 0_usize..500,
    ) {
        let view = shared_view();
        let window = view.hours_range(offset, offset + 150);
        let lags = select_lags(&window, k, max_lag);
        prop_assert_eq!(lags.len(), k.min(max_lag));
        prop_assert!(lags.iter().all(|&l| (1..=max_lag).contains(&l)));
        // Ascending, unique.
        prop_assert!(lags.windows(2).all(|w| w[0] < w[1]));
    }
}
