use std::fmt;

use vup_linalg::LinalgError;

/// Errors produced by model fitting, prediction, and dataset handling.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The feature matrix and target vector disagree on sample count.
    SampleMismatch {
        /// Rows in the feature matrix.
        x_rows: usize,
        /// Entries in the target vector.
        y_len: usize,
    },
    /// An operation needed at least `required` samples but got `actual`.
    NotEnoughSamples {
        /// Minimum sample count for the operation.
        required: usize,
        /// Sample count actually supplied.
        actual: usize,
    },
    /// Prediction was attempted on a model that has not been fitted.
    NotFitted,
    /// A prediction row has the wrong number of features.
    FeatureMismatch {
        /// Feature count the model was trained with.
        expected: usize,
        /// Feature count supplied at prediction time.
        actual: usize,
    },
    /// A hyperparameter value is invalid (e.g. negative regularization).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Input contains NaN or infinite values.
    NonFiniteInput,
    /// An underlying linear-algebra operation failed irrecoverably.
    Linalg(LinalgError),
    /// An iterative solver failed to converge within its iteration budget.
    DidNotConverge {
        /// Solver name.
        solver: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// A worker thread panicked while evaluating this unit of work; the
    /// panic was captured and isolated instead of aborting the batch.
    WorkerPanic {
        /// The captured panic message.
        message: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::SampleMismatch { x_rows, y_len } => write!(
                f,
                "feature matrix has {x_rows} rows but target vector has {y_len} entries"
            ),
            MlError::NotEnoughSamples { required, actual } => {
                write!(f, "need at least {required} samples, got {actual}")
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::FeatureMismatch { expected, actual } => {
                write!(f, "model expects {expected} features but row has {actual}")
            }
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            MlError::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
            MlError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            MlError::DidNotConverge { solver, iterations } => {
                write!(
                    f,
                    "{solver} did not converge within {iterations} iterations"
                )
            }
            MlError::WorkerPanic { message } => {
                write!(f, "worker thread panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MlError {
    fn from(e: LinalgError) -> Self {
        MlError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(MlError::NotFitted.to_string().contains("not been fitted"));
        assert!(MlError::SampleMismatch {
            x_rows: 3,
            y_len: 2
        }
        .to_string()
        .contains("3 rows"));
        assert!(MlError::FeatureMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains("expects 4"));
        assert!(MlError::InvalidParameter {
            name: "alpha",
            reason: "must be non-negative".into()
        }
        .to_string()
        .contains("alpha"));
        assert!(MlError::NonFiniteInput.to_string().contains("NaN"));
        assert!(MlError::DidNotConverge {
            solver: "smo",
            iterations: 10
        }
        .to_string()
        .contains("smo"));
        assert!(MlError::WorkerPanic {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }

    #[test]
    fn linalg_errors_convert_and_chain() {
        let e: MlError = LinalgError::Empty.into();
        assert!(matches!(e, MlError::Linalg(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MlError::NotFitted).is_none());
    }
}
