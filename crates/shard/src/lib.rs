//! Fleet sharding: partition, coordinate, supervise, rebalance.
//!
//! One [`PredictionService`](vup_serve::PredictionService) holds one
//! model store and one view cache; a million-vehicle fleet wants
//! neither in one process image. This crate splits the fleet over `N`
//! shards by rendezvous hashing ([`partition`]) — assignment a pure
//! function of `(vehicle id, shard count)`, so growing `N → N + 1`
//! remaps only the ~`K/N` vehicles whose argmax moves to the new shard
//! — and puts a [`coordinator`] in front: fan a batch out shard by
//! shard, merge journals, metrics and monitor health back into a
//! single fleet view with a deterministic (vehicle-sorted) merge order
//! at any thread count.
//!
//! Shards fail like processes do, so the fault plan grows a `shards`
//! section (death mid-batch, stall past deadline, refuse-then-recover)
//! and the coordinator doubles as a supervisor: a dead shard's
//! vehicles degrade for the rest of the batch, then the shard restarts
//! warm from its own snapshot directory, surfacing its
//! [`RecoveryStats`](vup_serve::RecoveryStats) in the merged journal.
//! When the shard count changes, [`rebalance`] moves snapshots between
//! shard directories atomically (verify → copy → re-verify → remove →
//! manifest bump), keeping `vup store verify` green on every directory
//! throughout.

#![warn(missing_docs)]

pub mod coordinator;
pub mod partition;
pub mod rebalance;

pub use coordinator::{ShardOptions, ShardReport, ShardedBatch, ShardedService};
pub use partition::{remapped, shard_of, Partitioner};
pub use rebalance::{rebalance, shard_dir, MovedSnapshot, RebalanceReport};
