//! Batched fleet prediction service.
//!
//! [`PredictionService::serve_batch`] answers a batch of
//! `(vehicle, horizon)` requests in two phases, both dispatched on the
//! lock-free [`vup_core::executor`]:
//!
//! 1. **Prepare** — the distinct vehicles of the batch get their scenario
//!    views built in parallel; the coordinating thread then consults the
//!    [`ModelStore`] and schedules a parallel (re)training pass for every
//!    vehicle whose model is missing or has aged past `retrain_every`.
//!    Freshly trained models are inserted back into the store in one pass
//!    on the coordinating thread.
//! 2. **Serve** — every request rolls its vehicle's model forward with
//!    [`vup_core::forecast::forecast_horizon`], reading only `Arc`
//!    snapshots. No lock of any kind is taken inside executor workers.
//!
//! A panic while training or serving one vehicle is captured by the
//! executor and surfaces as that request's [`ServeOutcome::Skipped`];
//! the rest of the batch is unaffected.

use std::collections::HashMap;
use std::sync::Arc;

use vup_core::forecast::forecast_horizon;
use vup_core::{executor, FittedPredictor, PipelineConfig, Strategy, VehicleView};
use vup_fleetsim::fleet::{Fleet, VehicleId};
use vup_ml::instrument::MlTimers;
use vup_obs::{Buckets, Counter, Histogram, Registry};

use crate::store::{ModelStore, StoredModel};

/// Registry handles for the service's own metrics. All no-ops for a
/// service built with [`PredictionService::new`].
struct ServeMetrics {
    /// `vup_serve_batches_total` — `serve_batch` calls.
    batches: Counter,
    /// `vup_serve_requests_total` — individual requests across batches.
    requests: Counter,
    /// `vup_serve_outcomes_total{outcome="served"}` — cache-hit serves.
    served: Counter,
    /// `vup_serve_outcomes_total{outcome="retrained"}` — retrain-then-serve.
    retrained: Counter,
    /// `vup_serve_outcomes_total{outcome="skipped"}` — unserveable requests.
    skipped: Counter,
    /// `vup_serve_stage_nanos{stage="view_build"}` — per-vehicle scenario
    /// view construction (the feature-build stage).
    stage_view: Histogram,
    /// `vup_serve_stage_nanos{stage="fit"}` — per-vehicle (re)training.
    stage_fit: Histogram,
    /// `vup_serve_stage_nanos{stage="predict"}` — per-request horizon
    /// roll-forward.
    stage_predict: Histogram,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> ServeMetrics {
        let stage = |name: &'static str| {
            registry.histogram_with(
                "vup_serve_stage_nanos",
                &[("stage", name)],
                Buckets::latency(),
            )
        };
        ServeMetrics {
            batches: registry.counter("vup_serve_batches_total"),
            requests: registry.counter("vup_serve_requests_total"),
            served: registry.counter_with("vup_serve_outcomes_total", &[("outcome", "served")]),
            retrained: registry
                .counter_with("vup_serve_outcomes_total", &[("outcome", "retrained")]),
            skipped: registry.counter_with("vup_serve_outcomes_total", &[("outcome", "skipped")]),
            stage_view: stage("view_build"),
            stage_fit: stage("fit"),
            stage_predict: stage("predict"),
        }
    }
}

/// One prediction request: the next `horizon` scenario days of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRequest {
    /// The vehicle to predict for.
    pub vehicle_id: VehicleId,
    /// How many scenario days ahead to predict (≥ 1).
    pub horizon: usize,
}

/// A served multi-step forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// The vehicle the forecast is for.
    pub vehicle_id: u32,
    /// Requested horizon.
    pub horizon: usize,
    /// Predicted utilization hours, nearest scenario day first.
    pub hours: Vec<f64>,
    /// Slot the serving model's training window ended at.
    pub trained_at: usize,
}

/// Per-request outcome of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// Served from a model already cached in the [`ModelStore`].
    Served(Forecast),
    /// The cached model was absent or stale; the vehicle was retrained
    /// during this batch, then served.
    RetrainedThenServed(Forecast),
    /// The request could not be served.
    Skipped {
        /// The vehicle of the unserveable request.
        vehicle_id: u32,
        /// Why it was skipped (validation failure, too-short series,
        /// captured worker panic, …).
        reason: String,
    },
}

impl ServeOutcome {
    /// The forecast, if one was produced.
    pub fn forecast(&self) -> Option<&Forecast> {
        match self {
            ServeOutcome::Served(f) | ServeOutcome::RetrainedThenServed(f) => Some(f),
            ServeOutcome::Skipped { .. } => None,
        }
    }

    /// Whether this outcome was served straight from the cache.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self, ServeOutcome::Served(_))
    }
}

/// How a vehicle left the prepare phase.
enum Prepared {
    Ready {
        view: Arc<VehicleView>,
        model: Arc<StoredModel>,
        cache_hit: bool,
    },
    Failed(String),
}

/// Batched per-vehicle prediction over one fleet.
pub struct PredictionService<'f> {
    fleet: &'f Fleet,
    config: PipelineConfig,
    store: ModelStore,
    n_threads: usize,
    metrics: ServeMetrics,
    ml_timers: MlTimers,
    executor_metrics: executor::ExecutorMetrics,
}

impl<'f> PredictionService<'f> {
    /// Creates a service for `fleet` under `config`. `n_threads` caps the
    /// executor workers (0 = available parallelism).
    pub fn new(
        fleet: &'f Fleet,
        config: PipelineConfig,
        n_threads: usize,
    ) -> vup_core::Result<PredictionService<'f>> {
        Self::new_observed(fleet, config, n_threads, &Registry::disabled())
    }

    /// [`PredictionService::new`] with observability: batch/request and
    /// per-outcome counters, per-stage latency histograms
    /// (`vup_serve_stage_nanos{stage="view_build"|"fit"|"predict"}`),
    /// model-store cache counters, ML fit/predict timing, and executor
    /// worker stats under `pool="serve"` — all recorded into `registry`.
    /// With a disabled registry this is exactly [`PredictionService::new`]:
    /// forecasts are bit-identical and no clock is read.
    pub fn new_observed(
        fleet: &'f Fleet,
        config: PipelineConfig,
        n_threads: usize,
        registry: &Registry,
    ) -> vup_core::Result<PredictionService<'f>> {
        config.validate()?;
        Ok(PredictionService {
            fleet,
            config,
            store: ModelStore::observed(registry),
            n_threads,
            metrics: ServeMetrics::register(registry),
            ml_timers: MlTimers::register(registry),
            executor_metrics: executor::ExecutorMetrics::register(registry, "serve"),
        })
    }

    /// The service's model cache.
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The configuration every request is served under.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Serves a batch of requests, returning one outcome per request in
    /// request order.
    ///
    /// `as_of` bounds each vehicle's series to its first `as_of` slots,
    /// replaying the service "as of" an earlier day (`None` = the full
    /// observed series). Models are cached across calls: a vehicle whose
    /// cached model is still within `retrain_every` slots of the series
    /// end is served without retraining.
    pub fn serve_batch(
        &self,
        requests: &[BatchRequest],
        as_of: Option<usize>,
    ) -> Vec<ServeOutcome> {
        self.metrics.batches.inc();
        self.metrics.requests.add(requests.len() as u64);

        let mut vehicles: Vec<VehicleId> = requests.iter().map(|r| r.vehicle_id).collect();
        vehicles.sort_unstable();
        vehicles.dedup();

        let prepared = self.prepare(&vehicles, as_of);

        // Phase 2: serve every request from the prepared snapshots.
        let (outcomes, _) = executor::run_tasks_observed(
            requests.len(),
            self.n_threads,
            |i| {
                let request = &requests[i];
                let id = request.vehicle_id.0;
                match prepared.get(&request.vehicle_id) {
                    Some(Prepared::Ready {
                        view,
                        model,
                        cache_hit,
                    }) => {
                        let rolled = self.metrics.stage_predict.time(|| {
                            forecast_horizon(&model.predictor, view, self.fleet, request.horizon)
                        });
                        match rolled {
                            Ok(hours) => {
                                let forecast = Forecast {
                                    vehicle_id: id,
                                    horizon: request.horizon,
                                    hours,
                                    trained_at: model.trained_at,
                                };
                                if *cache_hit {
                                    ServeOutcome::Served(forecast)
                                } else {
                                    ServeOutcome::RetrainedThenServed(forecast)
                                }
                            }
                            Err(e) => ServeOutcome::Skipped {
                                vehicle_id: id,
                                reason: e.to_string(),
                            },
                        }
                    }
                    Some(Prepared::Failed(reason)) => ServeOutcome::Skipped {
                        vehicle_id: id,
                        reason: reason.clone(),
                    },
                    None => unreachable!("every request vehicle was prepared"),
                }
            },
            &self.executor_metrics,
        );

        let outcomes: Vec<ServeOutcome> = outcomes
            .into_iter()
            .zip(requests)
            .map(|(result, request)| {
                result.unwrap_or_else(|message| ServeOutcome::Skipped {
                    vehicle_id: request.vehicle_id.0,
                    reason: format!("worker panicked: {message}"),
                })
            })
            .collect();

        // One counting pass on the coordinating thread; every request
        // lands in exactly one outcome series, so the three series sum to
        // the request count.
        for outcome in &outcomes {
            match outcome {
                ServeOutcome::Served(_) => self.metrics.served.inc(),
                ServeOutcome::RetrainedThenServed(_) => self.metrics.retrained.inc(),
                ServeOutcome::Skipped { .. } => self.metrics.skipped.inc(),
            }
        }
        outcomes
    }

    /// Phase 1: builds views for the distinct vehicles, reuses fresh
    /// cached models, retrains the rest in parallel, and records the new
    /// models in the store.
    fn prepare(
        &self,
        vehicles: &[VehicleId],
        as_of: Option<usize>,
    ) -> HashMap<VehicleId, Prepared> {
        // 1a: build the scenario views in parallel (the expensive part of
        // a cache hit).
        let (views, _) = executor::run_tasks_observed(
            vehicles.len(),
            self.n_threads,
            |i| {
                self.metrics.stage_view.time(|| {
                    let id = vehicles[i];
                    self.fleet.vehicle(id)?;
                    let view = VehicleView::build(self.fleet, id, self.config.scenario);
                    Some(match as_of {
                        Some(n) => view.truncated(n),
                        None => view,
                    })
                })
            },
            &self.executor_metrics,
        );

        // 1b: consult the cache on the coordinating thread.
        let mut prepared: HashMap<VehicleId, Prepared> = HashMap::with_capacity(vehicles.len());
        let mut to_train: Vec<(VehicleId, Arc<VehicleView>)> = Vec::new();
        for (&id, view) in vehicles.iter().zip(views) {
            match view {
                Ok(Some(view)) => {
                    let view = Arc::new(view);
                    let now = view.len();
                    match self.store.get(id, &self.config, now) {
                        Some(model) => {
                            prepared.insert(
                                id,
                                Prepared::Ready {
                                    view,
                                    model,
                                    cache_hit: true,
                                },
                            );
                        }
                        None => to_train.push((id, view)),
                    }
                }
                Ok(None) => {
                    prepared.insert(
                        id,
                        Prepared::Failed(format!("vehicle {} not in fleet", id.0)),
                    );
                }
                Err(message) => {
                    prepared.insert(id, Prepared::Failed(format!("worker panicked: {message}")));
                }
            }
        }

        // 1c: (re)train the misses in parallel.
        let (trained, _) = executor::run_tasks_observed(
            to_train.len(),
            self.n_threads,
            |i| {
                let (_, view) = &to_train[i];
                self.metrics.stage_fit.time(|| self.train(view))
            },
            &self.executor_metrics,
        );

        // 1d: one insert pass on the coordinating thread.
        for ((id, view), result) in to_train.into_iter().zip(trained) {
            let entry = match result {
                Ok(Ok(predictor)) => {
                    let trained_at = view.len();
                    let model = self.store.insert(id, &self.config, predictor, trained_at);
                    Prepared::Ready {
                        view,
                        model,
                        cache_hit: false,
                    }
                }
                Ok(Err(e)) => Prepared::Failed(e.to_string()),
                Err(message) => Prepared::Failed(format!("worker panicked: {message}")),
            };
            prepared.insert(id, entry);
        }
        prepared
    }

    /// Fits a model on the window ending at the view's last slot.
    fn train(&self, view: &VehicleView) -> vup_core::Result<FittedPredictor> {
        let now = view.len();
        let train_from = match self.config.strategy {
            Strategy::Sliding => {
                if now < self.config.train_window {
                    return Err(vup_ml::MlError::NotEnoughSamples {
                        required: self.config.train_window,
                        actual: now,
                    });
                }
                now - self.config.train_window
            }
            Strategy::Expanding => 0,
        };
        FittedPredictor::fit_observed(view, &self.config, train_from, now, &self.ml_timers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vup_core::ModelSpec;
    use vup_fleetsim::fleet::FleetConfig;
    use vup_ml::baseline::BaselineSpec;
    use vup_ml::RegressorSpec;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            model: ModelSpec::Learned(RegressorSpec::Linear),
            train_window: 120,
            max_lag: 30,
            k: 10,
            retrain_every: 7,
            ..PipelineConfig::default()
        }
    }

    fn requests(ids: &[u32], horizon: usize) -> Vec<BatchRequest> {
        ids.iter()
            .map(|&id| BatchRequest {
                vehicle_id: VehicleId(id),
                horizon,
            })
            .collect()
    }

    #[test]
    fn first_batch_retrains_second_batch_serves_from_cache() {
        let fleet = Fleet::generate(FleetConfig::small(4, 11));
        let service = PredictionService::new(&fleet, fast_config(), 0).unwrap();
        let batch = requests(&[0, 1, 2, 3], 2);

        let first = service.serve_batch(&batch, None);
        assert_eq!(first.len(), 4);
        for outcome in &first {
            assert!(
                matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
                "{outcome:?}"
            );
        }
        assert_eq!(service.store().len(), 4);

        let second = service.serve_batch(&batch, None);
        for (a, b) in first.iter().zip(&second) {
            assert!(b.is_cache_hit(), "{b:?}");
            let (fa, fb) = (a.forecast().unwrap(), b.forecast().unwrap());
            assert_eq!(fa.hours.len(), 2);
            let bits = |f: &Forecast| f.hours.iter().map(|h| h.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(fa), bits(fb), "cached serve must match fresh serve");
            assert_eq!(fa.trained_at, fb.trained_at);
        }
    }

    #[test]
    fn duplicate_vehicles_in_one_batch_train_once() {
        let fleet = Fleet::generate(FleetConfig::small(2, 12));
        let service = PredictionService::new(&fleet, fast_config(), 2).unwrap();
        // Same vehicle four times with different horizons.
        let batch = vec![
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 3,
            },
            BatchRequest {
                vehicle_id: VehicleId(1),
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 2,
            },
        ];
        let outcomes = service.serve_batch(&batch, None);
        assert_eq!(service.store().len(), 2);
        for (request, outcome) in batch.iter().zip(&outcomes) {
            let forecast = outcome.forecast().unwrap();
            assert_eq!(forecast.vehicle_id, request.vehicle_id.0);
            assert_eq!(forecast.hours.len(), request.horizon);
        }
        // Shared-model consistency: the horizon-3 forecast starts with
        // the horizon-1 forecast.
        let h1 = outcomes[0].forecast().unwrap();
        let h3 = outcomes[1].forecast().unwrap();
        assert_eq!(h1.hours[0].to_bits(), h3.hours[0].to_bits());
    }

    #[test]
    fn bad_requests_are_skipped_with_reasons() {
        let fleet = Fleet::generate(FleetConfig::small(2, 13));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        let batch = vec![
            // Unknown vehicle.
            BatchRequest {
                vehicle_id: VehicleId(99),
                horizon: 1,
            },
            // Zero horizon.
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 0,
            },
            // Fine.
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 1,
            },
        ];
        let outcomes = service.serve_batch(&batch, None);
        match &outcomes[0] {
            ServeOutcome::Skipped { vehicle_id, reason } => {
                assert_eq!(*vehicle_id, 99);
                assert!(reason.contains("not in fleet"), "{reason}");
            }
            other => panic!("expected skip, got {other:?}"),
        }
        assert!(matches!(&outcomes[1], ServeOutcome::Skipped { .. }));
        assert!(outcomes[2].forecast().is_some());
    }

    #[test]
    fn too_short_series_is_skipped_not_fatal() {
        let fleet = Fleet::generate(FleetConfig::small(1, 14));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        // as_of smaller than the training window.
        let outcomes = service.serve_batch(&requests(&[0], 1), Some(50));
        match &outcomes[0] {
            ServeOutcome::Skipped { reason, .. } => {
                assert!(reason.contains("need at least"), "{reason}");
            }
            other => panic!("expected skip, got {other:?}"),
        }
        assert!(service.store().is_empty());
    }

    #[test]
    fn advancing_as_of_past_retrain_every_retrains() {
        let fleet = Fleet::generate(FleetConfig::small(1, 15));
        let mut config = fast_config();
        config.model = ModelSpec::Baseline(BaselineSpec::LastValue);
        let retrain_every = config.retrain_every;
        let service = PredictionService::new(&fleet, config, 1).unwrap();
        let batch = requests(&[0], 1);

        let t0 = 200;
        assert!(!service.serve_batch(&batch, Some(t0))[0].is_cache_hit());
        // Within the cadence: cache hits.
        for dt in 1..retrain_every {
            assert!(
                service.serve_batch(&batch, Some(t0 + dt))[0].is_cache_hit(),
                "dt = {dt}"
            );
        }
        // At the cadence boundary: retrained.
        let outcome = &service.serve_batch(&batch, Some(t0 + retrain_every))[0];
        assert!(
            matches!(outcome, ServeOutcome::RetrainedThenServed(_)),
            "{outcome:?}"
        );
        assert_eq!(
            outcome.forecast().unwrap().trained_at,
            t0 + retrain_every,
            "retrained on the advanced window"
        );
    }

    #[test]
    fn batches_are_deterministic_across_thread_counts() {
        let fleet = Fleet::generate(FleetConfig::small(6, 16));
        let batch = requests(&[0, 1, 2, 3, 4, 5], 3);
        let reference: Vec<ServeOutcome> = {
            let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
            service.serve_batch(&batch, None)
        };
        for threads in [2usize, 4, 0] {
            let service = PredictionService::new(&fleet, fast_config(), threads).unwrap();
            let outcomes = service.serve_batch(&batch, None);
            assert_eq!(outcomes, reference, "threads = {threads}");
        }
    }

    #[test]
    fn observed_service_counts_outcomes_and_stages() {
        let fleet = Fleet::generate(FleetConfig::small(3, 21));
        let registry = Registry::new();
        let service = PredictionService::new_observed(&fleet, fast_config(), 2, &registry).unwrap();
        let batch = vec![
            BatchRequest {
                vehicle_id: VehicleId(0),
                horizon: 2,
            },
            BatchRequest {
                vehicle_id: VehicleId(1),
                horizon: 1,
            },
            BatchRequest {
                vehicle_id: VehicleId(99), // skipped: not in fleet
                horizon: 1,
            },
        ];
        service.serve_batch(&batch, None); // all misses → retrains
        service.serve_batch(&batch, None); // vehicles 0 and 1 → cache hits

        let counter =
            |name: &str, labels: &[(&str, &str)]| registry.counter_with(name, labels).get();
        assert_eq!(counter("vup_serve_batches_total", &[]), 2);
        assert_eq!(counter("vup_serve_requests_total", &[]), 6);
        let outcome = |o: &str| counter("vup_serve_outcomes_total", &[("outcome", o)]);
        assert_eq!(outcome("retrained"), 2);
        assert_eq!(outcome("served"), 2);
        assert_eq!(outcome("skipped"), 2);
        // The three outcome series always sum to the requests served.
        assert_eq!(
            registry
                .snapshot()
                .counter_total("vup_serve_outcomes_total"),
            counter("vup_serve_requests_total", &[])
        );

        // Stage histograms saw work: one view build per known vehicle per
        // batch, one fit per miss, one predict per resolvable request.
        let stage = |s: &str| {
            registry
                .histogram_with("vup_serve_stage_nanos", &[("stage", s)], Buckets::latency())
                .count()
        };
        assert_eq!(stage("view_build"), 6);
        assert_eq!(stage("fit"), 2);
        assert_eq!(stage("predict"), 4);
        // ML timers fired underneath the fit/predict stages.
        assert_eq!(
            registry
                .histogram("vup_ml_fit_nanos", Buckets::latency())
                .count(),
            2
        );
        assert!(
            registry
                .histogram("vup_ml_predict_nanos", Buckets::latency())
                .count()
                >= 4
        );
        // Store counters: 2 retrains, 2 hits, 2 absent misses.
        assert_eq!(counter("vup_store_retrains_total", &[]), 2);
        assert_eq!(counter("vup_store_hits_total", &[]), 2);
        assert_eq!(registry.gauge("vup_store_models").get(), 2.0);
    }

    #[test]
    fn observed_service_forecasts_match_unobserved_bitwise() {
        let fleet = Fleet::generate(FleetConfig::small(4, 22));
        let batch = requests(&[0, 1, 2, 3], 3);
        let plain = PredictionService::new(&fleet, fast_config(), 2).unwrap();
        let registry = Registry::new();
        let observed =
            PredictionService::new_observed(&fleet, fast_config(), 2, &registry).unwrap();
        for round in 0..2 {
            let a = plain.serve_batch(&batch, None);
            let b = observed.serve_batch(&batch, None);
            assert_eq!(
                a, b,
                "round {round}: instrumentation must not perturb forecasts"
            );
        }
        assert!(registry.counter("vup_serve_requests_total").get() > 0);
    }

    #[test]
    fn invalidation_forces_a_retrain() {
        let fleet = Fleet::generate(FleetConfig::small(1, 17));
        let service = PredictionService::new(&fleet, fast_config(), 1).unwrap();
        let batch = requests(&[0], 1);
        service.serve_batch(&batch, None);
        assert!(service.serve_batch(&batch, None)[0].is_cache_hit());
        service.store().invalidate(VehicleId(0));
        assert!(!service.serve_batch(&batch, None)[0].is_cache_hit());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let fleet = Fleet::generate(FleetConfig::small(1, 18));
        let mut config = fast_config();
        config.retrain_every = 0;
        assert!(PredictionService::new(&fleet, config, 1).is_err());
    }
}
