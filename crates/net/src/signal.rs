//! SIGTERM/SIGINT → [`CancelToken`] bridge, std-only.
//!
//! `std` exposes no signal API, but it already links libc; declaring
//! `signal(2)` ourselves keeps the no-new-dependencies constraint. The
//! handler body is async-signal-safe: one relaxed atomic store, nothing
//! else. A watcher thread polls the flag and trips the server's
//! [`CancelToken`], which begins the graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use vup_core::executor::CancelToken;

static TERMINATED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TERMINATED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off Unix; shutdown happens via the token only.
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handler (idempotent).
pub fn install_termination_handler() {
    imp::install();
}

/// Whether a termination signal has been received.
pub fn termination_requested() -> bool {
    TERMINATED.load(Ordering::Relaxed)
}

/// Spawns a watcher that trips `token` once a termination signal
/// arrives (or returns silently if the token trips first). Join the
/// handle after [`crate::server::Server::run`] returns.
pub fn watch_termination(token: CancelToken) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        if termination_requested() {
            token.cancel();
            return;
        }
        if token.is_cancelled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    })
}
