//! Step (iv) — enrichment with contextual information.
//!
//! Attaches the paper's temporal and spatial context to daily records:
//! day of week, country-dependent holiday/working-day flag, week of year,
//! month, season (hemisphere-adjusted), year, country id and hemisphere.

use vup_fleetsim::calendar::Date;
use vup_fleetsim::holidays::{Country, Hemisphere};

/// Contextual features of one vehicle-day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayContext {
    /// Monday-based day of week in 0..=6.
    pub day_of_week: usize,
    /// Whether the day is a weekend in the vehicle's country.
    pub is_weekend: bool,
    /// Whether the day is a public holiday in the vehicle's country.
    pub is_holiday: bool,
    /// Week of year in 1..=53.
    pub week_of_year: u8,
    /// Month in 1..=12.
    pub month: u8,
    /// Local (hemisphere-adjusted) season ordinal in 0..=3
    /// (winter, spring, summer, autumn).
    pub season: usize,
    /// Calendar year.
    pub year: i32,
    /// Country identifier.
    pub country_id: u16,
    /// Whether the country lies in the northern hemisphere.
    pub northern: bool,
}

/// Computes the context of one date in one country.
pub fn day_context(date: Date, country: &Country) -> DayContext {
    let season_north = date.season_north();
    let local_season = match country.hemisphere {
        Hemisphere::North => season_north,
        Hemisphere::South => season_north.opposite(),
    };
    DayContext {
        day_of_week: date.weekday().index(),
        is_weekend: country.is_weekend(date),
        is_holiday: country.is_holiday(date),
        week_of_year: date.week_of_year(),
        month: date.month,
        season: local_season.index(),
        year: date.year,
        country_id: country.id,
        northern: country.hemisphere == Hemisphere::North,
    }
}

/// Encodes the context as numeric model features. Layout (10 values):
/// `[dow_mon … dow_sun (one-hot, 7), is_holiday, season_sin, season_cos]`.
///
/// Day-of-week is one-hot so that linear models can express an arbitrary
/// weekday profile (a sin/cos pair cannot represent, say, "never works
/// Wednesdays"). The annual cycle is a sin/cos pair over week-of-year,
/// phase-shifted by half a year for southern-hemisphere units. No
/// absolute-time trend feature is included: inside a short sliding window
/// such a ramp is fit to local drift and then extrapolated, which hurts
/// more than it helps.
pub fn encode_context(ctx: &DayContext) -> Vec<f64> {
    let mut out = vec![0.0; CONTEXT_FEATURE_COUNT];
    out[ctx.day_of_week.min(6)] = 1.0;
    out[7] = ctx.is_holiday as u8 as f64;
    // Season is encoded through week-of-year, which is finer grained.
    let season_angle = 2.0 * std::f64::consts::PI * (ctx.week_of_year as f64 - 1.0) / 52.0;
    // Southern units see the annual cycle phase-shifted by half a year.
    let season_angle = if ctx.northern {
        season_angle
    } else {
        season_angle + std::f64::consts::PI
    };
    out[8] = season_angle.sin();
    out[9] = season_angle.cos();
    out
}

/// Number of values produced by [`encode_context`].
pub const CONTEXT_FEATURE_COUNT: usize = 10;

/// Names of the encoded context features, aligned with [`encode_context`].
pub const CONTEXT_FEATURE_NAMES: [&str; CONTEXT_FEATURE_COUNT] = [
    "dow_mon",
    "dow_tue",
    "dow_wed",
    "dow_thu",
    "dow_fri",
    "dow_sat",
    "dow_sun",
    "is_holiday",
    "season_sin",
    "season_cos",
];

#[cfg(test)]
mod tests {
    use super::*;
    use vup_fleetsim::holidays::WeekendKind;

    fn country(hemisphere: Hemisphere) -> Country {
        Country {
            id: 42,
            hemisphere,
            weekend: WeekendKind::SatSun,
            christmas_shutdown: true,
            national_holidays: vec![(8, 15)],
        }
    }

    #[test]
    fn context_fields_are_correct() {
        let c = country(Hemisphere::North);
        // 2017-08-15 was a Tuesday and a national holiday here.
        let ctx = day_context(Date::new(2017, 8, 15).unwrap(), &c);
        assert_eq!(ctx.day_of_week, 1);
        assert!(!ctx.is_weekend);
        assert!(ctx.is_holiday);
        assert_eq!(ctx.month, 8);
        assert_eq!(ctx.year, 2017);
        assert_eq!(ctx.season, 2); // northern summer
        assert_eq!(ctx.country_id, 42);
        assert!(ctx.northern);
    }

    #[test]
    fn southern_hemisphere_flips_season() {
        let north = day_context(Date::new(2017, 1, 10).unwrap(), &country(Hemisphere::North));
        let south = day_context(Date::new(2017, 1, 10).unwrap(), &country(Hemisphere::South));
        assert_eq!(north.season, 0); // winter
        assert_eq!(south.season, 2); // summer
        assert!(!south.northern);
    }

    #[test]
    fn encoding_has_stable_layout() {
        let ctx = day_context(Date::new(2016, 6, 4).unwrap(), &country(Hemisphere::North));
        let enc = encode_context(&ctx);
        assert_eq!(enc.len(), CONTEXT_FEATURE_COUNT);
        assert_eq!(CONTEXT_FEATURE_NAMES.len(), CONTEXT_FEATURE_COUNT);
        // 2016-06-04 is a Saturday: one-hot slot 5 set, all others clear.
        assert_eq!(enc[5], 1.0);
        let dow_sum: f64 = enc[..7].iter().sum();
        assert_eq!(dow_sum, 1.0);
        // All features are finite and bounded.
        for &v in &enc {
            assert!(v.is_finite());
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn one_hot_tracks_the_weekday() {
        let c = country(Hemisphere::North);
        for offset in 0..7 {
            // 2017-06-19 is a Monday.
            let date = Date::new(2017, 6, 19).unwrap().plus_days(offset);
            let enc = encode_context(&day_context(date, &c));
            assert_eq!(enc[offset as usize], 1.0);
        }
    }

    #[test]
    fn hemisphere_shifts_seasonal_phase() {
        let date = Date::new(2017, 7, 15).unwrap();
        let n = encode_context(&day_context(date, &country(Hemisphere::North)));
        let s = encode_context(&day_context(date, &country(Hemisphere::South)));
        // season components flip sign between hemispheres.
        assert!((n[8] + s[8]).abs() < 1e-9);
        assert!((n[9] + s[9]).abs() < 1e-9);
    }

    #[test]
    fn holiday_flag_is_encoded() {
        let c = country(Hemisphere::North);
        let holiday = encode_context(&day_context(Date::new(2017, 8, 15).unwrap(), &c));
        let plain = encode_context(&day_context(Date::new(2017, 8, 16).unwrap(), &c));
        assert_eq!(holiday[7], 1.0);
        assert_eq!(plain[7], 0.0);
    }
}
