//! Vehicle-usage prediction: a full reproduction of *Heterogeneous
//! Industrial Vehicle Usage Predictions: A Real Case* (EDBT/ICDT
//! Workshops 2019) in Rust.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`fleetsim`] — synthetic heterogeneous fleet + CAN-bus telemetry
//!   (substitute for the paper's proprietary Tierra dataset);
//! - [`dataprep`] — columnar relational engine and the five-step data
//!   preparation pipeline;
//! - [`tseries`] — autocorrelation, CDFs, boxplot statistics;
//! - [`ml`] — from-scratch LR / Lasso / SVR / GB regressors plus the LV
//!   and MA baselines;
//! - [`core`] — the paper's methodology: per-vehicle windowed training
//!   data, ACF-based lag selection, next-day / next-working-day
//!   scenarios, sliding / expanding evaluation;
//! - [`serve`] — online batch prediction service with a per-vehicle
//!   model cache, dispatched on the same lock-free executor as the
//!   offline fleet evaluation; hardened by retries, deadlines, circuit
//!   breakers, and a baseline fallback, all testable under a seeded
//!   deterministic fault injector;
//! - [`obs`] — std-only observability: a lock-free metrics registry
//!   (counters, gauges, fixed-bucket histograms, timing spans) with
//!   Prometheus-text and JSON exporters, threaded through the executor,
//!   the model store, and the prediction service. Disabled registries
//!   make every instrumented path a no-op;
//! - [`net`] — std-only HTTP/1.1 serving daemon (`vup serve`): a
//!   hand-rolled incremental parser, bounded admission queue with
//!   `503 + Retry-After` load shedding, fixed worker pool with graceful
//!   SIGTERM drain, and a seeded closed-loop load generator
//!   (`vup loadgen`);
//! - [`ingest`] — streaming telemetry front end (`vup ingest` /
//!   `vup replay`): a durable CRC-framed commit log of 10-minute CAN
//!   reports with quarantine-never-delete crash recovery, incremental
//!   per-vehicle daily aggregation, and a drift-triggered retrain
//!   scheduler whose replays are bit-for-bit deterministic at any
//!   thread count;
//! - [`shard`] — fleet sharding (`vup shard-eval` / `vup shard
//!   rebalance` / `serve-batch --shards`): rendezvous-hash vehicle
//!   partitioning, a coordinator fanning batches over per-shard
//!   prediction services with deterministic vehicle-sorted merges, a
//!   supervisor that degrades and warm-restarts dead shards under the
//!   seeded fault plan, and atomic snapshot rebalancing when the shard
//!   count changes;
//! - [`bench`] — the experiment/benchmark harness behind the paper
//!   binaries and `vup bench`: canonical seeded workloads, profile-count
//!   extraction, and the schema-versioned `BENCH_*.json` perf
//!   trajectories with a threshold-gated `bench compare`.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md`
//! for the experiment index.
//!
//! ```
//! use vehicle_usage_prediction::prelude::*;
//!
//! let fleet = Fleet::generate(FleetConfig::small(3, 7));
//! let view = VehicleView::build(&fleet, VehicleId(0), Scenario::NextWorkingDay);
//! assert!(view.len() > 100);
//! ```

#![warn(missing_docs)]

pub use vup_bench as bench;
pub use vup_core as core;
pub use vup_dataprep as dataprep;
pub use vup_fleetsim as fleetsim;
pub use vup_ingest as ingest;
pub use vup_linalg as linalg;
pub use vup_ml as ml;
pub use vup_net as net;
pub use vup_obs as obs;
pub use vup_serve as serve;
pub use vup_shard as shard;
pub use vup_tseries as tseries;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use vup_core::{
        evaluate::evaluate_vehicle, fleet_eval::evaluate_fleet, FeatureConfig, FittedPredictor,
        ModelSpec, PipelineConfig, Scenario, Strategy, VehicleView,
    };
    pub use vup_fleetsim::{Fleet, FleetConfig, Vehicle, VehicleId, VehicleType};
    pub use vup_ingest::{
        ingest_stream, replay, CommitLog, FleetAggregator, LogOptions, LogRecovery, ReplayConfig,
        ReplayReport, RetrainReason, RetrainScheduler, StreamConfig, UsageShift,
    };
    pub use vup_ml::baseline::BaselineSpec;
    pub use vup_ml::RegressorSpec;
    pub use vup_obs::{FleetMonitor, MonitorConfig, Registry, Tracer};
    pub use vup_serve::{
        ellipsize, BatchRequest, DiskBackend, FaultPlan, FaultyBackend, ModelStore,
        PredictionService, Provenance, ResilienceConfig, RetryPolicy, ServeJournal, ServeOutcome,
        ServePath, SnapshotDefect, StorageBackend,
    };
    pub use vup_shard::{Partitioner, ShardOptions, ShardedService};
}
