//! Small dense-vector kernels used throughout the workspace.
//!
//! These operate on plain `&[f64]` slices; callers own the storage. Length
//! agreement is asserted (programming error, not recoverable input error),
//! matching slice-indexing semantics elsewhere in the crate.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Scales every element in place.
pub fn scale_mut(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (&x, &y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn sub_and_diff() {
        assert_eq!(sub(&[5.0, 3.0], &[2.0, 1.0]), vec![3.0, 2.0]);
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn scale_in_place() {
        let mut v = vec![1.0, -2.0];
        scale_mut(&mut v, -2.0);
        assert_eq!(v, vec![-2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
